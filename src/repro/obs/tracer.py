"""Structured span tracing with JSON-lines export.

A :class:`Span` is one timed, named region of execution; spans nest through
a thread-local stack so each records its parent and depth (a component's
``step`` span contains its ``staging.put`` spans, and so on). The tracer is
**off by default** — tracing allocates one record per span, which is too
much for always-on use — and a disabled tracer's ``span()`` returns a
shared no-op context manager, so instrument sites never branch.

Enable with :func:`enable_tracing` (the benchmarks' ``--obs-trace`` flag
does this) and drain with :meth:`Tracer.export_jsonl` or
:meth:`Tracer.spans`.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "tracer", "get_tracer", "enable_tracing", "disable_tracing"]


@dataclass
class Span:
    """One completed (or in-flight) traced region."""

    span_id: int
    name: str
    start: float
    parent_id: int | None = None
    depth: int = 0
    thread: str = ""
    end: float | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while in flight)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict:
        out = {
            "span_id": self.span_id,
            "name": self.name,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "thread": self.thread,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class _NullSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager recording one span into its tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def set(self, **attrs) -> None:
        """Attach key/value attributes to the span."""
        self._span.attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self._span)
        return self

    def __exit__(self, *exc) -> None:
        self._span.end = time.perf_counter()
        self._tracer._pop(self._span)


class Tracer:
    """Collects spans from every thread; cheap no-op while disabled."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0

    # ------------------------------------------------------------ recording

    def span(self, name: str, **attrs):
        """Context manager timing one named region (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        parent = stack[-1] if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            span_id=span_id,
            name=name,
            start=time.perf_counter(),
            parent_id=parent.span_id if parent is not None else None,
            depth=len(stack),
            thread=threading.current_thread().name,
            attrs=dict(attrs),
        )
        return _ActiveSpan(self, span)

    def _push(self, span: Span) -> None:
        self._local.stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._local.stack
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._spans.append(span)

    # ------------------------------------------------------------- draining

    def spans(self) -> list[Span]:
        """Completed spans in completion order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def to_jsonl(self) -> str:
        """One JSON object per line, one line per completed span."""
        return "\n".join(json.dumps(s.to_dict()) for s in self.spans())

    def export_jsonl(self, path) -> int:
        """Write the JSONL dump to ``path``; returns the span count."""
        spans = self.spans()
        with open(path, "w") as fh:
            for s in spans:
                fh.write(json.dumps(s.to_dict()) + "\n")
        return len(spans)


#: The process-wide tracer (disabled until explicitly enabled).
tracer = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The module-level singleton tracer."""
    return tracer


def enable_tracing() -> None:
    tracer.enabled = True


def disable_tracing() -> None:
    tracer.enabled = False
