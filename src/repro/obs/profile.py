"""Timing hooks: the ``@profiled`` decorator and the ``timed`` block.

Both record wall-clock durations into a :class:`~repro.obs.metrics.Histogram`
from the singleton registry and honour the global metrics switch, so wrapped
functions pay only a flag check when recording is disabled.
"""

from __future__ import annotations

import functools
from time import perf_counter

from repro.obs import metrics as _metrics

__all__ = ["profiled", "timed"]


def profiled(name: str | None = None, registry: _metrics.MetricsRegistry | None = None):
    """Decorator: record each call's latency in histogram ``name``.

    Defaults to ``<module>.<qualname>.seconds``. The histogram handle is
    resolved once, at decoration time.
    """

    def decorate(fn):
        hist_name = name or f"{fn.__module__}.{fn.__qualname__}.seconds"
        hist = (registry or _metrics.registry).histogram(hist_name)

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _metrics.metrics_enabled():
                return fn(*args, **kwargs)
            t0 = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                hist.record(perf_counter() - t0)

        wrapper.__wrapped_histogram__ = hist
        return wrapper

    return decorate


class timed:
    """Context manager recording the block's duration into ``hist``.

    Takes the histogram object itself (not a name) so hot paths resolve the
    handle once and reuse it.
    """

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: _metrics.Histogram) -> None:
        self._hist = hist

    def __enter__(self) -> "timed":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.record(perf_counter() - self._t0)
