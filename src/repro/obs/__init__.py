"""Workflow-wide observability: metrics, tracing, and timing hooks.

``repro.obs`` gives every layer of the reproduction — staging servers, the
synchronized runtime service, event queues, the garbage collector, the data
log, the perfsim engine, and the workflow driver — one place to report op
counts, byte totals, and latency distributions. See DESIGN.md §3 and the
README's *Observability* section for the wiring map.

Typical use::

    from repro import obs

    obs.registry.reset()              # clean slate for a measurement
    ... run a workflow or benchmark ...
    snap = obs.registry.snapshot()    # {"staging.server.put.count": ...}

    with obs.metrics.disabled():      # measure uninstrumented cost
        ... same run ...
"""

from repro.obs import metrics, tracer
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disabled,
    get_registry,
    metrics_enabled,
    registry,
    set_enabled,
)
from repro.obs.profile import profiled, timed
from repro.obs.tracer import (
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
)
from repro.obs.tracer import tracer as trace

__all__ = [
    "metrics",
    "tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "get_registry",
    "metrics_enabled",
    "set_enabled",
    "disabled",
    "profiled",
    "timed",
    "Span",
    "Tracer",
    "trace",
    "get_tracer",
    "enable_tracing",
    "disable_tracing",
]
