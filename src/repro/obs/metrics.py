"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

Every hot path in the reproduction (staging put/get, event-queue appends,
GC passes, the perfsim engine) reports through the module-level singleton
:data:`registry`, so any benchmark or workflow run can snapshot a complete
op-count / latency picture without threading a metrics object through every
constructor. The design constraints, in order:

1. *Near-zero overhead, default-on.* The counter fast path is one global
   flag read plus an integer add — no locks (CPython attribute stores are
   atomic under the GIL, and metric values are monotone aggregates where a
   lost-update race costs one sample, not correctness). Histograms bucket by
   a C-speed ``bisect`` into a fixed geometric bound table.
2. *Stable identities.* ``registry.counter(name)`` always returns the same
   object, and :meth:`MetricsRegistry.reset` zeroes values **in place**, so
   instrument-site handles cached at import time stay valid across resets.
3. *Cheap disable.* ``set_enabled(False)`` turns every record call into a
   flag check, letting the overhead benchmark measure the instrumented vs
   uninstrumented cost of the same binary.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_right

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "get_registry",
    "metrics_enabled",
    "set_enabled",
    "disabled",
]

# Global on/off switch shared by every metric instance. A module-global read
# is the cheapest gate available to pure Python.
_ENABLED = True


def metrics_enabled() -> bool:
    """True while metric recording is active (the default)."""
    return _ENABLED


def set_enabled(flag: bool) -> None:
    """Globally enable or disable all metric recording."""
    global _ENABLED
    _ENABLED = bool(flag)


class disabled:
    """Context manager: suspend metric recording inside the block."""

    def __enter__(self) -> None:
        self._prev = _ENABLED
        set_enabled(False)

    def __exit__(self, *exc) -> None:
        set_enabled(self._prev)


class Counter:
    """A monotonically increasing integer (op counts, byte totals)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if _ENABLED:
            self.value += n

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}

    def _reset(self) -> None:
        self.value = 0


class Gauge:
    """A point-in-time value (queue depth, resident bytes).

    An optional ``fn`` makes the gauge *lazy*: the callable is consulted at
    snapshot time instead of on the hot path (e.g. the data log's
    baseline-retention bytes, which are O(records) to compute).
    """

    __slots__ = ("name", "value", "fn")

    def __init__(self, name: str, fn=None) -> None:
        self.name = name
        self.value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        if _ENABLED:
            self.value = value

    def add(self, delta: float) -> None:
        if _ENABLED:
            self.value += delta

    def read(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self.value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.read()}

    def _reset(self) -> None:
        self.value = 0.0


def _geometric_bounds(lo: float, hi: float, per_octave: int) -> tuple[float, ...]:
    """Bucket upper bounds from ``lo`` to past ``hi``, 2**(1/per_octave) apart."""
    n = int(math.ceil(math.log2(hi / lo) * per_octave)) + 1
    ratio = 2.0 ** (1.0 / per_octave)
    return tuple(lo * ratio**i for i in range(n))


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    Buckets are geometric (quarter-octave: each bound is ×2^¼ the previous,
    ≤ ~9 % mid-bucket error) spanning 100 ns .. ~1000 s — sized for
    latencies in seconds but unit-agnostic. Recording is one ``bisect`` into
    a static bound table plus three adds; no allocation, no lock.
    """

    # Shared across all instances: upper bound of bucket i. Values above the
    # last bound land in a final overflow bucket.
    BOUNDS: tuple[float, ...] = _geometric_bounds(1e-7, 1.1e3, per_octave=4)

    __slots__ = ("name", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts = [0] * (len(self.BOUNDS) + 1)
        self._reset()

    def _reset(self) -> None:
        for i in range(len(self.counts)):
            self.counts[i] = 0
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def record(self, value: float) -> None:
        if not _ENABLED:
            return
        self.counts[bisect_right(self.BOUNDS, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    # ------------------------------------------------------------ estimates

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated value at percentile ``p`` (0..100).

        Returns the geometric midpoint of the bucket holding the rank,
        clamped to the observed [min, max] so single-sample histograms are
        exact.
        """
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(self.count * p / 100.0))
        cum = 0
        bounds = self.BOUNDS
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= target:
                if i == 0:
                    est = bounds[0] / 2.0
                elif i >= len(bounds):
                    est = bounds[-1]
                else:
                    est = math.sqrt(bounds[i - 1] * bounds[i])
                return min(max(est, self.vmin), self.vmax)
        return self.vmax  # pragma: no cover — cum always reaches count

    def snapshot(self) -> dict:
        if self.count == 0:
            return {"type": "histogram", "count": 0}
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.vmin,
            "max": self.vmax,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Name → metric map with get-or-create semantics.

    Creation takes a lock (it is rare — instrument sites cache their
    handles); reads and records never do.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, **kwargs)
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str, fn=None) -> Gauge:
        gauge = self._get_or_create(name, Gauge)
        if fn is not None:
            # Late-bound lazy source: the most recent provider wins (each
            # workflow run rebinds its own data log / engine).
            gauge.fn = fn
        return gauge

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    # ------------------------------------------------------------- querying

    def get(self, name: str):
        """The registered metric, or None."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """A JSON-ready {name: state} view of every registered metric."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def reset(self) -> None:
        """Zero every metric *in place*; cached handles stay valid."""
        with self._lock:
            for metric in self._metrics.values():
                metric._reset()


#: The process-wide registry every instrument site reports to by default.
registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The module-level singleton registry."""
    return registry
