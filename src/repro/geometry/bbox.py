"""N-dimensional integer bounding boxes.

DataSpaces addresses staged data by geometric descriptors over a discrete
global domain; a :class:`BBox` is the half-open box ``[lo, hi)`` in each
dimension. Boxes are immutable and hashable so they can key spatial indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import GeometryError

__all__ = ["BBox"]


@dataclass(frozen=True)
class BBox:
    """A half-open axis-aligned box ``[lo[i], hi[i])`` per dimension.

    Empty boxes (any ``hi[i] <= lo[i]``) are rejected at construction; use
    :meth:`BBox.intersect` (which may return ``None``) to express emptiness.
    """

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise GeometryError(f"rank mismatch: lo={self.lo} hi={self.hi}")
        if not self.lo:
            raise GeometryError("zero-dimensional box")
        for a, b in zip(self.lo, self.hi):
            if b <= a:
                raise GeometryError(f"empty extent [{a}, {b}) in {self.lo}->{self.hi}")
        # Normalise to plain int tuples so hashing is stable across numpy ints.
        object.__setattr__(self, "lo", tuple(int(x) for x in self.lo))
        object.__setattr__(self, "hi", tuple(int(x) for x in self.hi))

    @classmethod
    def from_shape(cls, shape: Sequence[int], origin: Sequence[int] | None = None) -> "BBox":
        """Box of the given ``shape`` anchored at ``origin`` (default zeros)."""
        origin = tuple(origin) if origin is not None else (0,) * len(shape)
        return cls(tuple(origin), tuple(o + s for o, s in zip(origin, shape)))

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.lo)

    @property
    def shape(self) -> tuple[int, ...]:
        """Extent per dimension."""
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def volume(self) -> int:
        """Number of cells covered."""
        v = 1
        for s in self.shape:
            v *= s
        return v

    def contains_point(self, point: Sequence[int]) -> bool:
        """True if ``point`` lies inside the half-open box."""
        if len(point) != self.ndim:
            raise GeometryError(f"point rank {len(point)} != box rank {self.ndim}")
        return all(l <= p < h for l, p, h in zip(self.lo, point, self.hi))

    def contains(self, other: "BBox") -> bool:
        """True if ``other`` is entirely inside this box."""
        self._check_rank(other)
        return all(sl <= ol and oh <= sh for sl, ol, oh, sh in zip(self.lo, other.lo, other.hi, self.hi))

    def intersects(self, other: "BBox") -> bool:
        """True if the boxes share at least one cell."""
        self._check_rank(other)
        return all(max(al, bl) < min(ah, bh) for al, bl, ah, bh in zip(self.lo, other.lo, self.hi, other.hi))

    def intersect(self, other: "BBox") -> "BBox | None":
        """The overlapping box, or ``None`` when disjoint."""
        self._check_rank(other)
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(h <= l for l, h in zip(lo, hi)):
            return None
        return BBox(lo, hi)

    def union_bounds(self, other: "BBox") -> "BBox":
        """The smallest box covering both (not a set union)."""
        self._check_rank(other)
        return BBox(
            tuple(min(a, b) for a, b in zip(self.lo, other.lo)),
            tuple(max(a, b) for a, b in zip(self.hi, other.hi)),
        )

    def translate(self, offset: Sequence[int]) -> "BBox":
        """Shift the box by ``offset`` per dimension."""
        if len(offset) != self.ndim:
            raise GeometryError(f"offset rank {len(offset)} != box rank {self.ndim}")
        return BBox(
            tuple(l + o for l, o in zip(self.lo, offset)),
            tuple(h + o for h, o in zip(self.hi, offset)),
        )

    def slices(self, within: "BBox | None" = None) -> tuple[slice, ...]:
        """NumPy slices selecting this box out of an array covering ``within``.

        With ``within`` omitted the box is assumed to be expressed in array
        coordinates already (origin at zero).
        """
        if within is None:
            return tuple(slice(l, h) for l, h in zip(self.lo, self.hi))
        if not within.contains(self):
            raise GeometryError(f"{self} not contained in {within}")
        return tuple(
            slice(l - wl, h - wl) for l, h, wl in zip(self.lo, self.hi, within.lo)
        )

    def corners(self) -> Iterator[tuple[int, ...]]:
        """Iterate the 2^ndim corner points (hi corners are inclusive-1)."""
        n = self.ndim
        for mask in range(1 << n):
            yield tuple(
                (self.hi[d] - 1) if (mask >> d) & 1 else self.lo[d] for d in range(n)
            )

    def split(self, dim: int, at: int) -> tuple["BBox", "BBox"]:
        """Split along ``dim`` at absolute coordinate ``at`` (strictly inside)."""
        if not (self.lo[dim] < at < self.hi[dim]):
            raise GeometryError(f"split point {at} outside ({self.lo[dim]}, {self.hi[dim]})")
        left_hi = list(self.hi)
        left_hi[dim] = at
        right_lo = list(self.lo)
        right_lo[dim] = at
        return BBox(self.lo, tuple(left_hi)), BBox(tuple(right_lo), self.hi)

    def subtract(self, other: "BBox") -> list["BBox"]:
        """This box minus ``other`` as a list of disjoint boxes.

        The classic axis-by-axis decomposition: at most ``2 * ndim`` pieces.
        Returns ``[self]`` when the boxes are disjoint and ``[]`` when
        ``other`` covers ``self``.
        """
        overlap = self.intersect(other)
        if overlap is None:
            return [self]
        pieces: list[BBox] = []
        remaining = self
        for d in range(self.ndim):
            if remaining.lo[d] < overlap.lo[d]:
                low, remaining = remaining.split(d, overlap.lo[d])
                pieces.append(low)
            if overlap.hi[d] < remaining.hi[d]:
                remaining, high = remaining.split(d, overlap.hi[d])
                pieces.append(high)
        # `remaining` is now exactly `overlap` and is discarded.
        return pieces

    def _check_rank(self, other: "BBox") -> None:
        if other.ndim != self.ndim:
            raise GeometryError(f"rank mismatch: {self.ndim} vs {other.ndim}")

    def __str__(self) -> str:
        dims = ", ".join(f"{l}:{h}" for l, h in zip(self.lo, self.hi))
        return f"BBox[{dims}]"
