"""Space-filling curves for DHT placement.

DataSpaces maps regions of the global domain onto staging servers with a
Hilbert space-filling curve so that spatially adjacent data lands on the same
or nearby servers. We implement Morton (Z-order) and Hilbert codes for
arbitrary dimension and bit depth; placement uses Hilbert by default because
its locality is what makes range queries cheap, but Morton is kept both as a
comparison baseline and because it is the fallback DataSpaces uses for
domains whose extent is not a power of two.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "morton_encode",
    "morton_decode",
    "hilbert_encode",
    "hilbert_decode",
    "bits_for_extent",
]


def bits_for_extent(extent: int) -> int:
    """Number of bits needed to index coordinates in ``[0, extent)``."""
    if extent <= 0:
        raise ValueError(f"extent must be positive, got {extent}")
    return max(1, (extent - 1).bit_length())


def _check_coords(coords: Sequence[int], bits: int) -> None:
    limit = 1 << bits
    for c in coords:
        if not (0 <= c < limit):
            raise ValueError(f"coordinate {c} out of range [0, {limit}) for {bits} bits")


def morton_encode(coords: Sequence[int], bits: int) -> int:
    """Interleave ``ndim`` coordinates of ``bits`` bits into a Z-order code."""
    _check_coords(coords, bits)
    code = 0
    n = len(coords)
    for b in range(bits):
        for d, c in enumerate(coords):
            code |= ((c >> b) & 1) << (b * n + d)
    return code


def morton_decode(code: int, ndim: int, bits: int) -> tuple[int, ...]:
    """Inverse of :func:`morton_encode`."""
    if code < 0 or code >= 1 << (ndim * bits):
        raise ValueError(f"code {code} out of range for {ndim}x{bits} bits")
    coords = [0] * ndim
    for b in range(bits):
        for d in range(ndim):
            coords[d] |= ((code >> (b * ndim + d)) & 1) << b
    return tuple(coords)


def hilbert_encode(coords: Sequence[int], bits: int) -> int:
    """Encode coordinates to their index along an N-d Hilbert curve.

    Implements Skilling's transform (AIP Conf. Proc. 707, 2004): first map the
    point to its "transposed" Hilbert representation in place, then collect
    the bits into a single integer, most significant bit plane first.
    """
    _check_coords(coords, bits)
    x = list(coords)
    n = len(x)
    m = 1 << (bits - 1)
    # Inverse undo excess work.
    q = m
    while q > 1:
        p = q - 1
        for i in range(n):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, n):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[n - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(n):
        x[i] ^= t
    # Interleave bit planes: plane (bits-1) is most significant.
    code = 0
    for b in range(bits - 1, -1, -1):
        for i in range(n):
            code = (code << 1) | ((x[i] >> b) & 1)
    return code


def hilbert_decode(code: int, ndim: int, bits: int) -> tuple[int, ...]:
    """Inverse of :func:`hilbert_encode`."""
    if code < 0 or code >= 1 << (ndim * bits):
        raise ValueError(f"code {code} out of range for {ndim}x{bits} bits")
    # De-interleave bit planes into the transposed representation.
    x = [0] * ndim
    pos = ndim * bits
    for b in range(bits - 1, -1, -1):
        for i in range(ndim):
            pos -= 1
            x[i] |= ((code >> pos) & 1) << b
    n = ndim
    m = 2 << (bits - 1)
    # Gray decode by H ^ (H/2).
    t = x[n - 1] >> 1
    for i in range(n - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # Undo excess work.
    q = 2
    while q != m:
        p = q - 1
        for i in range(n - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return tuple(x)
