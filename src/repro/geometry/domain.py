"""Global domain and block decompositions.

A :class:`Domain` is the global index space a coupled workflow exchanges
(e.g. the paper's 512x512x256 volume). Producers write per-rank blocks of it;
staging shards it into fixed-size distribution blocks for DHT placement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import GeometryError
from repro.geometry.bbox import BBox

__all__ = ["Domain", "grid_decompose", "balanced_process_grid"]


@dataclass(frozen=True)
class Domain:
    """A global N-d index space ``[0, shape[i])``."""

    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shape:
            raise GeometryError("zero-dimensional domain")
        if any(s <= 0 for s in self.shape):
            raise GeometryError(f"non-positive extent in {self.shape}")
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def bbox(self) -> BBox:
        """The whole domain as a box anchored at the origin."""
        return BBox.from_shape(self.shape)

    @property
    def volume(self) -> int:
        return math.prod(self.shape)

    def subset(self, fraction: float) -> BBox:
        """A box covering ``fraction`` of the domain volume.

        Used by the paper's Case 1 ("write different subsets of the entire
        data domain"): shrink the slowest-varying dimension so the box volume
        is (as close as integer extents allow) ``fraction`` of the total.
        """
        if not (0.0 < fraction <= 1.0):
            raise GeometryError(f"fraction must be in (0, 1], got {fraction}")
        first = max(1, round(self.shape[0] * fraction))
        return BBox.from_shape((first,) + self.shape[1:])


def balanced_process_grid(nprocs: int, ndim: int) -> tuple[int, ...]:
    """Factor ``nprocs`` into an ``ndim``-way grid as close to cubic as possible.

    Mirrors ``MPI_Dims_create``: repeatedly assign the largest prime factor to
    the currently-smallest grid dimension.
    """
    if nprocs <= 0:
        raise GeometryError(f"nprocs must be positive, got {nprocs}")
    if ndim <= 0:
        raise GeometryError(f"ndim must be positive, got {ndim}")
    dims = [1] * ndim
    # Prime-factorise nprocs, largest factors first.
    factors: list[int] = []
    n = nprocs
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for factor in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= factor
    return tuple(sorted(dims, reverse=True))


def grid_decompose(box: BBox, grid: Sequence[int]) -> list[BBox]:
    """Split ``box`` into a regular grid of ``prod(grid)`` near-equal blocks.

    Remainder cells are distributed one-per-block from the low end of each
    dimension, exactly like a block-distributed HPC domain decomposition.
    Blocks are returned in row-major rank order.
    """
    if len(grid) != box.ndim:
        raise GeometryError(f"grid rank {len(grid)} != box rank {box.ndim}")
    for g, s in zip(grid, box.shape):
        if g <= 0:
            raise GeometryError(f"non-positive grid extent {g}")
        if g > s:
            raise GeometryError(f"grid extent {g} exceeds domain extent {s}")

    # Per-dimension cut points.
    cuts: list[list[tuple[int, int]]] = []
    for d, g in enumerate(grid):
        size, rem = divmod(box.shape[d], g)
        edges: list[tuple[int, int]] = []
        lo = box.lo[d]
        for i in range(g):
            extent = size + (1 if i < rem else 0)
            edges.append((lo, lo + extent))
            lo += extent
        cuts.append(edges)

    blocks: list[BBox] = []

    def rec(d: int, lo: list[int], hi: list[int]) -> None:
        if d == box.ndim:
            blocks.append(BBox(tuple(lo), tuple(hi)))
            return
        for a, b in cuts[d]:
            lo[d], hi[d] = a, b
            rec(d + 1, lo, hi)

    rec(0, [0] * box.ndim, [0] * box.ndim)
    return blocks


def iter_block_coords(grid: Sequence[int]) -> Iterator[tuple[int, ...]]:
    """Row-major iteration of grid coordinates, matching grid_decompose order."""
    ndim = len(grid)
    coord = [0] * ndim

    total = math.prod(grid)
    for _ in range(total):
        yield tuple(coord)
        for d in range(ndim - 1, -1, -1):
            coord[d] += 1
            if coord[d] < grid[d]:
                break
            coord[d] = 0
