"""Geometric substrate: N-d boxes, domain decomposition, space-filling curves."""

from repro.geometry.bbox import BBox
from repro.geometry.domain import Domain, balanced_process_grid, grid_decompose
from repro.geometry.sfc import (
    bits_for_extent,
    hilbert_decode,
    hilbert_encode,
    morton_decode,
    morton_encode,
)

__all__ = [
    "BBox",
    "Domain",
    "balanced_process_grid",
    "grid_decompose",
    "bits_for_extent",
    "hilbert_decode",
    "hilbert_encode",
    "morton_decode",
    "morton_encode",
]
