"""Fault-tolerance schemes for the performance simulator.

Each scheme implements the same four hooks used by the component step loop:

* ``checkpoint(comp)`` — what taking one checkpoint costs;
* ``recover(comp, at_step)`` — what the *failed* component does;
* ``global_restore(comp)`` — what a *healthy* component does when dragged
  into a global rollback (coordinated scheme only; no-op elsewhere);
* ``component_finished(comp)`` — end-of-run bookkeeping.

Costs follow the paper's recovery anatomy (Fig. 7b): failure detection, ULFM
process recovery from the spare pool, data recovery from the PFS checkpoint,
and staging client recovery with the recovery-event notification.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.perfsim.apps import SimComponent
from repro.perfsim.config import MachineParams
from repro.perfsim.engine import Engine
from repro.perfsim.pfs import ParallelFileSystem
from repro.perfsim.resources import SimBarrier, VersionBoard
from repro.perfsim.staging import StagingModel

__all__ = [
    "SchemeBase",
    "DsScheme",
    "UncoordinatedScheme",
    "IndividualScheme",
    "HybridScheme",
    "CoordinatedScheme",
    "make_scheme",
]


class SchemeBase:
    """Shared plumbing for all schemes."""

    name = "base"
    logging_enabled = True
    suppresses_replayed_puts = True  # staging omits redundant re-writes
    serves_replayed_gets = True  # staging replays logged reads (no re-wait)

    def __init__(
        self,
        engine: Engine,
        machine: MachineParams,
        pfs: ParallelFileSystem,
        staging: StagingModel,
        board: VersionBoard,
        consumed: VersionBoard,
    ) -> None:
        self.engine = engine
        self.machine = machine
        self.pfs = pfs
        self.staging = staging
        self.board = board
        self.consumed = consumed
        self.components: list[SimComponent] = []

    def attach(self, comp: SimComponent) -> None:
        self.components.append(comp)

    def checkpoints_component(self, comp: SimComponent) -> bool:
        """Whether this scheme checkpoints ``comp`` at all."""
        return True

    def pre_step(self, comp: SimComponent):
        """Hook run at every step start (proactive schemes override)."""
        return
        yield  # pragma: no cover - makes this a generator

    # ------------------------------------------------------------- defaults

    def checkpoint(self, comp: SimComponent):
        """Independent checkpoint: save state to PFS, notify staging."""
        yield from self.pfs.write(comp.state_bytes, comp.nodes)
        yield from self.staging.workflow_check(comp.name, comp.step)
        comp.restore_step = comp.step

    def recover(self, comp: SimComponent, at_step: int):
        """The paper's four-step local recovery."""
        yield self.engine.timeout(self.machine.failure_detection_delay)
        yield self.engine.timeout(self.machine.ulfm_recovery_time)
        yield from self.pfs.read(comp.state_bytes, comp.nodes)
        yield from self.staging.workflow_restart(comp.name, comp.restore_step)
        comp.step = comp.restore_step

    def global_restore(self, comp: SimComponent):
        """Healthy components are untouched outside the coordinated scheme."""
        return
        yield  # pragma: no cover - makes this a generator

    def component_finished(self, comp: SimComponent):
        return
        yield  # pragma: no cover - makes this a generator


class DsScheme(SchemeBase):
    """Original data staging: no logging, no checkpoints, failure-free."""

    name = "ds"
    logging_enabled = False
    suppresses_replayed_puts = False
    serves_replayed_gets = False

    def checkpoints_component(self, comp: SimComponent) -> bool:
        # No fault tolerance at all: checkpoints are skipped entirely.
        return False

    def checkpoint(self, comp: SimComponent):
        raise ConfigError("DsScheme takes no checkpoints")
        yield  # pragma: no cover

    def recover(self, comp: SimComponent, at_step: int):
        raise ConfigError("DsScheme cannot recover from failures")
        yield  # pragma: no cover


class UncoordinatedScheme(SchemeBase):
    """The paper's framework: independent C/R + data logging + replay."""

    name = "uncoordinated"
    logging_enabled = True
    suppresses_replayed_puts = True
    serves_replayed_gets = True


class IndividualScheme(SchemeBase):
    """Independent C/R without logging: the consistency-unsafe lower bound.

    Redundant re-writes are stored again at full cost (paper Fig. 2 case 2)
    and rollback re-reads are served whatever staging currently holds — a
    plain read with no waiting (stale data, Fig. 2 case 1), which is why this
    scheme bounds execution time from below while producing wrong results.
    """

    name = "individual"
    logging_enabled = False
    suppresses_replayed_puts = False
    serves_replayed_gets = False


class HybridScheme(SchemeBase):
    """Producer uses C/R with logging; consumers use process replication."""

    name = "hybrid"
    logging_enabled = True
    suppresses_replayed_puts = True
    serves_replayed_gets = True

    def checkpoints_component(self, comp: SimComponent) -> bool:
        # Replicated components do not checkpoint; replication's cost is
        # paid in cores (the replica), not in time.
        return comp.kind != "consumer"

    def recover(self, comp: SimComponent, at_step: int):
        if comp.kind == "consumer":
            # Replica failover: switch the task to the duplicate process.
            # No rollback, no staging recovery phase (paper §III-B).
            yield self.engine.timeout(self.machine.replica_failover_time)
            return
        yield from super().recover(comp, at_step)


class CoordinatedScheme(SchemeBase):
    """Global coordinated C/R: barriers + storms + whole-workflow rollback."""

    name = "coordinated"
    logging_enabled = False
    suppresses_replayed_puts = False
    serves_replayed_gets = False

    def __init__(self, *args, **kw) -> None:
        super().__init__(*args, **kw)
        self._ckpt_barrier: SimBarrier | None = None
        self._restore_barrier: SimBarrier | None = None
        self.global_restore_step = 0
        self.global_rollbacks = 0
        self._snapshot_staged_bytes = 0

    def _barriers(self) -> tuple[SimBarrier, SimBarrier]:
        if self._ckpt_barrier is None:
            n = len(self.components)
            self._ckpt_barrier = SimBarrier(self.engine, n, "co-ckpt")
            self._restore_barrier = SimBarrier(self.engine, n, "co-restore")
        assert self._restore_barrier is not None
        return self._ckpt_barrier, self._restore_barrier

    @property
    def total_ranks(self) -> int:
        return sum(c.cores for c in self.components)

    def checkpoint(self, comp: SimComponent):
        """Barrier, write state (PFS storm serializes), snapshot, barrier.

        The global snapshot must include the staging servers: their contents
        are workflow state, and a coordinated rollback restores them. The
        paper's uncoordinated scheme never pays this — data logging plus
        independent application checkpoints make persisted staging state
        unnecessary — which is a key reason its advantage grows with scale
        (staged volume grows with the job, PFS bandwidth does not).
        """
        ckpt_barrier, _ = self._barriers()
        yield self.engine.timeout(self.machine.barrier_time(self.total_ranks))
        yield from comp._interruptible_wait(ckpt_barrier.arrive())
        yield from self.pfs.write(comp.state_bytes, comp.nodes)
        if comp is self.components[0]:
            # One party accounts the staging-servers snapshot. The local
            # capture is synchronous (the barrier waits for a consistent
            # image); draining it to the PFS proceeds asynchronously, SCR
            # style, but still occupies the shared PFS channel.
            yield self.engine.timeout(self.staging.snapshot_time())
            # The PFS drain ships what the snapshot captured: the full image
            # the first time, the copy-on-write delta afterwards.
            staged = self.staging.last_snapshot_bytes
            if staged:
                self.engine.process(
                    self.pfs.write(staged, self.staging.config.staging_nodes),
                    name="staging-snapshot-drain",
                )
        yield self.engine.timeout(self.machine.barrier_time(self.total_ranks))
        yield from comp._interruptible_wait(ckpt_barrier.arrive())
        comp.restore_step = comp.step
        self.global_restore_step = comp.step
        self._snapshot_staged_bytes = self.staging.total_bytes

    def recover(self, comp: SimComponent, at_step: int):
        """The failed component: detect, trigger everyone, then join them."""
        yield self.engine.timeout(self.machine.failure_detection_delay)
        yield self.engine.timeout(self.machine.ulfm_recovery_time)
        self._trigger_rollback(exclude=comp)
        yield from self.global_restore(comp)

    def _trigger_rollback(self, exclude: SimComponent) -> None:
        self.global_rollbacks += 1
        ckpt_barrier, _ = self._barriers()
        ckpt_barrier.reset()  # abandon any half-gathered checkpoint round
        # Rewind staging and coupling state to the snapshot *now*, before any
        # component resumes (zero virtual time).
        restored_version = self.global_restore_step - 1
        self.staging.rollback_retention(restored_version)
        for var in self.components[0].config.variables:
            self.board.unpublish_from(var, self.global_restore_step)
            self.consumed.unpublish_from(var, self.global_restore_step)
        for other in self.components:
            if other is exclude:
                continue
            if other.interruptible and other.process is not None:
                other.process.interrupt("global-rollback")
            else:
                other.rollback_flag = True

    def global_restore(self, comp: SimComponent):
        """Every component: rendezvous, restore storm, rewind, re-execute."""
        _, restore_barrier = self._barriers()
        yield restore_barrier.arrive()
        yield from self.pfs.read(comp.state_bytes, comp.nodes)
        if comp is self.components[0]:
            # One party accounts re-loading the staging snapshot from PFS.
            staged = getattr(self, "_snapshot_staged_bytes", 0)
            if staged:
                yield from self.pfs.read(staged, self.staging.config.staging_nodes)
        comp.step = self.global_restore_step
        # Full re-execution: coordinated rollback has no replay shortcut.
        comp.frontier = self.global_restore_step
        comp.rollback_flag = False

    def component_finished(self, comp: SimComponent):
        """Finished components would block future barriers; shrink them."""
        ckpt_barrier, restore_barrier = self._barriers()
        remaining = sum(1 for c in self.components if not c.done)
        if remaining > 0:
            ckpt_barrier.set_parties(remaining)
            restore_barrier.set_parties(remaining)
        return
        yield  # pragma: no cover


_SCHEMES = {
    "ds": DsScheme,
    "uncoordinated": UncoordinatedScheme,
    "individual": IndividualScheme,
    "hybrid": HybridScheme,
    "coordinated": CoordinatedScheme,
}


def make_scheme(
    name: str,
    engine: Engine,
    machine: MachineParams,
    pfs: ParallelFileSystem,
    staging: StagingModel,
    board: VersionBoard,
    consumed: VersionBoard,
) -> SchemeBase:
    """Instantiate a scheme by its paper abbreviation-ish name."""
    try:
        cls = _SCHEMES[name]
    except KeyError:
        raise ConfigError(f"unknown scheme {name!r}; choose from {sorted(_SCHEMES)}")
    return cls(engine, machine, pfs, staging, board, consumed)
