"""Simulated workflow runner: wire up one experiment and execute it.

``simulate(config, scheme, failures)`` builds the machine (PFS, staging
servers, version boards), the producer and consumer components, the chosen
fault-tolerance scheme, injects the failure schedule, runs the DES to
completion, and returns a :class:`~repro.perfsim.metrics.SimResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, SimulationError
from repro.obs import trace as _trace
from repro.perfsim.apps import SimConsumer, SimProducer
from repro.perfsim.config import TABLE3_MTBF, WorkflowConfig
from repro.perfsim.engine import Engine
from repro.perfsim.ft import make_scheme
from repro.perfsim.metrics import ComponentMetrics, SimResult
from repro.perfsim.pfs import ParallelFileSystem
from repro.perfsim.resources import VersionBoard
from repro.perfsim.staging import StagingModel
from repro.util.rng import RngRegistry

__all__ = ["SimFailure", "simulate", "sample_failures", "SIM_SCHEMES"]

SIM_SCHEMES = (
    "ds",
    "coordinated",
    "uncoordinated",
    "hybrid",
    "individual",
    "proactive",
    "multilevel",
)

PRODUCER = "simulation"
CONSUMER = "analytic"


@dataclass(frozen=True)
class SimFailure:
    """One injected failure: which component, at which step, what kind.

    ``kind="process"`` is the paper's fail-stop process failure;
    ``kind="node"`` additionally destroys node-local checkpoint copies
    (relevant to the multi-level extension only).
    """

    component: str
    step: int
    kind: str = "process"

    def __post_init__(self) -> None:
        if self.component not in (PRODUCER, CONSUMER):
            raise ConfigError(
                f"failure component must be {PRODUCER!r} or {CONSUMER!r}, "
                f"got {self.component!r}"
            )
        if self.step < 0:
            raise ConfigError(f"failure step must be >= 0, got {self.step}")
        if self.kind not in ("process", "node"):
            raise ConfigError(f"failure kind must be process|node, got {self.kind!r}")


def sample_failures(
    config: WorkflowConfig, count: int, seed: int | None = None
) -> list[SimFailure]:
    """The paper's injection model: ``count`` random fail-stop failures.

    The failed process is uniform over application processes, so the victim
    component is drawn weighted by core count; the step is uniform within
    the run. The count->MTBF mapping follows Table III (600/300/200 s).
    """
    if count < 0:
        raise ConfigError(f"failure count must be >= 0, got {count}")
    rng = RngRegistry(seed if seed is not None else config.seed)
    app_cores = config.sim_cores + config.analytic_cores
    failures = []
    for i in range(count):
        roll = rng.integers(f"failure-victim-{i}", 0, app_cores)
        component = PRODUCER if roll < config.sim_cores else CONSUMER
        step = rng.integers(f"failure-step-{i}", 1, config.num_steps)
        failures.append(SimFailure(component=component, step=step))
    return sorted(failures, key=lambda f: f.step)


def mtbf_for(count: int) -> float:
    """Table III's MTBF corresponding to an injected failure count."""
    return TABLE3_MTBF.get(count, 600.0 / max(count, 1))


def simulate(
    config: WorkflowConfig,
    scheme: str,
    failures: list[SimFailure] | None = None,
    max_ahead: int = 2,
    ds_keep_versions: int = 2,
) -> SimResult:
    """Run one simulated workflow and return its metrics."""
    if scheme not in SIM_SCHEMES:
        raise ConfigError(f"unknown scheme {scheme!r}; choose from {SIM_SCHEMES}")
    failures = list(failures or [])
    if scheme == "ds" and failures:
        raise ConfigError("the ds baseline is failure-free by definition")

    engine = Engine()
    pfs = ParallelFileSystem(engine, config.machine)
    logging_enabled = scheme in ("uncoordinated", "hybrid", "proactive", "multilevel")
    staging = StagingModel(
        engine, config, logging_enabled=logging_enabled, ds_keep_versions=ds_keep_versions
    )
    board = VersionBoard(engine)
    consumed = VersionBoard(engine)
    if scheme in ("proactive", "multilevel"):
        from repro.perfsim.extensions import MultiLevelScheme, ProactiveScheme

        cls = ProactiveScheme if scheme == "proactive" else MultiLevelScheme
        ft = cls(engine, config.machine, pfs, staging, board, consumed)
        if scheme == "proactive":
            ft.load_predictions(failures)
    else:
        ft = make_scheme(scheme, engine, config.machine, pfs, staging, board, consumed)

    producer = SimProducer(
        name=PRODUCER,
        engine=engine,
        config=config,
        staging=staging,
        board=board,
        consumed=consumed,
        scheme=ft,
        cores=config.sim_cores,
        nodes=config.sim_nodes,
        compute_time=config.sim_compute_time,
        checkpoint_period=(
            config.coordinated_checkpoint_period
            if scheme == "coordinated"
            else config.sim_checkpoint_period
        ),
        state_bytes=config.sim_state_bytes,
        failure_steps=[(f.step, f.kind) for f in failures if f.component == PRODUCER],
        max_ahead=max_ahead,
    )
    consumer = SimConsumer(
        name=CONSUMER,
        engine=engine,
        config=config,
        staging=staging,
        board=board,
        consumed=consumed,
        scheme=ft,
        cores=config.analytic_cores,
        nodes=config.analytic_nodes,
        compute_time=config.analytic_compute_time,
        checkpoint_period=(
            config.coordinated_checkpoint_period
            if scheme == "coordinated"
            else config.analytic_checkpoint_period
        ),
        state_bytes=config.analytic_state_bytes,
        failure_steps=[(f.step, f.kind) for f in failures if f.component == CONSUMER],
        max_ahead=max_ahead,
    )
    for comp in (producer, consumer):
        ft.attach(comp)
    for comp in (producer, consumer):
        comp.process = engine.process(comp.run(), name=comp.name)

    with _trace.span("perfsim.simulate", scheme=scheme, config=config.name):
        engine.run()
    for comp in (producer, consumer):
        if not comp.done:
            raise SimulationError(
                f"component {comp.name!r} stalled at step {comp.step} "
                f"(scheme {scheme!r}, config {config.name!r})"
            )

    components = {
        comp.name: ComponentMetrics(
            name=comp.name,
            kind=comp.kind,
            finish_time=comp.finish_time or 0.0,
            steps_run=comp.steps_run.count,
            checkpoints=comp.checkpoints.count,
            recoveries=comp.recoveries.count,
            phases=comp.phases,
        )
        for comp in (producer, consumer)
    }
    return SimResult(
        scheme=scheme,
        config_name=config.name,
        total_time=engine.now,
        components=components,
        cumulative_write_response=staging.write_response.total,
        write_count=staging.write_response.count,
        cumulative_read_response=staging.read_response.total,
        memory=staging.memory,
        failures_injected=len(failures),
        gc_bytes_freed=staging.gc_bytes_freed.total,
        suppressed_requests=staging.suppressed_requests.count,
        pfs_utilization=pfs.utilization(),
        events_processed=engine.events_processed,
    )
