"""Result containers for simulated workflow runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfsim.apps import PhaseTimes
from repro.util.timeline import Timeline

__all__ = ["ComponentMetrics", "SimResult"]


@dataclass(frozen=True)
class ComponentMetrics:
    """Per-component outcome of one simulated run."""

    name: str
    kind: str
    finish_time: float
    steps_run: int
    checkpoints: int
    recoveries: int
    phases: PhaseTimes


@dataclass
class SimResult:
    """Everything one simulated workflow run produced."""

    scheme: str
    config_name: str
    total_time: float
    components: dict[str, ComponentMetrics]
    # Figure 9(a)/(b): cumulative data write response time.
    cumulative_write_response: float
    write_count: int
    cumulative_read_response: float
    # Figure 9(c)/(d): staging memory (bytes over time).
    memory: Timeline
    failures_injected: int
    gc_bytes_freed: float = 0.0
    suppressed_requests: int = 0
    pfs_utilization: float = 0.0
    events_processed: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def mean_write_response(self) -> float:
        """Average service time of one write request."""
        if self.write_count == 0:
            return 0.0
        return self.cumulative_write_response / self.write_count

    @property
    def peak_memory(self) -> float:
        return self.memory.peak

    @property
    def mean_memory(self) -> float:
        return self.memory.time_weighted_mean()

    def summary(self) -> dict:
        """Flat dict for report tables."""
        return {
            "scheme": self.scheme,
            "config": self.config_name,
            "total_time_s": round(self.total_time, 3),
            "cum_write_response_s": round(self.cumulative_write_response, 4),
            "peak_memory_bytes": int(self.peak_memory),
            "mean_memory_bytes": int(self.mean_memory),
            "failures": self.failures_injected,
        }
