"""Discrete-event performance simulator: a calibrated Cori/XC40 model that
reproduces the paper's Figures 9 and 10 (write response time, staging memory,
and total workflow execution time under failures, at up to 11264 cores)."""

from repro.perfsim.config import (
    CORI,
    TABLE2,
    TABLE3_MTBF,
    TABLE3_SCALES,
    MachineParams,
    WorkflowConfig,
    table2_config,
    table3_config,
)
from repro.perfsim.engine import Engine, Interrupt, Process, SimEvent, Timeout, all_of
from repro.perfsim.extensions import MultiLevelScheme, ProactiveScheme
from repro.perfsim.metrics import ComponentMetrics, SimResult
from repro.perfsim.pfs import ParallelFileSystem
from repro.perfsim.resources import FifoResource, SimBarrier, TokenPool, VersionBoard
from repro.perfsim.staging import StagingModel
from repro.perfsim.workflow import (
    CONSUMER,
    PRODUCER,
    SIM_SCHEMES,
    SimFailure,
    sample_failures,
    simulate,
)

__all__ = [
    "CORI",
    "TABLE2",
    "TABLE3_MTBF",
    "TABLE3_SCALES",
    "MachineParams",
    "WorkflowConfig",
    "table2_config",
    "table3_config",
    "Engine",
    "Interrupt",
    "MultiLevelScheme",
    "ProactiveScheme",
    "Process",
    "SimEvent",
    "Timeout",
    "all_of",
    "ComponentMetrics",
    "SimResult",
    "ParallelFileSystem",
    "FifoResource",
    "SimBarrier",
    "TokenPool",
    "VersionBoard",
    "StagingModel",
    "CONSUMER",
    "PRODUCER",
    "SIM_SCHEMES",
    "SimFailure",
    "sample_failures",
    "simulate",
]
