"""Queued resources for the DES: FIFO servers, token pools, and barriers."""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from repro.errors import SimulationError
from repro.perfsim.engine import Engine, SimEvent

__all__ = ["FifoResource", "TokenPool", "SimBarrier", "VersionBoard"]


class FifoResource:
    """A server pool with FIFO queueing.

    ``acquire()`` returns an event firing when a server slot is granted;
    ``release()`` hands the slot to the next waiter. The standard pattern::

        grant = resource.acquire()
        yield grant
        yield engine.timeout(service_time)
        resource.release()
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "") -> None:
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[SimEvent] = deque()
        # Saturation metrics.
        self.total_waits = 0
        self.busy_time = 0.0
        self._last_change = 0.0

    def acquire(self) -> SimEvent:
        """Request a slot; the returned event fires on grant."""
        ev = SimEvent(self.engine)
        self._account()
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self.total_waits += 1
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Free a slot, granting it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._account()
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def service(self, duration: float) -> Generator:
        """Convenience process fragment: acquire, hold, release."""
        yield self.acquire()
        yield self.engine.timeout(duration)
        self.release()

    def _account(self) -> None:
        now = self.engine.now
        self.busy_time += self._in_use / self.capacity * (now - self._last_change)
        self._last_change = now

    def utilization(self) -> float:
        """Fraction of capacity-time spent busy so far."""
        self._account()
        if self.engine.now <= 0:
            return 0.0
        return self.busy_time / self.engine.now


class TokenPool:
    """A counted pool (e.g. spare processes) with blocking acquisition."""

    def __init__(self, engine: Engine, tokens: int, name: str = "") -> None:
        if tokens < 0:
            raise SimulationError(f"token count must be >= 0, got {tokens}")
        self.engine = engine
        self.tokens = tokens
        self.name = name
        self._waiters: deque[tuple[int, SimEvent]] = deque()

    def acquire(self, n: int = 1) -> SimEvent:
        ev = SimEvent(self.engine)
        if self.tokens >= n and not self._waiters:
            self.tokens -= n
            ev.succeed()
        else:
            self._waiters.append((n, ev))
        return ev

    def release(self, n: int = 1) -> None:
        self.tokens += n
        while self._waiters and self._waiters[0][0] <= self.tokens:
            need, ev = self._waiters.popleft()
            self.tokens -= need
            ev.succeed()


class SimBarrier:
    """An N-party reusable barrier in virtual time."""

    def __init__(self, engine: Engine, parties: int, name: str = "") -> None:
        if parties <= 0:
            raise SimulationError(f"barrier parties must be positive, got {parties}")
        self.engine = engine
        self.parties = parties
        self.name = name
        self._arrived: list[SimEvent] = []
        self.cycles = 0

    def arrive(self) -> SimEvent:
        """Returns an event firing when all parties of this cycle arrived."""
        ev = SimEvent(self.engine)
        self._arrived.append(ev)
        if len(self._arrived) == self.parties:
            batch, self._arrived = self._arrived, []
            self.cycles += 1
            for waiter in batch:
                waiter.succeed()
        return ev

    def reset(self) -> None:
        """Discard arrivals of an abandoned cycle (waiters were interrupted
        and detached; their grant events are dead)."""
        self._arrived.clear()

    def set_parties(self, parties: int) -> None:
        """Adjust party count (components leaving a coordinated protocol)."""
        if parties <= 0:
            raise SimulationError("barrier must keep at least one party")
        self.parties = parties
        if len(self._arrived) >= self.parties:
            batch, self._arrived = self._arrived, []
            self.cycles += 1
            for waiter in batch:
                waiter.succeed()


class VersionBoard:
    """Publish/subscribe on (name, version) availability.

    Producers announce versions; consumers wait on them. This models
    DataSpaces' metadata notification without simulating each message.
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._published: set[tuple[str, int]] = set()
        self._waiters: dict[tuple[str, int], list[SimEvent]] = {}

    def publish(self, name: str, version: int) -> None:
        key = (name, version)
        if key in self._published:
            return
        self._published.add(key)
        for waiter in self._waiters.pop(key, ()):  # wake subscribers
            waiter.succeed()

    def unpublish_from(self, name: str, version: int) -> None:
        """Retract versions >= ``version`` (global rollback rewinds staging)."""
        doomed = [k for k in self._published if k[0] == name and k[1] >= version]
        for k in doomed:
            self._published.discard(k)

    def available(self, name: str, version: int) -> bool:
        return (name, version) in self._published

    def wait_for(self, name: str, version: int) -> SimEvent:
        ev = SimEvent(self.engine)
        key = (name, version)
        if key in self._published:
            ev.succeed()
        else:
            self._waiters.setdefault(key, []).append(ev)
        return ev
