"""Discrete-event simulation kernel.

A small SimPy-flavoured engine: *processes* are generators that yield
waitable :class:`SimEvent` objects (timeouts, signals, other processes);
the :class:`Engine` advances virtual time through a binary heap of pending
callbacks. Supports process interruption (needed to model fail-stop crashes
hitting components mid-phase) and composite waits (:func:`all_of`).

Kept deliberately dependency-free so simulating an 11264-core workflow is a
few hundred thousand heap operations — comfortably fast in pure Python.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Any, Callable, Generator, Iterable

from repro.errors import SimulationError
from repro.obs import registry as _obs

_RUN_SECONDS = _obs.histogram("perfsim.run.wall_seconds")
_EVENTS = _obs.counter("perfsim.events_processed")
_SIM_TIME = _obs.gauge("perfsim.sim_time_seconds")
_EVENT_RATE = _obs.gauge("perfsim.events_per_wall_second")

__all__ = [
    "Engine",
    "SimEvent",
    "Timeout",
    "Process",
    "Interrupt",
    "all_of",
]


class Interrupt(Exception):
    """Thrown into a process that was interrupted (e.g. by a failure)."""

    def __init__(self, cause: Any = None):
        self.cause = cause
        super().__init__(f"interrupted: {cause!r}")


class SimEvent:
    """A one-shot waitable value in virtual time."""

    __slots__ = ("engine", "callbacks", "_triggered", "value", "_ok")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: list[Callable[[SimEvent], None]] = []
        self._triggered = False
        self._ok = True
        self.value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """False when the event carries an exception instead of a value."""
        return self._ok

    def succeed(self, value: Any = None) -> "SimEvent":
        """Fire the event with ``value``; waiters resume this same instant."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self.value = value
        self.engine._schedule_event(self)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        """Fire the event exceptionally; waiters see ``exc`` raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = False
        self.value = exc
        self.engine._schedule_event(self)
        return self


class Timeout(SimEvent):
    """An event that fires ``delay`` after its creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(engine)
        self.delay = delay
        self._triggered = True  # cannot be succeeded manually
        engine._schedule_at(engine.now + delay, self._fire)

    def _fire(self) -> None:
        self.value = None
        self.engine._run_callbacks(self)


class Process(SimEvent):
    """A generator-driven process; itself waitable (fires on return)."""

    __slots__ = ("generator", "name", "_waiting_on", "_interrupts")

    def __init__(self, engine: "Engine", generator: Generator, name: str = "") -> None:
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: SimEvent | None = None
        self._interrupts: list[Interrupt] = []
        engine._schedule_at(engine.now, lambda: self._resume(None, None))

    @property
    def alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self._triggered:
            return  # interrupting a finished process is a no-op
        interrupt = Interrupt(cause)
        self._interrupts.append(interrupt)
        waiting = self._waiting_on
        if waiting is not None:
            # Detach from the event we were waiting on and resume with the
            # interrupt at the current instant.
            try:
                waiting.callbacks.remove(self._on_event)
            except ValueError:
                pass
            self._waiting_on = None
            self.engine._schedule_at(self.engine.now, self._deliver_interrupt)

    def _deliver_interrupt(self) -> None:
        if self._triggered or not self._interrupts:
            return
        self._resume(None, self._interrupts.pop(0))

    def _on_event(self, event: SimEvent) -> None:
        self._waiting_on = None
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)

    def _resume(self, value: Any, exc: BaseException | None) -> None:
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except Interrupt:
            raise SimulationError(
                f"process {self.name!r} did not handle an interrupt"
            ) from None
        except BaseException as err:
            self._finish(None, err)
            return
        if not isinstance(target, SimEvent):
            self.generator.throw(
                SimulationError(f"process {self.name!r} yielded {target!r}")
            )
            return
        if target.triggered and not isinstance(target, Timeout):
            # Already-fired event: resume immediately (this instant).
            if target.ok:
                self.engine._schedule_at(
                    self.engine.now, lambda: self._resume(target.value, None)
                )
            else:
                self.engine._schedule_at(
                    self.engine.now, lambda: self._resume(None, target.value)
                )
            return
        self._waiting_on = target
        target.callbacks.append(self._on_event)

    def _finish(self, value: Any, exc: BaseException | None) -> None:
        self._triggered = True
        if exc is None:
            self.value = value
        else:
            self._ok = False
            self.value = exc
        watched = bool(self.callbacks)
        self.engine._run_callbacks(self)
        if exc is not None and not watched:
            # No one is watching this process: surface the crash.
            raise exc


def all_of(engine: "Engine", events: Iterable[SimEvent]) -> SimEvent:
    """An event firing when every input event has fired (list of values)."""
    events = list(events)
    gate = SimEvent(engine)
    if not events:
        engine._schedule_at(engine.now, lambda: gate.succeed([]))
        return gate
    remaining = {"n": len(events)}
    values: list[Any] = [None] * len(events)

    def make_cb(i: int):
        def cb(ev: SimEvent) -> None:
            if not ev.ok:
                if not gate.triggered:
                    gate.fail(ev.value)
                return
            values[i] = ev.value
            remaining["n"] -= 1
            if remaining["n"] == 0 and not gate.triggered:
                gate.succeed(values)

        return cb

    for i, ev in enumerate(events):
        if ev.triggered:
            if ev.ok:
                values[i] = ev.value
                remaining["n"] -= 1
            else:
                engine._schedule_at(engine.now, lambda e=ev: gate.fail(e.value))
                return gate
        else:
            ev.callbacks.append(make_cb(i))
    if remaining["n"] == 0:
        engine._schedule_at(engine.now, lambda: gate.succeed(values))
    return gate


class Engine:
    """The event loop: a heap of (time, tiebreak, callback)."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._processed = 0

    # ------------------------------------------------------------- creation

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a generator as a running process."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float) -> Timeout:
        """An event firing ``delay`` seconds of virtual time from now."""
        return Timeout(self, delay)

    def event(self) -> SimEvent:
        """A bare event to be succeeded manually."""
        return SimEvent(self)

    # ------------------------------------------------------------ scheduling

    def _schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        if time < self.now - 1e-12:
            raise SimulationError(f"scheduling into the past: {time} < {self.now}")
        heapq.heappush(self._heap, (time, next(self._counter), callback))

    def _schedule_event(self, event: SimEvent) -> None:
        self._schedule_at(self.now, lambda: self._run_callbacks(event))

    def _run_callbacks(self, event: SimEvent) -> None:
        callbacks, event.callbacks = event.callbacks, []
        for cb in callbacks:
            cb(event)

    # ------------------------------------------------------------------ run

    def run(self, until: float | None = None, max_events: int = 50_000_000) -> float:
        """Drain the event heap; returns the final virtual time.

        ``until`` bounds virtual time; ``max_events`` guards against
        accidental infinite simulations. Engine throughput (events
        processed, sim-time vs wall-time) is reported to ``repro.obs`` once
        per drain — the event loop itself is never instrumented.
        """
        t0 = perf_counter()
        processed_before = self._processed
        try:
            while self._heap:
                time, _tie, callback = self._heap[0]
                if until is not None and time > until:
                    self.now = until
                    return self.now
                heapq.heappop(self._heap)
                self.now = time
                callback()
                self._processed += 1
                if self._processed > max_events:
                    raise SimulationError(f"exceeded {max_events} events; runaway sim?")
            return self.now
        finally:
            wall = perf_counter() - t0
            processed = self._processed - processed_before
            _RUN_SECONDS.record(wall)
            _EVENTS.inc(processed)
            _SIM_TIME.set(self.now)
            if wall > 0:
                _EVENT_RATE.set(processed / wall)

    @property
    def events_processed(self) -> int:
        return self._processed
