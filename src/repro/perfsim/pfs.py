"""Parallel file system (Lustre-like) bandwidth model.

Checkpoint and restore traffic flows through a shared PFS. Jobs queue FIFO
for the aggregate bandwidth; each job's service time is bounded both by the
aggregate share and by the per-node bandwidth cap of the writing component.
Serialized FIFO access is what makes coordinated checkpoint/restore *storms*
expensive: when every component writes at once the storm's makespan is the
sum of the transfers, which is exactly the contention effect the paper's
uncoordinated scheme avoids by staggering checkpoints.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import ConfigError
from repro.perfsim.config import MachineParams
from repro.perfsim.engine import Engine
from repro.perfsim.resources import FifoResource
from repro.util.timeline import Counter

__all__ = ["ParallelFileSystem"]


class ParallelFileSystem:
    """FIFO-scheduled shared storage with per-node bandwidth caps."""

    def __init__(self, engine: Engine, machine: MachineParams) -> None:
        self.engine = engine
        self.machine = machine
        self._channel = FifoResource(engine, capacity=1, name="pfs")
        self.bytes_written = Counter("pfs_bytes_written")
        self.bytes_read = Counter("pfs_bytes_read")
        self.write_time = Counter("pfs_write_time")
        self.read_time = Counter("pfs_read_time")

    # ----------------------------------------------------------- internals

    def _transfer_time(self, nbytes: int, nodes: int) -> float:
        if nbytes < 0:
            raise ConfigError(f"negative transfer size {nbytes}")
        if nodes <= 0:
            raise ConfigError(f"transfer needs >= 1 node, got {nodes}")
        bandwidth = min(
            self.machine.pfs_aggregate_bandwidth,
            nodes * self.machine.pfs_node_bandwidth,
        )
        return nbytes / bandwidth

    # ----------------------------------------------------------------- api

    def write(self, nbytes: int, nodes: int) -> Generator:
        """Process fragment: write ``nbytes`` from ``nodes`` compute nodes."""
        duration = self._transfer_time(nbytes, nodes)
        start = self.engine.now
        yield self._channel.acquire()
        yield self.engine.timeout(duration)
        self._channel.release()
        self.bytes_written.add(nbytes)
        self.write_time.add(self.engine.now - start)

    def read(self, nbytes: int, nodes: int) -> Generator:
        """Process fragment: read ``nbytes`` into ``nodes`` compute nodes."""
        duration = self._transfer_time(nbytes, nodes)
        start = self.engine.now
        yield self._channel.acquire()
        yield self.engine.timeout(duration)
        self._channel.release()
        self.bytes_read.add(nbytes)
        self.read_time.add(self.engine.now - start)

    def utilization(self) -> float:
        """Busy fraction of the PFS channel so far."""
        return self._channel.utilization()
