"""Staging-area cost and capacity model for the performance simulator.

Service times: a put/get is sharded across the owning staging servers via the
*real* placement map (:class:`repro.staging.hashing.PlacementMap`); each
server is a FIFO queue whose service time is request overhead plus bytes over
the server's NIC share. Data/event logging adds the calibrated per-byte and
per-request costs of §IV ("data/event logging increased the write response
time by 10-15 %").

Capacity: the model reuses the *actual* logging components from
:mod:`repro.core` — event queues, data log, garbage collector — driven with
metadata-only descriptors (byte counts, no payloads), so the memory curves in
Figure 9(c)/(d) come from the same retention logic the functional runtime
executes, at simulated-Cori data sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from repro.core.data_log import DataLog
from repro.core.event_queue import EventQueue
from repro.core.events import EventKind
from repro.core.garbage import GarbageCollector
from repro.descriptors.odsc import ObjectDescriptor
from repro.errors import ConfigError
from repro.obs import registry as _obs
from repro.perfsim.config import WorkflowConfig
from repro.perfsim.engine import Engine, all_of
from repro.perfsim.resources import FifoResource
from repro.staging.hashing import PlacementMap
from repro.staging.resilience import ProtectionIndex
from repro.util.timeline import Counter, Timeline

__all__ = ["AccountingServer", "AccountingGroup", "StagingModel"]

# Simulated-time service latencies: the same op-level histograms the
# threaded runtime records in wall time, here in virtual seconds.
_SIM_PUT_SECONDS = _obs.histogram("perfsim.staging.put.sim_seconds")
_SIM_GET_SECONDS = _obs.histogram("perfsim.staging.get.sim_seconds")


class AccountingServer:
    """Byte-count-only stand-in for a staging server's store.

    Provides the slice of the server interface the shared logging components
    (:class:`~repro.core.data_log.DataLog`) require: ``evict`` returning the
    bytes freed.
    """

    def __init__(self, server_id: int) -> None:
        self.server_id = server_id
        self._sizes: dict[tuple[str, int], int] = {}

    def add(self, name: str, version: int, nbytes: int) -> None:
        self._sizes[(name, version)] = self._sizes.get((name, version), 0) + nbytes

    def evict(self, name: str, version: int) -> int:
        return self._sizes.pop((name, version), 0)

    def versions(self, name: str) -> list[int]:
        return sorted({v for (n, v) in self._sizes if n == name})

    @property
    def nbytes(self) -> int:
        return sum(self._sizes.values())


@dataclass
class AccountingGroup:
    """Duck-typed staging group for :class:`DataLog` (``.servers`` plus an
    always-empty protection index so eviction bookkeeping type-checks)."""

    servers: list[AccountingServer] = field(default_factory=list)
    records: ProtectionIndex = field(default_factory=ProtectionIndex)

    @property
    def total_bytes(self) -> int:
        return sum(s.nbytes for s in self.servers)


class StagingModel:
    """Simulated staging area: service queues + retention accounting."""

    def __init__(
        self,
        engine: Engine,
        config: WorkflowConfig,
        logging_enabled: bool,
        ds_keep_versions: int = 2,
    ) -> None:
        if ds_keep_versions < 1:
            raise ConfigError(f"ds_keep_versions must be >= 1, got {ds_keep_versions}")
        self.engine = engine
        self.config = config
        self.machine = config.machine
        self.logging_enabled = logging_enabled
        self.ds_keep_versions = ds_keep_versions

        n = config.num_staging_servers
        self.placement = PlacementMap(config.domain, n)
        self.server_queues = [
            FifoResource(engine, capacity=1, name=f"staging-{i}") for i in range(n)
        ]
        # Per-server NIC share: staging nodes' injection bandwidth divided
        # over the server processes they host.
        self.server_bandwidth = (
            self.machine.nic_bandwidth * config.staging_nodes / n
        )

        # Shared-core logging machinery (metadata-only).
        self.group = AccountingGroup(servers=[AccountingServer(i) for i in range(n)])
        self.queues: dict[str, EventQueue] = {}
        self.log = DataLog(group=self.group)  # type: ignore[arg-type]
        self.gc = GarbageCollector(log=self.log, queues=self.queues)

        self._shard_cache: dict[tuple, dict[int, int]] = {}
        # Constant runtime footprint (buffers + index), present with or
        # without logging; proportional to the per-step transferred volume.
        self.base_bytes = int(
            self.machine.staging_buffer_factor
            * config.bytes_per_step
            * config.subset_fraction
        )

        # Incremental-checkpoint accounting: bytes newly staged per server
        # since the last snapshot epoch (the size of that server's
        # copy-on-write journal payload). Evictions only shrink a journal's
        # replay cost, so they are not tracked.
        self._dirty_bytes: dict[int, int] = {}
        self._has_snapshot = False
        # Bytes the most recent snapshot actually captured (delta once a
        # base exists); read by the coordinated scheme's PFS drain.
        self.last_snapshot_bytes = 0

        # Metrics.
        self.write_response = Counter("write_response")
        self.read_response = Counter("read_response")
        self.suppressed_requests = Counter("suppressed_requests")
        self.memory = Timeline("staging_bytes")
        self.gc_bytes_freed = Counter("gc_bytes_freed")

    # ------------------------------------------------------------ lifecycle

    def register(self, component: str) -> None:
        self.queues.setdefault(component, EventQueue(component=component))

    def _sample_memory(self) -> None:
        self.memory.record(
            self.engine.now, float(self.group.total_bytes + self.base_bytes)
        )

    # ----------------------------------------------------------- transfers

    def _shard_bytes(self, desc: ObjectDescriptor, fraction: float) -> dict[int, int]:
        """Bytes landing on each server for ``desc`` (merged per server).

        ``fraction`` models the paper's Case 1 subsets: a cell-strided
        selection of the domain (e.g. every k-th plane), which DataSpaces
        distributes uniformly, so every owning server receives that fraction
        of its full shard. Cached per (bbox, itemsize, fraction): workloads
        re-use the same region every step and the placement map is immutable.
        """
        if not (0.0 < fraction <= 1.0):
            raise ConfigError(f"fraction out of (0, 1]: {fraction}")
        key = (desc.bbox, desc.itemsize, fraction)
        cached = self._shard_cache.get(key)
        if cached is None:
            item = desc.itemsize
            cached = {}
            for server_id, sub in self.placement.shards(desc.bbox):
                cached[server_id] = cached.get(server_id, 0) + sub.volume * item
            if fraction < 1.0:
                cached = {sid: max(1, int(b * fraction)) for sid, b in cached.items()}
            self._shard_cache[key] = cached
        return cached

    def _service_fragment(
        self, server_id: int, nbytes: int, rank_requests: float, op: EventKind
    ) -> Generator:
        queue = self.server_queues[server_id]
        t = (
            self.machine.nic_latency
            + rank_requests * self.machine.staging_request_overhead
            + nbytes / self.server_bandwidth
        )
        if self.logging_enabled:
            # Writes pay the payload copy into the log + version indexing;
            # reads only append a get event to the queue.
            t += self.machine.logging_request_overhead
            if op is EventKind.PUT:
                t += self.machine.logging_byte_factor * nbytes / self.server_bandwidth
        yield queue.acquire()
        yield self.engine.timeout(t)
        queue.release()

    def _transfer(
        self, desc: ObjectDescriptor, fraction: float, ranks: int, op: EventKind
    ) -> Generator:
        """Parallel sharded transfer; completes when the slowest shard does."""
        shards = self._shard_bytes(desc, fraction)
        rank_requests = max(1.0, ranks / max(1, len(shards)))
        procs = [
            self.engine.process(
                self._service_fragment(sid, nbytes, rank_requests, op),
                name=f"xfer-{desc.name}-{sid}",
            )
            for sid, nbytes in shards.items()
        ]
        yield all_of(self.engine, procs)

    # ------------------------------------------------------------------ put

    def put(
        self,
        component: str,
        desc: ObjectDescriptor,
        suppressed: bool = False,
        fraction: float = 1.0,
        ranks: int = 1,
    ) -> Generator:
        """Process fragment servicing one ``dspaces_put_with_log``.

        ``suppressed=True`` models a rollback re-execution's redundant write:
        only the metadata round-trip is paid (the staging area recognises the
        request from the event queue and omits the store).
        """
        start = self.engine.now
        if suppressed and self.logging_enabled:
            # One metadata round trip: the event-queue lookup recognises the
            # redundant write; no payload moves and no per-rank buffer setup.
            yield self.engine.timeout(
                self.machine.nic_latency + self.machine.logging_request_overhead
            )
            self.suppressed_requests.add(1)
            return
        yield from self._transfer(desc, fraction, ranks, EventKind.PUT)
        self.write_response.add(self.engine.now - start)
        _SIM_PUT_SECONDS.record(self.engine.now - start)
        # Metadata accounting.
        total = 0
        for sid, nbytes in self._shard_bytes(desc, fraction).items():
            self.group.servers[sid].add(desc.name, desc.version, nbytes)
            self._dirty_bytes[sid] = self._dirty_bytes.get(sid, 0) + nbytes
            total += nbytes
        if self.logging_enabled:
            self.register(component)
            self.queues[component].record_data(EventKind.PUT, desc, "", desc.version)
            self.log.record_put(
                desc.name, desc.version, total, component, desc.version
            )
        else:
            self._ds_retention(desc.name, desc.version)
        self._sample_memory()

    def _evict_below(self, name: str, floor: int) -> None:
        """Drop all versions of ``name`` strictly below ``floor``."""
        for server in self.group.servers:
            for v in server.versions(name):
                if v < floor:
                    server.evict(name, v)
        for v in list(self.log.logged_versions(name)):
            if v < floor:
                self.log.records.pop((name, v), None)

    def _ds_retention(self, name: str, version: int) -> None:
        """Bound original-staging retention to the coupling window.

        The consumed-version eviction in :meth:`get` is the primary policy;
        this put-side cap (latest ``ds_keep_versions`` + the flow-control
        window) guards against a stalled consumer accumulating versions.
        """
        self._evict_below(name, version - self.ds_keep_versions - 1)

    # ------------------------------------------------------------------ get

    def get(
        self,
        component: str,
        desc: ObjectDescriptor,
        replayed: bool = False,
        fraction: float = 1.0,
        ranks: int = 1,
    ) -> Generator:
        """Process fragment servicing one ``dspaces_get_with_log``."""
        start = self.engine.now
        yield from self._transfer(desc, fraction, ranks, EventKind.GET)
        self.read_response.add(self.engine.now - start)
        _SIM_GET_SECONDS.record(self.engine.now - start)
        if self.logging_enabled and not replayed:
            self.register(component)
            self.queues[component].record_data(EventKind.GET, desc, "", desc.version)
            self.log.record_get(desc.name, component, desc.version)
        if not self.logging_enabled:
            # Original staging drops a version once its consumer has read it
            # ("only keep the latest version of data in staging area").
            self._evict_below(desc.name, desc.version)
            self._sample_memory()

    # ----------------------------------------------------------- checkpoint

    def workflow_check(self, component: str, step: int) -> Generator:
        """Checkpoint notification: enqueue the event, then run the GC."""
        yield self.engine.timeout(
            self.machine.nic_latency + self.machine.staging_request_overhead
        )
        if not self.logging_enabled:
            return
        self.register(component)
        self.queues[component].record_checkpoint(step)
        report = self.gc.collect()
        self.gc_bytes_freed.add(report.bytes_freed)
        self._sample_memory()

    def workflow_restart(self, component: str, step: int) -> Generator:
        """Recovery notification: rebuild the client, pin the replay window."""
        yield self.engine.timeout(self.machine.staging_reconnect_time)
        if not self.logging_enabled:
            return
        self.register(component)
        queue = self.queues[component]
        script = queue.build_replay_script()
        queue.record_recovery(step, script.restored_chk)
        pins = {
            (ev.desc.name, ev.desc.version)
            for ev in script.events
            if ev.op is EventKind.GET and ev.desc is not None
        }
        if pins:
            self.gc.pin_replay(component, pins)

    def replay_done(self, component: str) -> None:
        """Release replay pins once the component has caught up."""
        self.gc.unpin_replay(component)

    # ------------------------------------------------------------ snapshots

    def snapshot_time(self) -> float:
        """Cost of capturing all staging servers (coordinated checkpoints).

        The first snapshot (and every snapshot when incremental capture is
        disabled) copies each server's full contents; afterwards an
        epoch-seal captures only the bytes newly staged since the previous
        snapshot — the copy-on-write delta — plus the fixed seal overhead.
        Servers capture in parallel, so the cost is the slowest server's.
        Also updates :attr:`last_snapshot_bytes` (what this snapshot ships).
        """
        incremental = (
            getattr(self.config, "incremental_staging_snapshots", True)
            and self._has_snapshot
        )
        if incremental:
            per_server = max(self._dirty_bytes.values(), default=0)
            self.last_snapshot_bytes = sum(self._dirty_bytes.values())
            t = (
                self.machine.staging_snapshot_seal_overhead
                + per_server / self.machine.staging_snapshot_bandwidth
            )
        else:
            per_server = max((s.nbytes for s in self.group.servers), default=0)
            self.last_snapshot_bytes = self.group.total_bytes
            t = per_server / self.machine.staging_snapshot_bandwidth
        self._has_snapshot = True
        self._dirty_bytes = {}
        return t

    def rollback_retention(self, restored_version: int) -> None:
        """Global rollback: drop staged versions newer than the snapshot."""
        for server in self.group.servers:
            for name in {n for (n, _v) in server._sizes}:
                for v in server.versions(name):
                    if v > restored_version:
                        server.evict(name, v)
        # The surviving state is exactly the snapshot again: the next
        # incremental capture's delta restarts from zero.
        self._dirty_bytes = {}
        for (name, v) in list(self.log.records):
            if v > restored_version:
                self.log.records.pop((name, v), None)
        self._sample_memory()

    # -------------------------------------------------------------- metrics

    @property
    def total_bytes(self) -> int:
        return self.group.total_bytes
