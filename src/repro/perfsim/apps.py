"""Simulated application components (producer/consumer) for the DES.

Each component is one DES process modelling an SPMD application in
aggregate: compute phases are fixed durations (weak scaling), staged I/O
phases go through :class:`~repro.perfsim.staging.StagingModel`'s server
queues, and coupling order is enforced by version boards. Fault-tolerance
behaviour is delegated to the scheme object (:mod:`repro.perfsim.ft`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.descriptors.odsc import ObjectDescriptor
from repro.errors import ConfigError
from repro.perfsim.config import WorkflowConfig
from repro.perfsim.engine import Engine, Interrupt, Process
from repro.perfsim.resources import VersionBoard
from repro.perfsim.staging import StagingModel
from repro.util.timeline import Counter

__all__ = ["PhaseTimes", "SimComponent", "SimProducer", "SimConsumer"]


@dataclass
class PhaseTimes:
    """Wall-clock (virtual) seconds a component spent per phase."""

    compute: float = 0.0
    staging_io: float = 0.0
    coupling_wait: float = 0.0
    checkpoint: float = 0.0
    recovery: float = 0.0

    def total(self) -> float:
        return (
            self.compute
            + self.staging_io
            + self.coupling_wait
            + self.checkpoint
            + self.recovery
        )


class SimComponent:
    """Common machinery: the step loop with failure/rollback handling."""

    kind = "base"

    def __init__(
        self,
        name: str,
        engine: Engine,
        config: WorkflowConfig,
        staging: StagingModel,
        board: VersionBoard,
        consumed: VersionBoard,
        scheme,
        cores: int,
        nodes: int,
        compute_time: float,
        checkpoint_period: int,
        state_bytes: int,
        failure_steps: list[tuple[int, str]] | None = None,
        max_ahead: int = 2,
    ) -> None:
        if compute_time < 0:
            raise ConfigError(f"negative compute time {compute_time}")
        self.name = name
        self.engine = engine
        self.config = config
        self.staging = staging
        self.board = board
        self.consumed = consumed
        self.scheme = scheme
        self.cores = cores
        self.nodes = nodes
        self.compute_time = compute_time
        self.checkpoint_period = checkpoint_period
        self.state_bytes = state_bytes
        self.max_ahead = max_ahead
        # (step, kind) pairs, fired in step order; kind "node" additionally
        # destroys node-local checkpoints (multi-level extension).
        self.pending_failures = sorted(failure_steps or [])
        self.pending_node_failure = False

        self.step = 0
        self.frontier = 0  # highest step ever completed (replay boundary)
        self.restore_step = 0  # where the latest checkpoint restarts us
        self.interruptible = False
        self.rollback_flag = False
        self.done = False
        self.finish_time: float | None = None
        self.phases = PhaseTimes()
        self.recoveries = Counter(f"{name}_recoveries")
        self.checkpoints = Counter(f"{name}_checkpoints")
        self.steps_run = Counter(f"{name}_steps")
        self.process: Process | None = None
        staging.register(name)

    # ----------------------------------------------------------- utilities

    def _timed(self, attr: str):
        """Context helper: returns start time; caller adds elapsed to phase."""
        return self.engine.now

    def _account(self, attr: str, start: float) -> None:
        setattr(self.phases, attr, getattr(self.phases, attr) + self.engine.now - start)

    def descriptor(self, var: str, step: int) -> ObjectDescriptor:
        # Case 1 subsets are cell-strided selections spread uniformly over
        # the domain; geometrically the descriptor covers the full box and
        # the staging model scales per-server bytes by the fraction.
        return ObjectDescriptor(var, step, self.config.domain.bbox, self.config.dtype)

    def _failure_due(self) -> bool:
        return bool(self.pending_failures) and self.step >= self.pending_failures[0][0]

    def _consume_failure(self) -> int:
        step, kind = self.pending_failures.pop(0)
        self.pending_node_failure = kind == "node"
        return step

    @property
    def replaying(self) -> bool:
        """True while re-executing steps already completed before a failure."""
        return self.step < self.frontier

    # ------------------------------------------------------------ main loop

    def run(self):
        """The component's DES process body."""
        while self.step < self.config.num_steps:
            try:
                if self.rollback_flag:
                    self.rollback_flag = False
                    start = self.engine.now
                    yield from self.scheme.global_restore(self)
                    self._account("recovery", start)
                    continue
                # Prediction-triggered checkpoints happen before the failure
                # fires: the predictor's whole value is saving state ahead
                # of the crash it anticipated.
                yield from self.scheme.pre_step(self)
                if self._failure_due():
                    at_step = self.step
                    self._consume_failure()
                    start = self.engine.now
                    yield from self.scheme.recover(self, at_step)
                    self._account("recovery", start)
                    self.recoveries.add(1)
                    continue
                was_replaying = self.replaying
                yield from self.execute_step(self.step)
                self.steps_run.add(1)
                self.step += 1
                if was_replaying and not self.replaying:
                    # Caught up with the pre-failure frontier: replay over.
                    self.staging.replay_done(self.name)
                self.frontier = max(self.frontier, self.step)
                if (
                    self.step % self.checkpoint_period == 0
                    and self.step < self.config.num_steps
                    and self.scheme.checkpoints_component(self)
                ):
                    start = self.engine.now
                    yield from self.scheme.checkpoint(self)
                    self._account("checkpoint", start)
                    self.checkpoints.add(1)
            except Interrupt:
                # A peer's failure forced a global rollback while we were in
                # an interruptible wait (coordinated scheme only).
                self.interruptible = False
                start = self.engine.now
                yield from self.scheme.global_restore(self)
                self._account("recovery", start)
        self.done = True
        self.finish_time = self.engine.now
        yield from self.scheme.component_finished(self)

    def execute_step(self, step: int):
        raise NotImplementedError

    # Compute fragments are the interruptible sections: a crash elsewhere in
    # the machine can pre-empt a computing or waiting component instantly,
    # while I/O sections complete first (they hold server queue slots).
    def _interruptible_wait(self, event):
        self.interruptible = True
        try:
            yield event
        finally:
            self.interruptible = False


class SimProducer(SimComponent):
    """The simulation: compute, then write the coupled region."""

    kind = "producer"

    def execute_step(self, step: int):
        # Flow control: stay at most max_ahead versions ahead of consumers.
        gate = step - self.max_ahead
        if gate >= 0 and self.config.variables:
            start = self.engine.now
            for var in self.config.variables:
                yield from self._interruptible_wait(
                    self.consumed.wait_for(var, gate)
                )
            self._account("coupling_wait", start)

        start = self.engine.now
        yield from self._interruptible_wait(self.engine.timeout(self.compute_time))
        self._account("compute", start)

        start = self.engine.now
        suppressed = self.replaying and self.scheme.suppresses_replayed_puts
        for var in self.config.variables:
            yield from self.staging.put(
                self.name,
                self.descriptor(var, step),
                suppressed=suppressed,
                fraction=self.config.subset_fraction,
                ranks=self.cores,
            )
            self.board.publish(var, step)
        self._account("staging_io", start)


class SimConsumer(SimComponent):
    """The analytic: read the coupled region right after the write."""

    kind = "consumer"

    def execute_step(self, step: int):
        replay_read = self.replaying and self.scheme.serves_replayed_gets
        stale_read = self.replaying and not self.scheme.serves_replayed_gets
        if not (replay_read or stale_read):
            start = self.engine.now
            for var in self.config.variables:
                yield from self._interruptible_wait(self.board.wait_for(var, step))
            self._account("coupling_wait", start)

        start = self.engine.now
        for var in self.config.variables:
            yield from self.staging.get(
                self.name,
                self.descriptor(var, step),
                replayed=replay_read,
                fraction=self.config.subset_fraction,
                ranks=self.cores,
            )
            self.consumed.publish(var, step)
        self._account("staging_io", start)

        start = self.engine.now
        yield from self._interruptible_wait(self.engine.timeout(self.compute_time))
        self._account("compute", start)
