"""Experiment configuration: machine parameters and the paper's Tables II/III.

Machine constants approximate Cori (Cray XC40 at NERSC): Aries interconnect,
32-core Haswell nodes, Lustre scratch. Absolute bandwidths are *effective*
production values (shared-system contention included), chosen so the
failure-free synthetic workflow lands in the paper's regime (40 time steps,
MTBF 600 s ≈ one failure per run); the reproduction target is the *shape* of
the comparisons, not Cori's exact seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError
from repro.geometry.domain import Domain
from repro.util.units import GIB, MIB

__all__ = [
    "MachineParams",
    "CORI",
    "WorkflowConfig",
    "TABLE2",
    "table2_config",
    "TABLE3_SCALES",
    "table3_config",
]


@dataclass(frozen=True)
class MachineParams:
    """Cost-model constants for the simulated HPC system."""

    cores_per_node: int = 32
    # Effective per-node injection bandwidth on the Aries network (bytes/s).
    nic_bandwidth: float = 8.0e9
    # One-way small-message latency (s).
    nic_latency: float = 1.5e-6
    # Per-rank-request software overhead at a staging server (s): RPC
    # dispatch, DHT lookup, buffer registration. A component of R ranks
    # spraying a write over S servers costs each server ~R/S of these.
    staging_request_overhead: float = 1.2e-3
    # Effective aggregate Lustre bandwidth available to the job (bytes/s).
    pfs_aggregate_bandwidth: float = 8.0e9
    # Per-compute-node PFS bandwidth cap (bytes/s).
    pfs_node_bandwidth: float = 0.5e9
    # Logging cost calibration (§IV case 1: +10-15 % write response):
    # extra per-byte CPU/copy/index work as a fraction of the transfer cost
    # (payload copy into the log store + version indexing), plus a fixed
    # per-server event-append overhead. Reads only pay the event append.
    logging_byte_factor: float = 0.17
    logging_request_overhead: float = 25e-6
    # Failure handling constants.
    failure_detection_delay: float = 1.0  # heartbeat timeout
    ulfm_recovery_time: float = 2.0  # revoke/shrink/spawn + reconnect
    replica_failover_time: float = 0.5  # switch task to the replica
    staging_reconnect_time: float = 0.5  # workflow_restart() RDMA re-setup
    # Coordinated-scheme extras.
    barrier_latency_per_log2_ranks: float = 15e-6
    staging_snapshot_bandwidth: float = 4.0e9  # per server, local memcpy
    # Fixed cost of sealing one incremental-checkpoint epoch: quiesce the
    # data plane and swap every server's mutation journal (O(1) per server;
    # see repro.staging.cow). Paid instead of the full-copy time once a
    # base snapshot exists.
    staging_snapshot_seal_overhead: float = 2.0e-4
    # Staging runtime footprint beyond stored payloads (RDMA-registered
    # receive buffers, DHT index, operational double-buffers) as a fraction
    # of one step's transferred volume. Present in both the original and the
    # logging staging; calibrated so Case 1 memory overhead lands in the
    # paper's 81-86 % band.
    staging_buffer_factor: float = 0.85

    def barrier_time(self, total_ranks: int) -> float:
        """Log-depth tree barrier across ``total_ranks`` processes."""
        if total_ranks <= 1:
            return 0.0
        return self.barrier_latency_per_log2_ranks * max(1, total_ranks - 1).bit_length()


CORI = MachineParams()


@dataclass(frozen=True)
class WorkflowConfig:
    """One synthetic-workflow experiment (a column of Table II/III)."""

    name: str
    sim_cores: int
    staging_cores: int
    analytic_cores: int
    domain_shape: tuple[int, ...]
    num_steps: int = 40
    variables: tuple[str, ...] = ("field",)
    dtype: str = "float64"
    subset_fraction: float = 1.0
    sim_checkpoint_period: int = 4
    analytic_checkpoint_period: int = 5
    coordinated_checkpoint_period: int = 4
    # Compute phases (seconds per step), weak-scaled: constant across scales.
    sim_compute_time: float = 10.0
    analytic_compute_time: float = 1.2
    # Checkpoint state sizes as multiples of one step's coupled-data volume.
    sim_state_factor: float = 3.0
    analytic_state_factor: float = 0.5
    machine: MachineParams = field(default=CORI)
    seed: int = 2020
    # Coordinated checkpoints capture only the bytes staged since the last
    # snapshot (copy-on-write chain) instead of re-copying every server.
    # False restores the seed full-copy cost model.
    incremental_staging_snapshots: bool = True

    def __post_init__(self) -> None:
        if min(self.sim_cores, self.staging_cores, self.analytic_cores) <= 0:
            raise ConfigError("all core counts must be positive")
        if self.num_steps <= 0:
            raise ConfigError("num_steps must be positive")
        if not (0.0 < self.subset_fraction <= 1.0):
            raise ConfigError(f"bad subset fraction {self.subset_fraction}")

    # ------------------------------------------------------------- derived

    @property
    def total_cores(self) -> int:
        return self.sim_cores + self.staging_cores + self.analytic_cores

    @property
    def domain(self) -> Domain:
        return Domain(self.domain_shape)

    @property
    def num_staging_servers(self) -> int:
        return self.staging_cores

    @property
    def bytes_per_step(self) -> int:
        """Coupled bytes exchanged per time step (all variables, full domain)."""
        import numpy as np

        item = np.dtype(self.dtype).itemsize
        return self.domain.volume * item * len(self.variables)

    @property
    def sim_nodes(self) -> int:
        return max(1, self.sim_cores // self.machine.cores_per_node)

    @property
    def analytic_nodes(self) -> int:
        return max(1, self.analytic_cores // self.machine.cores_per_node)

    @property
    def staging_nodes(self) -> int:
        return max(1, self.staging_cores // self.machine.cores_per_node)

    @property
    def sim_state_bytes(self) -> int:
        return int(self.bytes_per_step * self.sim_state_factor)

    @property
    def analytic_state_bytes(self) -> int:
        return int(self.bytes_per_step * self.analytic_state_factor)

    def with_(self, **kw) -> "WorkflowConfig":
        """A modified copy (dataclasses.replace passthrough)."""
        return replace(self, **kw)


# --------------------------------------------------------------- Table II

TABLE2 = WorkflowConfig(
    name="table2",
    sim_cores=256,  # 8 x 8 x 4
    staging_cores=32,
    analytic_cores=64,
    domain_shape=(512, 512, 256),  # 512 MiB/step float64 -> 20 GiB / 40 ts
    num_steps=40,
    sim_checkpoint_period=4,
    analytic_checkpoint_period=5,
    coordinated_checkpoint_period=4,
)

# Sanity: Table II reports 20 GB over 40 time steps.
assert abs(TABLE2.bytes_per_step * 40 - 20 * GIB) < MIB


def table2_config(
    subset_fraction: float = 1.0, checkpoint_period: int | None = None
) -> WorkflowConfig:
    """Table II with Case 1 (subset) or Case 2 (checkpoint period) knobs."""
    cfg = TABLE2.with_(subset_fraction=subset_fraction)
    if checkpoint_period is not None:
        cfg = cfg.with_(
            sim_checkpoint_period=checkpoint_period,
            analytic_checkpoint_period=checkpoint_period + 1,
            coordinated_checkpoint_period=checkpoint_period,
        )
    return cfg


# -------------------------------------------------------------- Table III

TABLE3_SCALES = (704, 1408, 2816, 5632, 11264)

# Per-scale (sim, staging, analytic) cores and data volume per 40 steps.
_TABLE3_ROWS: dict[int, tuple[int, int, int, int]] = {
    704: (512, 64, 128, 40),
    1408: (1024, 128, 256, 80),
    2816: (2048, 256, 512, 160),
    5632: (4096, 512, 1024, 320),
    11264: (8192, 1024, 2048, 640),
}

# MTBF (s) for 1, 2, 3 injected failures per Table III's bottom row.
TABLE3_MTBF = {1: 600.0, 2: 300.0, 3: 200.0}


def table3_config(total_cores: int) -> WorkflowConfig:
    """The Table III configuration for one scale point."""
    if total_cores not in _TABLE3_ROWS:
        raise ConfigError(
            f"unknown Table III scale {total_cores}; choose from {TABLE3_SCALES}"
        )
    sim, staging, analytic, gib_total = _TABLE3_ROWS[total_cores]
    per_step = gib_total * GIB // 40
    # float64 domain with the paper's 512x512 cross-section, depth scaled.
    depth = per_step // (512 * 512 * 8)
    shape = (512, 512, int(depth))
    cfg = WorkflowConfig(
        name=f"table3-{total_cores}",
        sim_cores=sim,
        staging_cores=staging,
        analytic_cores=analytic,
        domain_shape=shape,
        num_steps=40,
        sim_checkpoint_period=8,
        analytic_checkpoint_period=10,
        coordinated_checkpoint_period=8,
    )
    assert cfg.total_cores == total_cores
    assert abs(cfg.bytes_per_step * 40 - gib_total * GIB) < MIB
    return cfg
