"""Extensions beyond the paper's evaluation (its §VI future work).

* :class:`ProactiveScheme` — uncoordinated C/R + data logging, augmented
  with a failure predictor (Bouguerra et al., IPDPS'13): when a failure is
  predicted for the next step, the component checkpoints immediately, so the
  rollback loses at most the mispredicted remainder. Predictor quality is
  modelled by recall (fraction of failures predicted) and lead time.

* :class:`MultiLevelScheme` — uncoordinated C/R + data logging with two
  checkpoint tiers (Moody et al., SC'10): fast node-local checkpoints every
  period, a PFS-level checkpoint every ``pfs_interval``-th time. Process
  failures restore from the node-local tier (cheap); *node* failures destroy
  the node-local copy and fall back to the last PFS checkpoint (more lost
  work) — which is why the PFS tier exists at all.

Both compose with the paper's logging/replay machinery unchanged: staging
consistency is orthogonal to where and when application state is saved,
which is exactly the decoupling the paper argues for.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.perfsim.apps import SimComponent
from repro.perfsim.ft import UncoordinatedScheme

__all__ = ["ProactiveScheme", "MultiLevelScheme"]


class ProactiveScheme(UncoordinatedScheme):
    """Uncoordinated C/R with prediction-triggered extra checkpoints."""

    name = "proactive"

    def __init__(self, *args, recall: float = 1.0, **kw) -> None:
        super().__init__(*args, **kw)
        if not (0.0 <= recall <= 1.0):
            raise ConfigError(f"recall must be in [0, 1], got {recall}")
        self.recall = recall
        # component name -> set of steps at which a failure is predicted.
        self.predictions: dict[str, set[int]] = {}
        self.proactive_checkpoints = 0

    def load_predictions(self, failures, rng=None) -> None:
        """Derive per-component predicted steps from the failure schedule.

        With ``recall < 1`` a deterministic subsample is kept (every k-th
        prediction dropped) so experiments stay reproducible.
        """
        kept: dict[str, set[int]] = {}
        for i, failure in enumerate(sorted(failures, key=lambda f: (f.step, f.component))):
            if self.recall >= 1.0 or (i + 1) * self.recall >= len(kept.get(failure.component, ())) + 1:
                kept.setdefault(failure.component, set()).add(failure.step)
        self.predictions = kept

    def pre_step(self, comp: SimComponent):
        """Checkpoint right before a predicted failure step."""
        predicted = self.predictions.get(comp.name, ())
        if comp.step in predicted and comp.restore_step != comp.step:
            yield from self.checkpoint(comp)
            comp.checkpoints.add(1)
            self.proactive_checkpoints += 1


class MultiLevelScheme(UncoordinatedScheme):
    """Uncoordinated C/R with node-local + PFS checkpoint tiers."""

    name = "multilevel"

    def __init__(
        self,
        *args,
        pfs_interval: int = 4,
        node_local_bandwidth: float = 5.0e9,
        **kw,
    ) -> None:
        super().__init__(*args, **kw)
        if pfs_interval < 1:
            raise ConfigError(f"pfs_interval must be >= 1, got {pfs_interval}")
        if node_local_bandwidth <= 0:
            raise ConfigError("node_local_bandwidth must be positive")
        self.pfs_interval = pfs_interval
        self.node_local_bandwidth = node_local_bandwidth
        self._ckpt_counter: dict[str, int] = {}
        # component -> restore step of its last PFS-level checkpoint.
        self._pfs_restore_step: dict[str, int] = {}
        self.node_local_checkpoints = 0
        self.pfs_checkpoints = 0

    def _node_local_time(self, comp: SimComponent) -> float:
        # All nodes write their local shard concurrently to NVRAM/SSD.
        return comp.state_bytes / (comp.nodes * self.node_local_bandwidth)

    def checkpoint(self, comp: SimComponent):
        count = self._ckpt_counter.get(comp.name, 0)
        self._ckpt_counter[comp.name] = count + 1
        if count % self.pfs_interval == self.pfs_interval - 1:
            # PFS-level checkpoint: survives node loss.
            yield from self.pfs.write(comp.state_bytes, comp.nodes)
            self._pfs_restore_step[comp.name] = comp.step
            self.pfs_checkpoints += 1
        else:
            yield self.engine.timeout(self._node_local_time(comp))
            self.node_local_checkpoints += 1
        yield from self.staging.workflow_check(comp.name, comp.step)
        comp.restore_step = comp.step

    def recover(self, comp: SimComponent, at_step: int):
        yield self.engine.timeout(self.machine.failure_detection_delay)
        yield self.engine.timeout(self.machine.ulfm_recovery_time)
        node_failure = getattr(comp, "pending_node_failure", False)
        if node_failure:
            # The node-local tier died with the node: fall back to PFS.
            comp.pending_node_failure = False
            comp.restore_step = self._pfs_restore_step.get(comp.name, 0)
            yield from self.pfs.read(comp.state_bytes, comp.nodes)
        else:
            yield self.engine.timeout(self._node_local_time(comp))
        yield from self.staging.workflow_restart(comp.name, comp.restore_step)
        comp.step = comp.restore_step
