"""Fault-injecting staging-server proxy.

:class:`FaultyServer` wraps a :class:`~repro.staging.server.StagingServer`
and is drop-in substitutable for it inside a
:class:`~repro.staging.client.StagingGroup`: every *data-path* operation
(put/get/covers/query/evict and the protection blob ops) first advances the
server's op counter, polls the shared :class:`~repro.faults.plan.FaultInjector`
for newly due plans, and then applies whatever fault state is active.

Administrative operations — ``snapshot``/``restore``/``rebuild_index`` and
attribute access (``lock``, ``store``, ``nbytes``, ...) — pass through
unfaulted: they model the runtime's *control plane* (the coordinated
checkpoint protocol operates on surviving state), while the fault library
targets the client-visible data plane. A crashed server keeps raising
:class:`~repro.errors.ServerUnavailable` until :meth:`heal` (called by
``StagingGroup.rebuild``) clears the fault state.

Faults are strictly **per-request**: a ``slow`` plan's latency is slept on
the thread executing that one op, outside ``_fault_lock``. Under the wire
transports' event-loop server this means a slow request parks one worker
while other requests multiplexed onto the *same connection* keep completing
(out of order, by request id) — the fault matrix observes per-op delay, not
a stalled connection.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.errors import ServerUnavailable, TransientServerError
from repro.faults.plan import FaultInjector, FaultPlan
from repro.obs import registry as _obs
from repro.staging.server import StagingServer
from repro.util.rng import RngRegistry

__all__ = ["FaultyServer", "inject_faults"]

_FAULTS_FIRED = _obs.counter("faults.fired")
_CRASH_REFUSALS = _obs.counter("faults.crash_refusals")
_SLOW_SECONDS = _obs.histogram("faults.slow.seconds")
_FLAKY_ERRORS = _obs.counter("faults.flaky_errors")
_CORRUPTIONS = _obs.counter("faults.corruptions")

# Data-path methods that advance the op counter and feel active faults.
_FAULTED_OPS = (
    "put",
    "put_many",
    "get",
    "get_many",
    "put_blob",
    "get_blob",
    "covers",
    "covers_all",
    "query_versions",
    "evict",
    "evict_older_than_version",
    "keep_only_latest",
)
# Reads whose results a `corrupt` fault may silently damage.
_READ_OPS = ("get", "get_many", "get_blob")


class FaultyServer:
    """Deterministic fault-injecting wrapper around one staging server."""

    def __init__(
        self,
        inner: StagingServer,
        injector: FaultInjector,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.inner = inner
        self.injector = injector
        # Corruption offsets are drawn from a per-server generator so the
        # damaged byte is reproducible across runs with the same seed.
        self._rng = rng if rng is not None else np.random.default_rng(inner.server_id)
        self._fault_lock = threading.Lock()
        self._ops = 0
        self._crashed = False
        self._slow: tuple[float, int] | None = None  # (latency, remaining; 0=forever)
        self._flaky_remaining = 0
        self._corrupt_remaining = 0

    # ----------------------------------------------------------- fault state

    @property
    def server_id(self) -> int:
        return self.inner.server_id

    @property
    def crashed(self) -> bool:
        return self._crashed

    @property
    def op_count(self) -> int:
        """Data-path operations attempted against this server so far."""
        return self._ops

    def heal(self) -> None:
        """Clear all active fault state (a rebuilt/replaced server is healthy)."""
        with self._fault_lock:
            self._crashed = False
            self._slow = None
            self._flaky_remaining = 0
            self._corrupt_remaining = 0

    def _activate(self, plan: FaultPlan) -> None:
        """Turn one fired plan into local fault state (holds ``_fault_lock``)."""
        _FAULTS_FIRED.inc()
        if plan.kind == "crash":
            self._crashed = True
        elif plan.kind == "slow":
            self._slow = (plan.latency, plan.calls)
        elif plan.kind == "flaky":
            self._flaky_remaining += max(1, plan.calls)
        elif plan.kind == "corrupt":
            self._corrupt_remaining += max(1, plan.calls)

    def _before_op(self) -> float:
        """Advance the op counter, activate due plans, apply pre-call faults.

        Returns the latency to sleep *outside* the fault lock (sleeping under
        it would serialize fault bookkeeping across server threads).
        """
        with self._fault_lock:
            op = self._ops
            self._ops += 1
            while (plan := self.injector.poll(self.server_id, op)) is not None:
                self._activate(plan)
            if self._crashed:
                _CRASH_REFUSALS.inc()
                raise ServerUnavailable(self.server_id)
            delay = 0.0
            if self._slow is not None:
                latency, remaining = self._slow
                delay = latency
                if remaining > 0:
                    remaining -= 1
                    self._slow = (latency, remaining) if remaining else None
            if self._flaky_remaining > 0:
                self._flaky_remaining -= 1
                _FLAKY_ERRORS.inc()
                raise TransientServerError(self.server_id)
        return delay

    def _maybe_corrupt(self, arrays: list[np.ndarray]) -> None:
        """Flip one byte of one returned payload if a corrupt fault is active."""
        with self._fault_lock:
            if self._corrupt_remaining <= 0:
                return
            # Only writable buffers can be damaged in place (zero-copy decode
            # can surface read-only views; skipping them beats crashing the
            # fault path).
            candidates = [a for a in arrays if a.nbytes > 0 and a.flags.writeable]
            if not candidates:
                return
            self._corrupt_remaining -= 1
            victim = candidates[int(self._rng.integers(0, len(candidates)))]
            _CORRUPTIONS.inc()
        flat = victim.reshape(-1).view(np.uint8)
        offset = int(self._rng.integers(0, flat.size))
        flat[offset] ^= 0xFF

    # ------------------------------------------------------------- data path

    def _faulted_call(self, name: str, *args, **kwargs):
        delay = self._before_op()
        if delay > 0.0:
            _SLOW_SECONDS.record(delay)
            time.sleep(delay)
        result = getattr(self.inner, name)(*args, **kwargs)
        if name in _READ_OPS and self._corrupt_remaining > 0:
            if name == "get_many":
                # Server gets return freshly assembled buffers, so in-place
                # corruption never touches stored fragments.
                self._maybe_corrupt(list(result))
            elif isinstance(result, np.ndarray):
                if name == "get_blob":
                    # Blobs are served by reference; corrupt a copy so the
                    # stored parity stays intact.
                    result = result.copy()
                self._maybe_corrupt([result])
        return result

    # One def per op (rather than __getattr__ dispatch) keeps call sites
    # introspectable and pickling/snapshot paths unaffected.
    def put(self, *a, **kw):
        return self._faulted_call("put", *a, **kw)

    def put_many(self, *a, **kw):
        return self._faulted_call("put_many", *a, **kw)

    def get(self, *a, **kw):
        return self._faulted_call("get", *a, **kw)

    def get_many(self, *a, **kw):
        return self._faulted_call("get_many", *a, **kw)

    def put_blob(self, *a, **kw):
        return self._faulted_call("put_blob", *a, **kw)

    def get_blob(self, *a, **kw):
        return self._faulted_call("get_blob", *a, **kw)

    def covers(self, *a, **kw):
        return self._faulted_call("covers", *a, **kw)

    def covers_all(self, *a, **kw):
        return self._faulted_call("covers_all", *a, **kw)

    def query_versions(self, *a, **kw):
        return self._faulted_call("query_versions", *a, **kw)

    def evict(self, *a, **kw):
        return self._faulted_call("evict", *a, **kw)

    def evict_older_than_version(self, *a, **kw):
        return self._faulted_call("evict_older_than_version", *a, **kw)

    def keep_only_latest(self, *a, **kw):
        return self._faulted_call("keep_only_latest", *a, **kw)

    # ---------------------------------------------------------- control plane

    def __getattr__(self, name: str):
        # snapshot/restore/rebuild_index/summary/nbytes/store/index/lock/...
        return getattr(self.inner, name)


def inject_faults(
    group,
    plans: list[FaultPlan],
    rng: RngRegistry | None = None,
) -> FaultInjector:
    """Wrap every server of ``group`` in a FaultyServer sharing one injector.

    Idempotent on already-wrapped servers (their injector is replaced). The
    optional registry seeds each proxy's corruption stream; omitted, proxies
    fall back to per-server-id seeds (still deterministic).

    Injection is routed through the group's transport first: a transport
    whose servers live elsewhere (TCP server processes) installs the plans
    *there* — same ``FaultyServer`` wrapper, the far side of a real socket —
    and returns an injector-compatible handle. The in-process wrapping below
    is the inproc transport's path (``Transport.inject_faults`` → ``None``).
    """
    transport = getattr(group, "transport", None)
    if transport is not None:
        handle = transport.inject_faults(plans, rng)
        if handle is not None:
            for server in group.servers:
                # Parity with the proxy surface: the shared handle is
                # reachable from every server, as the shared injector is.
                server.injector = handle
            return handle
    injector = FaultInjector(plans)
    for i, server in enumerate(group.servers):
        gen = rng.get(f"faults.corrupt.{i}") if rng is not None else None
        if isinstance(server, FaultyServer):
            server.injector = injector
            if gen is not None:
                server._rng = gen
        else:
            group.servers[i] = FaultyServer(server, injector, rng=gen)
    return injector
