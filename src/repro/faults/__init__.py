"""Staging-area fault injection: deterministic, RNG-scheduled server faults
(crash / slow / flaky / corrupt) delivered through a drop-in server proxy.

The application-process analogue lives in :mod:`repro.runtime.failures`; this
package covers the *other* half of the paper's failure model — the staging
area itself — so the resilient client data path (erasure-coded degraded
reads, retry/backoff, health routing) can be exercised reproducibly.
"""

from repro.faults.plan import FAULT_KINDS, FaultInjector, FaultPlan, random_fault_plans
from repro.faults.proxy import FaultyServer, inject_faults

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultyServer",
    "inject_faults",
    "random_fault_plans",
]
