"""Fault plans and their injector for the staging area.

Mirrors the runtime's application-failure API (:mod:`repro.runtime.failures`):
a :class:`FaultPlan` is one scheduled fault against one staging server, a
:class:`FaultInjector` delivers each plan exactly once, and
:func:`random_fault_plans` draws RNG-scheduled plans from a named
:class:`~repro.util.rng.RngRegistry` stream so any fault schedule is exactly
reproducible from a root seed.

Where application failures fire at *step* boundaries, staging faults fire at
*operation* boundaries: each server-side data-path call (put/get/covers/...)
advances that server's op counter, and a plan is due once the counter reaches
``plan.op``. This lets a schedule target "the 3rd get this server serves"
deterministically, independent of wall-clock timing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.util.rng import RngRegistry

__all__ = ["FaultPlan", "FaultInjector", "FAULT_KINDS", "random_fault_plans"]

#: Supported staging fault kinds.
#:
#: ``crash``   fail-stop server loss: every subsequent request raises
#:             :class:`~repro.errors.ServerUnavailable` until the server is
#:             rebuilt (``calls`` is ignored).
#: ``slow``    adds ``latency`` seconds of service time to the next ``calls``
#:             requests (``calls=0``: every request until healed).
#: ``flaky``   the next ``calls`` requests raise
#:             :class:`~repro.errors.TransientServerError`, then the server
#:             recovers on its own.
#: ``corrupt`` the next ``calls`` successful reads return payloads with one
#:             byte flipped (a silent digest mismatch on get).
FAULT_KINDS = ("crash", "slow", "flaky", "corrupt")


@dataclass(frozen=True)
class FaultPlan:
    """One planned staging-server fault: target, op index, kind, shape."""

    server: int
    op: int
    kind: str
    calls: int = 1
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ConfigError(f"fault server must be >= 0, got {self.server}")
        if self.op < 0:
            raise ConfigError(f"fault op must be >= 0, got {self.op}")
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"fault kind must be one of {'|'.join(FAULT_KINDS)}, got {self.kind!r}"
            )
        if self.calls < 0:
            raise ConfigError(f"fault calls must be >= 0, got {self.calls}")
        if self.kind == "slow" and self.latency <= 0:
            raise ConfigError("slow faults need a positive latency")
        if self.latency < 0:
            raise ConfigError(f"fault latency must be >= 0, got {self.latency}")


class FaultInjector:
    """Thread-safe one-shot fault delivery, one plan per poll.

    Each plan fires exactly once: the first time its target server polls at
    (or after) the planned op index. The proxy turns a fired plan into local
    fault state (crashed flag, remaining slow/flaky/corrupt calls); the
    injector only decides *when* a plan becomes active.
    """

    def __init__(self, plans: list[FaultPlan] | None = None) -> None:
        self._lock = threading.Lock()
        self._pending: list[FaultPlan] = sorted(
            plans or [], key=lambda p: (p.op, p.server, p.kind)
        )
        self.fired: list[FaultPlan] = []

    def schedule(self, plan: FaultPlan) -> None:
        """Add one more planned fault."""
        with self._lock:
            self._pending.append(plan)
            self._pending.sort(key=lambda p: (p.op, p.server, p.kind))

    def poll(self, server: int, op: int) -> FaultPlan | None:
        """Fire and return the next due plan for ``server``, if any.

        A plan is due when ``op >= plan.op``; plans that already fired never
        re-fire (fail-stop and transient faults alike are one-shot — a
        repeated fault is simply two plans).
        """
        with self._lock:
            for i, plan in enumerate(self._pending):
                if plan.server == server and op >= plan.op:
                    self.fired.append(plan)
                    del self._pending[i]
                    return plan
            return None

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def pending_for(self, server: int) -> list[FaultPlan]:
        """Unfired plans targeting ``server``."""
        with self._lock:
            return [p for p in self._pending if p.server == server]


def random_fault_plans(
    rng: RngRegistry,
    stream: str,
    num_servers: int,
    horizon_ops: int,
    count: int,
    kinds: tuple[str, ...] = FAULT_KINDS,
    max_calls: int = 3,
    max_latency: float = 0.02,
) -> list[FaultPlan]:
    """Draw ``count`` reproducible fault plans from one registry stream.

    Servers, op indices, kinds, and shapes are all drawn from the same named
    stream, so two registries with the same root seed produce the identical
    schedule — the staging-side analogue of
    :func:`repro.runtime.failures.mtbf_failure_steps`.
    """
    if num_servers <= 0:
        raise ConfigError(f"num_servers must be positive, got {num_servers}")
    if horizon_ops <= 0:
        raise ConfigError(f"horizon_ops must be positive, got {horizon_ops}")
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ConfigError(f"unknown fault kind {kind!r}")
    plans: list[FaultPlan] = []
    for _ in range(count):
        kind = kinds[rng.integers(stream, 0, len(kinds))]
        plans.append(
            FaultPlan(
                server=rng.integers(stream, 0, num_servers),
                op=rng.integers(stream, 0, horizon_ops),
                kind=kind,
                calls=rng.integers(stream, 1, max_calls + 1),
                latency=rng.uniform(stream, 1e-4, max_latency) if kind == "slow" else 0.0,
            )
        )
    return plans
