"""repro — Scalable Crash Consistency for Staging-based In-situ Scientific
Workflows (IPDPS 2020, Duan & Parashar): a full Python reproduction.

The package provides:

* :mod:`repro.core` — the paper's contribution: workflow-level C/R with
  data/event logging in staging (event queues, replay, GC, Table I API);
* :mod:`repro.staging` / :mod:`repro.corec` — the DataSpaces/CoREC substrate
  (versioned geometric object store, DHT placement, replication + RS codes);
* :mod:`repro.runtime` — a threaded execution substrate with real payloads,
  fail-stop injection and ULFM-style recovery, for functional verification;
* :mod:`repro.perfsim` — a discrete-event Cori model reproducing the paper's
  figures at up to 11264 simulated cores;
* :mod:`repro.workloads` / :mod:`repro.analysis` — the synthetic workloads
  and paper-vs-measured reporting used by the benchmark harness.

Quickstart::

    from repro import quickstart
    result = quickstart()          # runs a failure+recovery demo
    print(result.scheme, result.failures_injected)
"""

from repro.core import WorkflowClient, WorkflowStaging, verify_read_stability
from repro.descriptors import ObjectDescriptor
from repro.errors import ConsistencyError, ReproError
from repro.geometry import BBox, Domain
from repro.runtime import (
    ComponentSpec,
    FailurePlan,
    ThreadedWorkflow,
    WorkflowResult,
    run_with_reference,
)
from repro.staging import StagingClient, StagingGroup

__version__ = "1.0.0"

__all__ = [
    "WorkflowClient",
    "WorkflowStaging",
    "verify_read_stability",
    "ObjectDescriptor",
    "ConsistencyError",
    "ReproError",
    "BBox",
    "Domain",
    "ComponentSpec",
    "FailurePlan",
    "ThreadedWorkflow",
    "WorkflowResult",
    "run_with_reference",
    "StagingClient",
    "StagingGroup",
    "quickstart",
    "__version__",
]


def quickstart() -> WorkflowResult:
    """Run a small coupled workflow with one injected failure and verify
    crash consistency against a failure-free reference run.

    Returns the verified :class:`~repro.runtime.workflow.WorkflowResult` of
    the uncoordinated (paper) scheme.
    """
    from repro.workloads import coupled_specs

    specs = coupled_specs(num_steps=10)
    _reference, run = run_with_reference(
        specs, "uncoordinated", failures=[FailurePlan("analytic", 7)]
    )
    return run
