"""Garbage Collection Component (paper §III-A.2).

"Data staging servers periodically delete logged data which are related with
previous checkpoint periods without data dependency to other application
components, and only keep the latest version of data in staging area."

Concretely: a logged version ``v`` of variable ``X`` is collectable when

1. it is not the latest version of ``X`` (staging always serves the newest
   data to forward progress), and
2. for every consumer component ``C`` of ``X``, a rollback of ``C`` to its
   latest checkpoint could no longer re-read ``v`` — i.e. ``v`` is below
   ``C``'s replay *version floor* (the oldest version appearing in a GET
   after ``C``'s latest checkpoint), and
3. no component is currently mid-replay with ``v`` still pending in its
   script.

The GC also trims each component's event queue below its latest checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.core.data_log import DataLog
from repro.core.event_queue import EventQueue
from repro.obs import registry as _obs
from repro.obs import trace as _trace

__all__ = ["GarbageCollector", "GCReport"]

_PASSES = _obs.counter("gc.passes")
_PASS_SECONDS = _obs.histogram("gc.pass.seconds")
_VERSIONS = _obs.counter("gc.versions_collected")
_BYTES_FREED = _obs.counter("gc.bytes_freed")
_EVENTS_TRIMMED = _obs.counter("gc.events_trimmed")


@dataclass(frozen=True)
class GCReport:
    """Outcome of one collection pass."""

    versions_collected: int
    bytes_freed: int
    events_trimmed: int

    def __add__(self, other: "GCReport") -> "GCReport":
        return GCReport(
            self.versions_collected + other.versions_collected,
            self.bytes_freed + other.bytes_freed,
            self.events_trimmed + other.events_trimmed,
        )


@dataclass
class GarbageCollector:
    """Collects dead logged versions and trims event queues."""

    log: DataLog
    queues: dict[str, EventQueue]
    # Components currently replaying; their scripts pin versions.
    _replaying: dict[str, set[tuple[str, int]]] = field(default_factory=dict)

    # ------------------------------------------------------------ replay pins

    def pin_replay(self, component: str, pinned: set[tuple[str, int]]) -> None:
        """Pin (name, version) pairs while ``component`` replays them."""
        self._replaying[component] = set(pinned)

    def unpin_replay(self, component: str) -> None:
        """Release ``component``'s replay pins (script exhausted)."""
        self._replaying.pop(component, None)

    def replay_pinned(self) -> set[tuple[str, int]]:
        """Union of all currently pinned (name, version) pairs."""
        pinned: set[tuple[str, int]] = set()
        for s in self._replaying.values():
            pinned |= s
        return pinned

    # -------------------------------------------------------------- analysis

    def version_floor(self, name: str) -> int | None:
        """Oldest version of ``name`` any consumer could still need.

        Per consumer the constraint is the minimum of its *rollback floor*
        (oldest version it would re-read after restoring its latest
        checkpoint) and its *read frontier + 1* (versions it has not consumed
        yet — a producer running ahead must not lose them). ``None`` means
        the variable has no registered consumer, so only the latest version
        must be kept.
        """
        floors: list[int] = []
        consumers = self.log.consumers_of(name)
        for comp in consumers:
            frontier_floor = self.log.read_frontier(name, comp) + 1
            queue = self.queues.get(comp)
            replay_floor = queue.version_floor(name) if queue is not None else None
            if replay_floor is not None:
                floors.append(min(replay_floor, frontier_floor))
            else:
                floors.append(frontier_floor)
        return min(floors) if floors else None

    def collectable(self, name: str) -> list[int]:
        """Versions of ``name`` that this pass may evict."""
        versions = self.log.logged_versions(name)
        if len(versions) <= 1:
            return []
        latest = versions[-1]
        pinned = self.replay_pinned()
        floor = self.version_floor(name)
        out = []
        for v in versions:
            if v == latest:
                continue
            if (name, v) in pinned:
                continue
            if floor is not None and v >= floor:
                continue
            out.append(v)
        return out

    # ---------------------------------------------------------------- collect

    def collect(self) -> GCReport:
        """One full collection pass over every logged variable and queue."""
        t0 = perf_counter()
        with _trace.span("gc.collect"):
            versions = 0
            freed = 0
            for name in self.log.names():
                for v in self.collectable(name):
                    freed += self.log.evict(name, v)
                    versions += 1
            trimmed = 0
            for queue in self.queues.values():
                if queue.component in self._replaying:
                    # Never trim a queue mid-replay; its script references it.
                    continue
                trimmed += len(queue.trim_before(queue.trimmable_horizon()))
        _PASSES.inc()
        _VERSIONS.inc(versions)
        _BYTES_FREED.inc(freed)
        _EVENTS_TRIMMED.inc(trimmed)
        _PASS_SECONDS.record(perf_counter() - t0)
        return GCReport(versions_collected=versions, bytes_freed=freed, events_trimmed=trimmed)
