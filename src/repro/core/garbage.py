"""Garbage Collection Component (paper §III-A.2).

"Data staging servers periodically delete logged data which are related with
previous checkpoint periods without data dependency to other application
components, and only keep the latest version of data in staging area."

Concretely: a logged version ``v`` of variable ``X`` is collectable when

1. it is not the latest version of ``X`` (staging always serves the newest
   data to forward progress), and
2. for every consumer component ``C`` of ``X``, a rollback of ``C`` to its
   latest checkpoint could no longer re-read ``v`` — i.e. ``v`` is below
   ``C``'s replay *version floor* (the oldest version appearing in a GET
   after ``C``'s latest checkpoint), and
3. no component is currently mid-replay with ``v`` still pending in its
   script.

The GC also trims each component's event queue below its latest checkpoint.

Collection is **incremental and candidate-driven**, not scan-driven: the
data log notifies the collector of puts and gets (see
:meth:`~repro.core.data_log.DataLog.attach_listener`), checkpoint and
epoch advances push the affected names, and a pass drains a bounded batch
of candidates — its cost is O(candidates drained), independent of how much
state is logged. ``collect()`` remains the full sweep (now fast, because
every floor/index lookup is O(1)) and is the reference the incremental path
is differentially tested against. :class:`BackgroundCollector` runs bounded
passes on a thread, triggered by byte high/low watermarks on the log, so
retention trimming leaves the application's critical path entirely.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from repro.core.data_log import DataLog
from repro.core.event_queue import EventQueue
from repro.obs import registry as _obs
from repro.obs import trace as _trace

__all__ = ["GarbageCollector", "GCReport", "BackgroundCollector"]

_PASSES = _obs.counter("gc.passes")
_PASS_SECONDS = _obs.histogram("gc.pass.seconds")
_VERSIONS = _obs.counter("gc.versions_collected")
_BYTES_FREED = _obs.counter("gc.bytes_freed")
_EVENTS_TRIMMED = _obs.counter("gc.events_trimmed")
_CANDIDATES_QUEUED = _obs.counter("gc.candidates_queued")
_CANDIDATES_DEFERRED = _obs.counter("gc.candidates_deferred")
_PENDING_DRAINED = _obs.counter("gc.pending_evictions_drained")


@dataclass(frozen=True)
class GCReport:
    """Outcome of one collection pass."""

    versions_collected: int
    bytes_freed: int
    events_trimmed: int
    # Candidates a bounded pass ran out of budget for (re-queued).
    candidates_deferred: int = 0
    # Pending fragment evictions confirmed (transient faults that cleared).
    pending_drained: int = 0

    def __add__(self, other: "GCReport") -> "GCReport":
        return GCReport(
            self.versions_collected + other.versions_collected,
            self.bytes_freed + other.bytes_freed,
            self.events_trimmed + other.events_trimmed,
            self.candidates_deferred + other.candidates_deferred,
            self.pending_drained + other.pending_drained,
        )


@dataclass
class GarbageCollector:
    """Collects dead logged versions and trims event queues.

    ``queues`` maps component name to its event queue; ``queue_provider``
    (when set) is consulted instead, which lets the owner resolve queues
    lazily — a component registered *after* GC construction is then still
    seen. Either way, a consumer whose queue cannot be resolved is treated
    **conservatively** (rollback floor 0, keep everything): its rollback
    needs are unknown, and guessing "no rollback constraint" would let the
    GC collect versions that consumer still needs after a rollback.
    """

    log: DataLog
    queues: dict[str, EventQueue] = field(default_factory=dict)
    queue_provider: Callable[[str], EventQueue | None] | None = None
    # Components currently replaying; their scripts pin versions.
    _replaying: dict[str, set[tuple[str, int]]] = field(default_factory=dict)
    # Candidate work queue: names whose floor may have moved (FIFO, deduped).
    _candidates: deque = field(default_factory=deque, repr=False)
    _candidate_set: set = field(default_factory=set, repr=False)
    # Queues whose checkpoint advanced since they were last trimmed.
    _trim_candidates: set = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        # Candidate generation: the log pushes put/get notifications here.
        self.log.attach_listener(self)

    # -------------------------------------------------------------- candidates

    def push_candidate(self, name: str) -> None:
        """Queue ``name`` for re-examination by the next incremental pass."""
        if name not in self._candidate_set:
            self._candidate_set.add(name)
            self._candidates.append(name)
            _CANDIDATES_QUEUED.inc()

    def candidate_count(self) -> int:
        """Names awaiting an incremental pass."""
        return len(self._candidates)

    # ---- DataLog listener protocol ----

    def note_put(self, name: str, version: int) -> None:
        """A new version arrived: the superseded latest may now be dead."""
        if self.log.version_count(name) > 1:
            self.push_candidate(name)

    def note_get(self, name: str, component: str, version: int) -> None:
        """A read advanced a frontier: versions below it may now be dead."""
        if self.log.version_count(name) > 1:
            self.push_candidate(name)

    def note_checkpoint(self, component: str) -> None:
        """``component`` checkpointed: its rollback floors moved up, and its
        queue's pre-checkpoint window became trimmable."""
        for name in self.log.names_consumed_by(component):
            if self.log.version_count(name) > 1:
                self.push_candidate(name)
        self._trim_candidates.add(component)

    def note_epoch(self) -> None:
        """A staging checkpoint epoch advanced: re-examine every name still
        pinning more than one version (O(multi-version names), not
        O(records))."""
        for name in self.log.multi_version_names():
            self.push_candidate(name)

    # ------------------------------------------------------------ replay pins

    def pin_replay(self, component: str, pinned: set[tuple[str, int]]) -> None:
        """Pin (name, version) pairs while ``component`` replays them."""
        self._replaying[component] = set(pinned)

    def unpin_replay(self, component: str) -> None:
        """Release ``component``'s replay pins (script exhausted).

        The unpinned names go back on the candidate queue — versions the
        replay protected may be collectable now.
        """
        pins = self._replaying.pop(component, None)
        if pins:
            for name, _version in pins:
                self.push_candidate(name)

    def replay_pinned(self) -> set[tuple[str, int]]:
        """Union of all currently pinned (name, version) pairs."""
        pinned: set[tuple[str, int]] = set()
        for s in self._replaying.values():
            pinned |= s
        return pinned

    # -------------------------------------------------------------- analysis

    def _queue_for(self, component: str) -> EventQueue | None:
        if self.queue_provider is not None:
            return self.queue_provider(component)
        return self.queues.get(component)

    def version_floor(self, name: str) -> int | None:
        """Oldest version of ``name`` any consumer could still need.

        Per consumer the constraint is the minimum of its *rollback floor*
        (oldest version it would re-read after restoring its latest
        checkpoint) and its *read frontier + 1* (versions it has not consumed
        yet — a producer running ahead must not lose them). ``None`` means
        the variable has no registered consumer, so only the latest version
        must be kept. A consumer whose queue cannot be resolved contributes
        floor 0 (conservative: its rollback window is unknown).
        """
        floors: list[int] = []
        consumers = self.log.consumers_of(name)
        for comp in consumers:
            queue = self._queue_for(comp)
            if queue is None:
                # Unknown rollback state: assume the deepest possible
                # rollback and keep every version for this consumer.
                floors.append(0)
                continue
            frontier_floor = self.log.read_frontier(name, comp) + 1
            replay_floor = queue.version_floor(name)
            if replay_floor is not None:
                floors.append(min(replay_floor, frontier_floor))
            else:
                floors.append(frontier_floor)
        return min(floors) if floors else None

    def collectable(self, name: str) -> list[int]:
        """Versions of ``name`` that this pass may evict."""
        versions = self.log.logged_versions(name)
        if len(versions) <= 1:
            return []
        latest = versions[-1]
        pinned = self.replay_pinned()
        floor = self.version_floor(name)
        out = []
        for v in versions:
            if v == latest:
                continue
            if (name, v) in pinned:
                continue
            if floor is not None and v >= floor:
                continue
            out.append(v)
        return out

    # ------------------------------------------------------------------ drain

    def _drain_name(self, name: str, budget: int | None) -> tuple[int, int, bool]:
        """Evict collectable versions of ``name`` up to ``budget``.

        Returns (versions, bytes, exhausted): ``exhausted`` is True when the
        budget ran out with collectable versions still left (the caller
        re-queues the name).
        """
        versions = self.log.logged_versions(name)
        if len(versions) <= 1:
            return 0, 0, False
        pinned = self.replay_pinned()
        floor = self.version_floor(name)
        collected = 0
        freed = 0
        # versions[-1] (the latest) is always kept; the slice excludes it.
        for v in versions[:-1]:
            if floor is not None and v >= floor:
                break  # sorted: every later version is above the floor too
            if (name, v) in pinned:
                continue
            if budget is not None and collected >= budget:
                return collected, freed, True
            freed += self.log.evict(name, v)
            collected += 1
        return collected, freed, False

    def _trim_queues(self, components) -> int:
        trimmed = 0
        for comp in components:
            queue = self._queue_for(comp)
            if queue is None:
                continue
            if queue.component in self._replaying:
                # Never trim a queue mid-replay; its script references it.
                continue
            trimmed += len(queue.trim_before(queue.trimmable_horizon()))
        return trimmed

    # ---------------------------------------------------------------- collect

    def collect(self) -> GCReport:
        """One full collection pass over every logged variable and queue.

        Still O(names × consumers) in the number of *logged names* (every
        floor lookup is now O(1)), but no longer rescans the record map per
        name. The incremental path (:meth:`collect_incremental`) is the
        production entry point; this full sweep is the reference behaviour
        and the recovery hammer.
        """
        t0 = perf_counter()
        with _trace.span("gc.collect"):
            drained, pending_freed = self.log.drain_pending_evictions()
            versions = 0
            freed = pending_freed
            for name in self.log.names():
                n, b, _ = self._drain_name(name, None)
                versions += n
                freed += b
                self._candidate_set.discard(name)
            # Full sweep covers everything: the candidate queue is satisfied.
            self._candidates = deque(
                n for n in self._candidates if n in self._candidate_set
            )
            trimmed = self._trim_queues(list(self.queues))
            self._trim_candidates.clear()
        _PASSES.inc()
        _VERSIONS.inc(versions)
        _BYTES_FREED.inc(freed)
        _EVENTS_TRIMMED.inc(trimmed)
        _PENDING_DRAINED.inc(drained)
        _PASS_SECONDS.record(perf_counter() - t0)
        return GCReport(
            versions_collected=versions,
            bytes_freed=freed,
            events_trimmed=trimmed,
            pending_drained=drained,
        )

    def collect_incremental(
        self,
        max_versions: int | None = None,
        max_seconds: float | None = None,
    ) -> GCReport:
        """Drain queued candidates within a bounded budget.

        Cost is O(candidates drained + versions evicted), independent of the
        total logged state. Candidates the budget could not cover stay on
        the queue (and are counted in ``candidates_deferred``), so repeated
        bounded passes converge to exactly what :meth:`collect` would do.
        """
        t0 = perf_counter()
        deadline = t0 + max_seconds if max_seconds is not None else None
        with _trace.span("gc.collect_incremental"):
            drained, pending_freed = self.log.drain_pending_evictions()
            versions = 0
            freed = pending_freed
            deferred = 0
            while self._candidates:
                if deadline is not None and perf_counter() > deadline:
                    break
                name = self._candidates.popleft()
                budget = None if max_versions is None else max_versions - versions
                if budget is not None and budget <= 0:
                    self._candidates.appendleft(name)
                    break
                n, b, exhausted = self._drain_name(name, budget)
                versions += n
                freed += b
                if exhausted:
                    # Budget ran out mid-name: keep it queued (at the back,
                    # so other candidates are not starved).
                    self._candidates.append(name)
                    break
                self._candidate_set.discard(name)
            deferred = len(self._candidates)
            trimmed = self._trim_queues(list(self._trim_candidates))
            self._trim_candidates.clear()
        _PASSES.inc()
        _VERSIONS.inc(versions)
        _BYTES_FREED.inc(freed)
        _EVENTS_TRIMMED.inc(trimmed)
        _CANDIDATES_DEFERRED.inc(deferred)
        _PENDING_DRAINED.inc(drained)
        _PASS_SECONDS.record(perf_counter() - t0)
        return GCReport(
            versions_collected=versions,
            bytes_freed=freed,
            events_trimmed=trimmed,
            candidates_deferred=deferred,
            pending_drained=drained,
        )

    def has_work(self) -> bool:
        """True when an incremental pass would do something."""
        return bool(
            self._candidates
            or self._trim_candidates
            or self.log.pending_eviction_count()
        )


class BackgroundCollector:
    """Runs bounded GC passes on a thread, driven by byte watermarks.

    The collector wakes every ``interval`` seconds, runs one bounded batch
    (keeping candidate/pending queues drained off the critical path), and —
    when the log's pinned bytes exceed ``high_watermark`` — bursts batches
    back-to-back until pressure falls below ``low_watermark`` or a burst
    stops making progress. ``run_batch`` is expected to take (and release)
    whatever lock serializes GC against the data path *per call*, so the
    data plane is never stalled for more than one batch.

    ``paused`` (optional) suspends collection while it returns True — the
    owner raises it around snapshot/restore/rebuild and active replays.
    """

    def __init__(
        self,
        run_batch: Callable[[], GCReport],
        pressure_bytes: Callable[[], int],
        high_watermark: int,
        low_watermark: int | None = None,
        interval: float = 0.05,
        paused: Callable[[], bool] | None = None,
    ) -> None:
        if low_watermark is None:
            low_watermark = high_watermark // 2
        if low_watermark > high_watermark:
            raise ValueError(
                f"low watermark {low_watermark} above high {high_watermark}"
            )
        self.run_batch = run_batch
        self.pressure_bytes = pressure_bytes
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.interval = interval
        self.paused = paused
        self.reports: list[GCReport] = []
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._ticks = _obs.counter("gc.bg.ticks")
        self._batches = _obs.counter("gc.bg.batches")
        self._trips = _obs.counter("gc.bg.watermark_trips")
        _obs.gauge("gc.bg.high_watermark").set(high_watermark)

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "BackgroundCollector":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="gc-background", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the thread and join it (idempotent)."""
        self._stop.set()
        self._wake.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None

    def wakeup(self) -> None:
        """Nudge the collector (e.g. after a checkpoint or fault recovery)."""
        self._wake.set()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------ loop

    def _batch(self) -> GCReport:
        report = self.run_batch()
        self.reports.append(report)
        self._batches.inc()
        return report

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(timeout=self.interval)
            self._wake.clear()
            if self._stop.is_set():
                return
            self._ticks.inc()
            if self.paused is not None and self.paused():
                continue
            try:
                if self.pressure_bytes() >= self.high_watermark:
                    # Pressure burst: drain until the low watermark clears
                    # or a batch stops making progress. Each batch is one
                    # lock acquisition; between batches the data plane runs.
                    self._trips.inc()
                    while not self._stop.is_set():
                        if self.paused is not None and self.paused():
                            break
                        report = self._batch()
                        if self.pressure_bytes() <= self.low_watermark:
                            break
                        if (
                            report.versions_collected == 0
                            and report.pending_drained == 0
                        ):
                            break  # floors pin everything; wait for them to move
                else:
                    # Idle tick: keep candidate/pending queues short.
                    self._batch()
            except Exception:  # pragma: no cover — defensive: die quiet, not loud
                _obs.counter("gc.bg.errors").inc()
