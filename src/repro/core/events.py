"""Event model for the workflow-level checkpoint framework.

Everything the staging area logs is one of four event kinds (paper §III):

* ``PUT`` / ``GET`` — data-communication requests, identified by the object
  descriptor they carry plus a digest of the payload (so replay can verify it
  reproduces the *exact* bytes of the initial execution);
* ``CHECKPOINT`` — a component called ``workflow_check()``; staging mints a
  unique :class:`WChkId` and inserts the event into that component's queue;
* ``RECOVERY`` — a component called ``workflow_restart()`` after rollback.

Events are immutable; per-component sequence numbers give each queue a total
order that replay follows verbatim.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass

import numpy as np

from repro.descriptors.odsc import ObjectDescriptor

__all__ = [
    "EventKind",
    "WChkId",
    "WorkflowEvent",
    "DataEvent",
    "CheckpointEvent",
    "RecoveryEvent",
    "payload_digest",
]


def payload_digest(data: np.ndarray | bytes) -> str:
    """Short stable digest of payload bytes (for replay verification).

    Contiguous arrays are hashed straight from their buffer — no
    ``tobytes()`` staging copy, which used to double the memory traffic of
    every logged put/get.
    """
    if isinstance(data, np.ndarray):
        arr = np.ascontiguousarray(data)
        try:
            data = arr.data.cast("B")
        except (BufferError, TypeError, ValueError):
            # Exotic dtypes (e.g. zero-itemsize voids) fall back to a copy.
            data = arr.tobytes()
    return hashlib.blake2b(data, digest_size=12).hexdigest()


class EventKind(enum.Enum):
    """The four event kinds the staging area logs."""

    PUT = "put"
    GET = "get"
    CHECKPOINT = "checkpoint"
    RECOVERY = "recovery"


@dataclass(frozen=True, order=True)
class WChkId:
    """Unique workflow checkpoint id (paper: ``W_Chk_ID``).

    Components checkpoint at independent times, so the id carries both the
    component name and a per-component monotone counter.
    """

    component: str
    counter: int

    def __str__(self) -> str:
        return f"W_Chk[{self.component}#{self.counter}]"


@dataclass(frozen=True)
class WorkflowEvent:
    """Base event: which component, queue sequence number, app step."""

    component: str
    seq: int
    step: int

    @property
    def kind(self) -> EventKind:
        raise NotImplementedError


@dataclass(frozen=True)
class DataEvent(WorkflowEvent):
    """A logged put or get request."""

    op: EventKind = EventKind.PUT
    desc: ObjectDescriptor | None = None
    digest: str = ""

    def __post_init__(self) -> None:
        if self.op not in (EventKind.PUT, EventKind.GET):
            raise ValueError(f"DataEvent op must be PUT or GET, got {self.op}")
        if self.desc is None:
            raise ValueError("DataEvent requires a descriptor")

    @property
    def kind(self) -> EventKind:
        return self.op

    def matches_request(self, op: EventKind, desc: ObjectDescriptor) -> bool:
        """True when a replayed request re-issues this logged event.

        Identity is (operation, name, version, bbox): a rolled-back component
        must re-issue byte-identical requests, which the paper guarantees by
        deterministic re-execution from the checkpoint.
        """
        return (
            self.op is op
            and self.desc is not None
            and self.desc.name == desc.name
            and self.desc.version == desc.version
            and self.desc.bbox == desc.bbox
        )

    def __str__(self) -> str:
        return f"{self.op.value}({self.component}#{self.seq}, {self.desc})"


@dataclass(frozen=True)
class CheckpointEvent(WorkflowEvent):
    """A component checkpointed (``workflow_check``).

    ``durable`` distinguishes checkpoint tiers for multi-level schemes:
    durable checkpoints (PFS) survive node loss; non-durable ones
    (node-local NVRAM/SSD) are faster but may vanish with the node, in
    which case recovery replays from the last *durable* checkpoint.
    """

    chk_id: WChkId | None = None
    durable: bool = True

    def __post_init__(self) -> None:
        if self.chk_id is None:
            raise ValueError("CheckpointEvent requires a WChkId")

    @property
    def kind(self) -> EventKind:
        return EventKind.CHECKPOINT

    def __str__(self) -> str:
        return f"checkpoint({self.component}#{self.seq}, {self.chk_id}, step={self.step})"


@dataclass(frozen=True)
class RecoveryEvent(WorkflowEvent):
    """A component announced rollback recovery (``workflow_restart``)."""

    restored_chk: WChkId | None = None  # None => restarted from the beginning

    @property
    def kind(self) -> EventKind:
        return EventKind.RECOVERY

    def __str__(self) -> str:
        return f"recovery({self.component}#{self.seq}, from={self.restored_chk})"
