"""Crash-consistency checking.

The correctness criterion of the paper's framework (its Figure 2 motivates
the failure mode): across any schedule of failures and rollbacks, every
component must observe — via its staged reads — exactly the (variable,
version, payload) sequence it observed in the initial execution, and its
redundant re-writes must be absorbed without creating new state.

:class:`ObservationLog` records what each component actually saw;
:func:`verify_read_stability` compares a run against a failure-free
reference and raises :class:`~repro.errors.ConsistencyError` with a precise
diagnosis on the first divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConsistencyError

__all__ = ["Observation", "ObservationLog", "verify_read_stability"]


@dataclass(frozen=True)
class Observation:
    """One staged read as seen by the application code."""

    component: str
    step: int
    name: str
    version: int
    digest: str


@dataclass
class ObservationLog:
    """Per-component record of application-visible reads.

    Re-executed steps after a rollback *overwrite* their original slot: the
    application-visible history is indexed by (step, read-ordinal within the
    step), because that is what the application's own control flow sees. A
    consistent recovery therefore reproduces identical entries; an
    inconsistent one (paper Fig. 2 case 1) shows a different version in an
    already-filled slot.
    """

    observations: dict[str, dict[tuple[int, int], Observation]] = field(default_factory=dict)
    _ordinals: dict[tuple[str, int], int] = field(default_factory=dict)

    def begin_step(self, component: str, step: int) -> None:
        """Reset the read-ordinal counter for a (re-)executed step."""
        self._ordinals[(component, step)] = 0

    def record(self, component: str, step: int, name: str, version: int, digest: str) -> Observation:
        """Record one read; returns the observation stored."""
        ordinal = self._ordinals.get((component, step), 0)
        self._ordinals[(component, step)] = ordinal + 1
        obs = Observation(component=component, step=step, name=name, version=version, digest=digest)
        self.observations.setdefault(component, {})[(step, ordinal)] = obs
        return obs

    def history(self, component: str) -> list[Observation]:
        """Final application-visible history, ordered by (step, ordinal)."""
        slots = self.observations.get(component, {})
        return [slots[k] for k in sorted(slots)]

    def components(self) -> list[str]:
        return sorted(self.observations)


def verify_read_stability(reference: ObservationLog, run: ObservationLog) -> None:
    """Check a (possibly failure-ridden) run against a failure-free reference.

    Raises :class:`ConsistencyError` naming the first divergent observation;
    returns None when the run is read-stable.
    """
    for component in reference.components():
        ref_hist = reference.history(component)
        run_hist = run.history(component)
        if len(run_hist) != len(ref_hist):
            raise ConsistencyError(
                f"component {component!r}: observed {len(run_hist)} reads, "
                f"reference has {len(ref_hist)}"
            )
        for ref_obs, run_obs in zip(ref_hist, run_hist):
            if (ref_obs.name, ref_obs.version) != (run_obs.name, run_obs.version):
                raise ConsistencyError(
                    f"component {component!r} step {run_obs.step}: read "
                    f"{run_obs.name!r} v{run_obs.version}, reference read "
                    f"{ref_obs.name!r} v{ref_obs.version} — stale/wrong version "
                    f"after recovery (paper Fig. 2 failure mode)"
                )
            if ref_obs.digest != run_obs.digest:
                raise ConsistencyError(
                    f"component {component!r} step {run_obs.step}: payload of "
                    f"{run_obs.name!r} v{run_obs.version} differs from the "
                    f"initial execution ({run_obs.digest} != {ref_obs.digest})"
                )
    extra = set(run.components()) - set(reference.components())
    if extra:
        raise ConsistencyError(f"run observed unknown components: {sorted(extra)}")
