"""Global User Interface (paper §III-C, Table I).

:class:`WorkflowStaging` is the staging-side service that glues together the
event queues, the data-logging component, and the garbage collector.
:class:`WorkflowClient` is the per-component handle exposing the paper's four
calls:

=========================  ====================================================
``workflow_check()``       send a checkpoint event to data staging
``workflow_restart()``     recover the staging client and notify the recovery
                           event; staging builds the replay script
``dspaces_put_with_log()`` log data to data staging (suppressed when replaying)
``dspaces_get_with_log()`` retrieve the logged data specified by a geometric
                           descriptor (served from the log when replaying)
=========================  ====================================================

The same object also implements the *original* (non-logging) staging mode
used by the paper's ``Ds`` baseline and its ``In`` (individual checkpoint,
consistency-unsafe) comparison point, selected with ``enable_logging=False``.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core.data_log import DataLog
from repro.core.event_queue import EventQueue, ReplayScript
from repro.core.events import EventKind, WChkId, payload_digest
from repro.core.garbage import GarbageCollector, GCReport
from repro.descriptors.odsc import ObjectDescriptor
from repro.errors import (
    ObjectNotFound,
    ReplayError,
    ServerUnavailable,
    StagingError,
    TransientServerError,
)
from repro.obs import registry as _obs
from repro.obs import trace as _trace
from repro.staging.client import StagingClient, StagingGroup
from repro.staging.cow import StagingCheckpointer, compose_chain, is_cow_snapshot

__all__ = ["WorkflowStaging", "WorkflowClient", "PutResult", "GetResult", "GetPlan"]

_SUPPRESSED_PUTS = _obs.counter("staging.replay.suppressed_puts")
_REPLAYED_GETS = _obs.counter("staging.replay.served_gets")
_REPLAYS_STARTED = _obs.counter("staging.replay.scripts_activated")
_CHECK_COUNT = _obs.counter("checkpoint.workflow_check.count")
_CHECK_SECONDS = _obs.histogram("checkpoint.workflow_check.seconds")
_RESTART_COUNT = _obs.counter("checkpoint.workflow_restart.count")
_RESTART_SECONDS = _obs.histogram("checkpoint.workflow_restart.seconds")


@dataclass(frozen=True)
class PutResult:
    """Outcome of one put: whether it was stored or replay-suppressed."""

    desc: ObjectDescriptor
    stored: bool
    suppressed: bool
    shards: int


@dataclass(frozen=True)
class GetResult:
    """Outcome of one get: payload plus the version actually served."""

    desc: ObjectDescriptor
    data: np.ndarray
    served_version: int
    replayed: bool
    digest: str


@dataclass(frozen=True)
class GetPlan:
    """Metadata-phase decision for one get: which version to fetch and how.

    Produced by :meth:`WorkflowStaging.plan_get` under the service's
    metadata lock; the payload fetch then runs outside it (per-server locks
    only) and the outcome is recorded by the matching commit method.
    """

    version: int
    replayed: bool


class WorkflowStaging:
    """Staging service with data/event logging and rollback replay.

    Parameters
    ----------
    group:
        The staging server group holding payloads.
    enable_logging:
        True (default) for the paper's framework; False gives original
        DataSpaces retention (latest version only, no queues, no replay) —
        the ``Ds``/``In`` baselines.
    auto_gc:
        Run a garbage-collection pass after every ``workflow_check``.
    """

    def __init__(
        self,
        group: StagingGroup,
        enable_logging: bool = True,
        auto_gc: bool = True,
    ) -> None:
        self.group = group
        self.enable_logging = enable_logging
        self.auto_gc = auto_gc
        # Optional hook (set by the runtime layer): given a variable name,
        # return the lowest version some consumer has not yet read, or None
        # when unknown. Non-logged retention then keeps unconsumed versions
        # instead of blindly keeping only the latest.
        self.frontier_source = None
        self._client = StagingClient(group, client_id="staging-internal")
        self.queues: dict[str, EventQueue] = {}
        self.log = DataLog(group=group)
        # Queues resolve lazily through the provider callback: a component
        # that registers *after* GC construction is still seen, and a
        # consumer with no resolvable queue is treated conservatively
        # (floor 0) instead of silently losing its rollback floor.
        self.gc = GarbageCollector(
            log=self.log, queues=self.queues, queue_provider=self.queues.get
        )
        self._replay: dict[str, ReplayScript] = {}
        # Replay scripts built with per-variable cursors (independent
        # partitions may replay concurrently; per-name order is still
        # enforced). Off by default = the seed's strict global order; the
        # synchronized service enables it alongside its parallel data path.
        self.replay_partitioned = False
        self.gc_reports: list[GCReport] = []
        # Incremental copy-on-write checkpointing of the staging group
        # (journals + base/delta chain). Idle until the first incremental
        # snapshot: ``full=True`` captures never enable journaling, so the
        # seed data path pays no per-mutation cost.
        self.checkpointer = StagingCheckpointer(group)

    @property
    def client(self) -> StagingClient:
        """The staging-internal client (public accessor for service layers).

        Exposed so wrappers like the runtime's ``SynchronizedStaging`` can
        answer coverage/version queries without reaching into ``_client``.
        """
        return self._client

    # ------------------------------------------------------------- register

    def register(self, component: str) -> "WorkflowClient":
        """Create (or fetch) the event queue for a component; returns a client."""
        if component not in self.queues:
            self.queues[component] = EventQueue(component=component)
        return WorkflowClient(staging=self, component=component)

    def declare_coupling(self, name: str, consumer: str) -> None:
        """Pre-declare that ``consumer`` reads variable ``name``.

        Protects not-yet-read versions from garbage collection during the
        window before the consumer's first get.
        """
        self.log.register_consumer(name, consumer)

    def in_replay(self, component: str) -> bool:
        """True while ``component`` is consuming its replay script."""
        return component in self._replay

    def replay_script(self, component: str) -> ReplayScript | None:
        """The active replay script for ``component``, if any."""
        return self._replay.get(component)

    def any_replaying(self) -> bool:
        """True while *any* component is consuming a replay script.

        The background collector pauses on this: replay scripts pin the
        versions they still need, and deferring collection until the script
        drains keeps GC entirely out of recovery's way.
        """
        return bool(self._replay)

    def _queue(self, component: str) -> EventQueue:
        queue = self.queues.get(component)
        if queue is None:
            raise StagingError(f"component {component!r} never registered")
        return queue

    # ------------------------------------------------------------------ put

    def validate_put(self, desc: ObjectDescriptor, data: np.ndarray) -> np.ndarray:
        """Coerce and shape-check a put payload (no locks required)."""
        data = np.asarray(data, dtype=np.dtype(desc.dtype))
        if tuple(data.shape) != desc.bbox.shape:
            raise StagingError(
                f"payload shape {data.shape} != descriptor shape {desc.bbox.shape}"
            )
        return data

    def suppress_replayed_put(
        self, component: str, desc: ObjectDescriptor, data: np.ndarray
    ) -> PutResult | None:
        """Replay-suppression phase: consume the expected event, store nothing.

        Returns None when the component is executing live (the caller must
        then move the payload and call :meth:`commit_put`).
        """
        if not (self.enable_logging and self.in_replay(component)):
            return None
        expected = self._replay[component].expected_event(desc)
        if not expected.matches_request(EventKind.PUT, desc):
            raise ReplayError(
                f"{component!r} replayed {EventKind.PUT.value} {desc}, "
                f"but the log expects {expected}"
            )
        if expected.digest != payload_digest(data):
            raise ReplayError(
                f"{component!r} re-executed {desc} with different bytes than "
                f"its initial execution — non-deterministic replay"
            )
        self._replay[component].consume(desc)
        self._finish_replay_if_done(component)
        _SUPPRESSED_PUTS.inc()
        return PutResult(desc=desc, stored=False, suppressed=True, shards=0)

    def commit_put(
        self, component: str, desc: ObjectDescriptor, digest: str, step: int, shards: int
    ) -> PutResult:
        """Metadata-commit phase of a live put: log the event, apply retention.

        ``digest`` is computed by the caller during the data phase so the
        hash never runs under the metadata lock (it is ignored when logging
        is off — pass an empty string).
        """
        if self.enable_logging:
            queue = self._queue(component)
            queue.record_data(EventKind.PUT, desc, digest, step)
            self.log.record_put(
                name=desc.name,
                version=desc.version,
                nbytes=desc.nbytes,
                producer=component,
                step=step,
            )
        else:
            # Original DataSpaces retention: consumed versions are dropped.
            # Without a frontier source this degrades to latest-only (the
            # write-immediately-followed-by-read pattern of the paper).
            floor = None
            if self.frontier_source is not None:
                floor = self.frontier_source(desc.name)
            if floor is None:
                for server in self.group.servers:
                    try:
                        server.keep_only_latest(desc.name)
                    except (ServerUnavailable, TransientServerError):
                        continue
                self._trim_records_latest(desc.name)
            else:
                self.drop_consumed(desc.name, floor)
        return PutResult(desc=desc, stored=True, suppressed=False, shards=shards)

    def drop_consumed(self, name: str, floor: int) -> None:
        """Non-logged retention: evict versions every consumer has read.

        The latest version is always kept even when fully consumed, so the
        stale-latest fallback keeps something to serve. Unreachable servers
        are skipped — their memory cannot be reclaimed by asking nicely —
        and protection records follow the same floor so degraded reads never
        resurrect an evicted version.
        """
        for server in self.group.servers:
            latest = server.store.latest_version(name)
            if latest is not None:
                try:
                    server.evict_older_than_version(name, min(floor, latest))
                except (ServerUnavailable, TransientServerError):
                    continue
        rec_versions = self.group.records.versions(name)
        if rec_versions:
            self.group.records.evict_older_than(name, min(floor, rec_versions[-1]))

    def _trim_records_latest(self, name: str) -> None:
        """Latest-only retention for protection records (non-logged mode)."""
        versions = self.group.records.versions(name)
        for v in versions[:-1]:
            self.group.records.evict(name, v)

    def handle_put(
        self, component: str, desc: ObjectDescriptor, data: np.ndarray, step: int
    ) -> PutResult:
        """Service one write request (``dspaces_put_with_log``).

        Live execution stores + logs the payload; replay mode recognises the
        request as redundant and suppresses it (paper: "omit the write
        request due to the redundant write request from the rollback
        recovering application"). This single-call form runs all phases
        back-to-back; the threaded runtime drives the phases separately so
        the data phase escapes its metadata lock.
        """
        data = self.validate_put(desc, data)
        suppressed = self.suppress_replayed_put(component, desc, data)
        if suppressed is not None:
            return suppressed
        shards = self._client.put(desc, data)
        digest = payload_digest(data) if self.enable_logging else ""
        return self.commit_put(component, desc, digest, step, shards)

    # ------------------------------------------------------------------ get

    def handle_get(
        self, component: str, desc: ObjectDescriptor, step: int
    ) -> GetResult:
        """Service one read request (``dspaces_get_with_log``).

        Replay mode re-serves the logged version; live mode serves the
        requested version and records the event. In non-logging mode a
        missing version silently degrades to the latest available one — the
        exact inconsistency of the paper's Figure 2 case 1, kept here so the
        ``In`` baseline demonstrably returns wrong data.
        """
        replayed = False
        if self.enable_logging and self.in_replay(component):
            self._check_replay_get(component, desc)
            data = self._client.get(desc)
            return self.commit_replayed_get(component, desc, data, payload_digest(data))

        served_version = desc.version
        try:
            data = self._client.get(desc)
        except ObjectNotFound:
            if self.enable_logging:
                raise
            latest = self._client.latest_version(desc.name)
            if latest is None:
                raise
            served_version = latest
            data = self._client.get(desc.with_version(latest))
        digest = payload_digest(data)
        return self.commit_get(
            component, desc, data, digest, served_version, step, replayed=replayed
        )

    def _check_replay_get(self, component: str, desc: ObjectDescriptor) -> None:
        """Raise unless ``desc`` matches the next event in the replay script."""
        expected = self._replay[component].expected_event(desc)
        if not expected.matches_request(EventKind.GET, desc):
            raise ReplayError(
                f"{component!r} replayed {EventKind.GET.value} {desc}, "
                f"but the log expects {expected}"
            )

    def plan_get(self, component: str, desc: ObjectDescriptor) -> GetPlan | None:
        """Metadata phase: decide whether a get is servable right now.

        Mirrors the blocking-get readiness conditions of the threaded
        runtime: replay scripts always serve; live gets need full coverage;
        the non-logged mode additionally allows the stale-latest fallback
        once a newer version exists. Returns None when the caller should
        keep waiting.
        """
        if self.enable_logging and self.in_replay(component):
            self._check_replay_get(component, desc)
            return GetPlan(version=desc.version, replayed=True)
        if self._client.covers(desc):
            return GetPlan(version=desc.version, replayed=False)
        if not self.enable_logging:
            latest = self._client.latest_version(desc.name)
            if latest is not None and latest >= desc.version:
                return GetPlan(version=latest, replayed=False)
        return None

    def fetch_get(self, desc: ObjectDescriptor, version: int) -> np.ndarray:
        """Data phase: assemble the payload (per-server locks only)."""
        if version == desc.version:
            return self._client.get(desc)
        return self._client.get(desc.with_version(version))

    def commit_replayed_get(
        self, component: str, desc: ObjectDescriptor, data: np.ndarray, digest: str
    ) -> GetResult:
        """Metadata-commit phase of a replayed get: verify and advance."""
        expected = self._replay[component].expected_event(desc)
        if expected.digest != digest:
            raise ReplayError(
                f"replay of {desc} for {component!r} served different bytes "
                f"than the initial execution ({digest} != {expected.digest})"
            )
        self._replay[component].consume(desc)
        self._finish_replay_if_done(component)
        _REPLAYED_GETS.inc()
        return GetResult(
            desc=desc,
            data=data,
            served_version=desc.version,
            replayed=True,
            digest=digest,
        )

    def commit_get(
        self,
        component: str,
        desc: ObjectDescriptor,
        data: np.ndarray,
        digest: str,
        served_version: int,
        step: int,
        replayed: bool = False,
    ) -> GetResult:
        """Metadata-commit phase of a live get: record the event and access."""
        if self.enable_logging:
            queue = self._queue(component)
            queue.record_data(EventKind.GET, desc, digest, step)
            self.log.record_get(desc.name, component, served_version)
        return GetResult(
            desc=desc,
            data=data,
            served_version=served_version,
            replayed=replayed,
            digest=digest,
        )

    # ------------------------------------------------------------ checkpoint

    def handle_check(self, component: str, step: int, durable: bool = True) -> WChkId:
        """Service ``workflow_check``: mint a W_Chk_ID and insert the event.

        ``durable=False`` marks a node-local (multi-level) checkpoint: the
        GC then keeps retaining back to the last durable one, because a node
        failure can force a deeper rollback.
        """
        if not self.enable_logging:
            # The Ds/In baselines checkpoint applications without informing
            # staging; the call is accepted and ignored.
            return WChkId(component, -1)
        if self.in_replay(component):
            raise ReplayError(
                f"{component!r} attempted workflow_check while replaying"
            )
        t0 = perf_counter()
        queue = self._queue(component)
        ev = queue.record_checkpoint(step, durable=durable)
        # The checkpoint moved this component's rollback floors: queue the
        # names it consumes (and its queue trim) as GC candidates.
        self.gc.note_checkpoint(component)
        if self.auto_gc:
            # Candidate-driven drain: O(names this checkpoint affected),
            # not a stop-the-world sweep of every logged variable.
            self.gc_reports.append(self.gc.collect_incremental())
        _CHECK_COUNT.inc()
        _CHECK_SECONDS.record(perf_counter() - t0)
        assert ev.chk_id is not None
        return ev.chk_id

    # -------------------------------------------------------------- restart

    def handle_restart(
        self, component: str, step: int, durable_only: bool = False
    ) -> ReplayScript:
        """Service ``workflow_restart``: build and activate the replay script.

        A component may fail *again* while replaying; the half-consumed
        script is discarded and replay restarts from the checkpoint — the
        queue still holds every event of the window, so the fresh script is
        identical to the original one. ``durable_only=True`` replays from
        the last durable checkpoint (node failure destroyed the node-local
        tier).
        """
        if not self.enable_logging:
            # No log: the recovering component simply rejoins live execution.
            return ReplayScript(component=component, restored_chk=None, events=[])
        with _trace.span("staging.restart", component=component, step=step):
            t0 = perf_counter()
            if self.in_replay(component):
                del self._replay[component]
                self.gc.unpin_replay(component)
            queue = self._queue(component)
            script = queue.build_replay_script(
                durable_only=durable_only, partitioned=self.replay_partitioned
            )
            queue.record_recovery(step, script.restored_chk)
            if script.events:
                _REPLAYS_STARTED.inc()
                self._replay[component] = script
                pins = {
                    (ev.desc.name, ev.desc.version)
                    for ev in script.events
                    if ev.op is EventKind.GET and ev.desc is not None
                }
                self.gc.pin_replay(component, pins)
            _RESTART_COUNT.inc()
            _RESTART_SECONDS.record(perf_counter() - t0)
            return script

    def _finish_replay_if_done(self, component: str) -> None:
        script = self._replay.get(component)
        if script is not None and script.exhausted:
            del self._replay[component]
            self.gc.unpin_replay(component)

    # ------------------------------------------------------------- snapshot

    def snapshot(self, full: bool = False) -> dict:
        """Capture the staging group's state (unsynchronized path).

        Default is incremental: the first call takes a full base capture and
        starts the mutation journals; later calls seal + package only the
        delta since the previous one. ``full=True`` is the seed-compatible
        path, returning a plain full snapshot (and never engaging journaling
        on a group that has not checkpointed incrementally).

        Callers running concurrent mutators must use the synchronized
        service's snapshot instead — this path takes no locks.
        """
        ckpt = self.checkpointer
        if full:
            snap = ckpt.capture_full(
                {}, start_chain=ckpt.journaling, parallel=False
            )
            ckpt.release_discarded()
            return snap
        if ckpt.wants_full():
            ckpt.capture_full({}, parallel=False)
            ckpt.release_discarded()
            return ckpt.chain_view()
        sealed = ckpt.seal()
        sealed["frontier"] = {}
        return ckpt.materialize(sealed)

    def restore(self, snap: dict) -> None:
        """Roll the staging group back to ``snap`` (full or incremental)."""
        cow = is_cow_snapshot(snap)
        full = compose_chain(snap["chain"]) if cow else snap
        for srv, server_snap in zip(self.group.servers, full["servers"]):
            srv.restore(server_snap)
        if "protection" in full:
            self.group.records.restore(full["protection"])
        if "health" in full:
            self.group.health.restore(full["health"])
        if cow:
            self.checkpointer.rebase(snap)
            self.checkpointer.release_discarded()
        else:
            self.checkpointer.mark_dirty()

    # -------------------------------------------------------------- metrics

    def memory_bytes(self) -> int:
        """Payload bytes resident across all staging servers."""
        return self.group.total_bytes

    def logging_overhead(self) -> float:
        """Memory overhead of logging vs latest-only retention."""
        return self.log.logging_overhead()

    def run_gc(
        self,
        full: bool = True,
        max_versions: int | None = None,
        max_seconds: float | None = None,
    ) -> GCReport:
        """Force one garbage-collection pass.

        ``full=True`` (default) runs the reference full sweep; otherwise a
        bounded incremental pass drains queued candidates within the given
        budgets and reports what it deferred.
        """
        if full:
            report = self.gc.collect()
        else:
            report = self.gc.collect_incremental(
                max_versions=max_versions, max_seconds=max_seconds
            )
        self.gc_reports.append(report)
        return report


class WorkflowClient:
    """Per-component handle implementing the paper's Table I interface."""

    def __init__(self, staging: WorkflowStaging, component: str) -> None:
        self.staging = staging
        self.component = component
        self._step = 0

    def set_step(self, step: int) -> None:
        """Advance the component's coupling step (tags logged events)."""
        self._step = step

    # ---- Table I ----------------------------------------------------------

    def workflow_check(self, durable: bool = True) -> WChkId:
        """Send a checkpoint event to data staging."""
        return self.staging.handle_check(self.component, self._step, durable=durable)

    def workflow_restart(self, durable_only: bool = False) -> ReplayScript:
        """Recover the staging client and notify the recovery event."""
        return self.staging.handle_restart(
            self.component, self._step, durable_only=durable_only
        )

    def dspaces_put_with_log(self, desc: ObjectDescriptor, data: np.ndarray) -> PutResult:
        """Log data to data staging."""
        return self.staging.handle_put(self.component, desc, data, self._step)

    def dspaces_get_with_log(self, desc: ObjectDescriptor) -> GetResult:
        """Retrieve the logged data specified by a geometric descriptor."""
        return self.staging.handle_get(self.component, desc, self._step)

    # ---- convenience -------------------------------------------------------

    @property
    def in_replay(self) -> bool:
        """True while this component is consuming its replay script."""
        return self.staging.in_replay(self.component)
