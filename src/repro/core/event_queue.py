"""The queue-based data consistency algorithm (paper §III-A.1, Figure 5).

The staging area keeps one :class:`EventQueue` per application component and
pushes every data-communication and fault-tolerance event related to that
component onto it. On failure, the queue yields the *replay script*: the
logged data events recorded after the component's last checkpoint. While the
component re-executes, staging walks the script, re-serving each logged get
and suppressing each redundant put, until the component catches up with its
pre-failure frontier and returns to live execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import (
    CheckpointEvent,
    DataEvent,
    EventKind,
    RecoveryEvent,
    WChkId,
    WorkflowEvent,
)
from repro.errors import ReplayError
from repro.obs import registry as _obs

__all__ = ["EventQueue", "ReplayScript"]

_APPENDS = _obs.counter("eventq.events_appended")
_TRIMMED = _obs.counter("eventq.events_trimmed")
_SCRIPTS_BUILT = _obs.counter("eventq.replay_scripts_built")
_SCRIPT_EVENTS = _obs.histogram("eventq.replay_script.events")
_SCRIPT_PARTITIONS = _obs.histogram("recovery.replay.partitions")


@dataclass
class ReplayScript:
    """The ordered data events a recovering component must re-observe.

    Two consumption modes. The default (serial) mode replays the log in
    exact global order through :meth:`peek`/:meth:`advance` — the seed
    semantics. Partitioned mode (:meth:`enable_partitioning`) splits the
    script by variable name and tracks one cursor per partition: replayed
    requests must still arrive in order *within* each name (the data
    dependency the consistency argument needs — version v of a variable is
    re-observed before version v+1), but requests for different names may
    interleave freely, so independent partitions can replay concurrently.
    :meth:`expected_event`/:meth:`consume` serve both modes and degrade to
    exact ``peek``/``advance`` behaviour when partitioning is off.
    """

    component: str
    restored_chk: WChkId | None
    events: list[DataEvent]
    _cursor: int = 0
    partitioned: bool = False
    _partitions: dict = field(default_factory=dict, repr=False, compare=False)
    _part_cursor: dict = field(default_factory=dict, repr=False, compare=False)
    _consumed: int = 0

    @staticmethod
    def _key(desc) -> str:
        return desc.name if desc is not None else ""

    def enable_partitioning(self) -> None:
        """Switch to per-name cursors (idempotent; must precede any replay)."""
        if self.partitioned:
            return
        if self._cursor:
            raise ReplayError(
                f"replay script for {self.component!r} already partially "
                f"consumed; cannot partition"
            )
        self.partitioned = True
        self._partitions = {}
        for idx, ev in enumerate(self.events):
            self._partitions.setdefault(self._key(ev.desc), []).append(idx)
        self._part_cursor = {k: 0 for k in self._partitions}
        _SCRIPT_PARTITIONS.record(len(self._partitions))

    def partition_names(self) -> list[str]:
        """The independent partitions (variable names) of this script."""
        if not self.partitioned:
            return sorted({self._key(ev.desc) for ev in self.events})
        return list(self._partitions)

    @property
    def remaining(self) -> int:
        """Events not yet replayed."""
        consumed = self._consumed if self.partitioned else self._cursor
        return len(self.events) - consumed

    @property
    def exhausted(self) -> bool:
        """True once every event has been replayed."""
        return self.remaining <= 0

    def peek(self) -> DataEvent:
        """The next expected event in global order (raises when exhausted)."""
        if self.exhausted:
            raise ReplayError(f"replay script for {self.component!r} exhausted")
        return self.events[self._cursor]

    def advance(self) -> DataEvent:
        """Consume and return the next expected event (global order)."""
        ev = self.peek()
        self._cursor += 1
        return ev

    def expected_event(self, desc) -> DataEvent:
        """The event a request for ``desc`` must match.

        Serial mode: the global head (exactly :meth:`peek`). Partitioned
        mode: the head of ``desc``'s name partition.
        """
        if not self.partitioned:
            return self.peek()
        key = self._key(desc)
        idxs = self._partitions.get(key, ())
        cur = self._part_cursor.get(key, 0)
        if cur >= len(idxs):
            raise ReplayError(
                f"replay script for {self.component!r} has no pending "
                f"events for variable {key!r}"
            )
        return self.events[idxs[cur]]

    def consume(self, desc) -> DataEvent:
        """Consume the event a request for ``desc`` matched."""
        ev = self.expected_event(desc)
        if self.partitioned:
            self._part_cursor[self._key(desc)] += 1
            self._consumed += 1
        else:
            self._cursor += 1
        return ev


@dataclass
class EventQueue:
    """Per-component event queue with checkpoint-aware trimming.

    The queue is append-only during normal execution. ``workflow_check``
    appends a :class:`CheckpointEvent`; at that point events older than the
    *previous* checkpoint can never be replayed again (a component only ever
    rolls back to its latest checkpoint) and become garbage — the paper's
    "at the end of checkpoint cycle, data staging will clean the event queue".
    Trimming itself is performed by the garbage collector so it can first
    check cross-component data dependencies.
    """

    component: str
    events: list[WorkflowEvent] = field(default_factory=list)
    _next_seq: int = 0
    _next_chk_counter: int = 0
    # Cached per-component depth gauge (resolved on first append).
    _depth_gauge: object = field(default=None, repr=False, compare=False)
    # ---- O(1) caches (maintained at append time) ----
    # Latest checkpoint event, any durability / durable only.
    _latest_chk: CheckpointEvent | None = field(default=None, repr=False, compare=False)
    _latest_durable_chk: CheckpointEvent | None = field(
        default=None, repr=False, compare=False
    )
    # name -> min GET version observed since the latest *durable* checkpoint
    # (the replayable window). Gives ``version_floor`` its O(1) lookup —
    # the GC calls it per candidate, so it must not rescan the queue.
    _floor_cache: dict[str, int] = field(default_factory=dict, repr=False, compare=False)

    # ---------------------------------------------------------------- append

    def _alloc_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _note_depth(self) -> None:
        gauge = self._depth_gauge
        if gauge is None:
            gauge = self._depth_gauge = _obs.gauge(f"eventq.depth.{self.component}")
        gauge.set(len(self.events))

    def record_data(self, op: EventKind, desc, digest: str, step: int) -> DataEvent:
        """Append a put/get event observed during live execution."""
        ev = DataEvent(
            component=self.component,
            seq=self._alloc_seq(),
            step=step,
            op=op,
            desc=desc,
            digest=digest,
        )
        self.events.append(ev)
        if op is EventKind.GET and desc is not None:
            cur = self._floor_cache.get(desc.name)
            if cur is None or desc.version < cur:
                self._floor_cache[desc.name] = desc.version
        _APPENDS.inc()
        self._note_depth()
        return ev

    def record_checkpoint(self, step: int, durable: bool = True) -> CheckpointEvent:
        """Append a checkpoint event, minting a fresh ``W_Chk_ID``.

        ``durable=False`` marks a node-local (multi-level) checkpoint that
        may not survive a node failure; retention and trimming must then
        fall back to the last durable checkpoint.
        """
        chk_id = WChkId(self.component, self._next_chk_counter)
        self._next_chk_counter += 1
        ev = CheckpointEvent(
            component=self.component,
            seq=self._alloc_seq(),
            step=step,
            chk_id=chk_id,
            durable=durable,
        )
        self.events.append(ev)
        self._latest_chk = ev
        if durable:
            # The replayable window restarts here: no event before a durable
            # checkpoint can ever be replayed again.
            self._latest_durable_chk = ev
            self._floor_cache.clear()
        _APPENDS.inc()
        self._note_depth()
        return ev

    def record_recovery(self, step: int, restored: WChkId | None) -> RecoveryEvent:
        """Append a recovery event (``workflow_restart`` notification)."""
        ev = RecoveryEvent(
            component=self.component,
            seq=self._alloc_seq(),
            step=step,
            restored_chk=restored,
        )
        self.events.append(ev)
        _APPENDS.inc()
        self._note_depth()
        return ev

    # ---------------------------------------------------------------- query

    def latest_checkpoint(self, durable_only: bool = False) -> CheckpointEvent | None:
        """The most recent (optionally durable) checkpoint event, or None.

        Served from the append-time cache — O(1), no queue scan.
        """
        return self._latest_durable_chk if durable_only else self._latest_chk

    def data_events(self) -> list[DataEvent]:
        """All data events currently in the queue, oldest first."""
        return [ev for ev in self.events if isinstance(ev, DataEvent)]

    def events_after(self, chk: CheckpointEvent | None) -> list[DataEvent]:
        """Data events recorded after ``chk`` (all of them when None)."""
        if chk is None:
            return self.data_events()
        return [
            ev
            for ev in self.events
            if isinstance(ev, DataEvent) and ev.seq > chk.seq
        ]

    # ---------------------------------------------------------------- replay

    def build_replay_script(
        self, durable_only: bool = False, partitioned: bool = False
    ) -> ReplayScript:
        """Replay script from the latest restorable checkpoint (paper Fig. 5).

        A component that has never checkpointed restarts from the beginning,
        so its script covers the whole queue. ``durable_only=True`` replays
        from the last *durable* checkpoint — the multi-level case where a
        node failure destroyed the newer node-local checkpoints.
        ``partitioned=True`` builds the script with per-variable cursors so
        independent partitions can replay in parallel (per-name order still
        enforced); the default is the seed's strict global order.
        """
        chk = self.latest_checkpoint(durable_only=durable_only)
        script = ReplayScript(
            component=self.component,
            restored_chk=chk.chk_id if chk else None,
            events=self.events_after(chk),
        )
        if partitioned:
            script.enable_partitioning()
        _SCRIPTS_BUILT.inc()
        _SCRIPT_EVENTS.record(len(script.events))
        return script

    # ------------------------------------------------------------------ trim

    def trim_before(self, seq: int) -> list[WorkflowEvent]:
        """Drop events with ``ev.seq < seq``; returns the dropped events."""
        dropped = [ev for ev in self.events if ev.seq < seq]
        if dropped:
            self.events = [ev for ev in self.events if ev.seq >= seq]
            # The GC only trims below the durable checkpoint, so the caches
            # normally survive; an arbitrary deeper trim must rebuild them.
            if self._latest_chk is not None and self._latest_chk.seq < seq:
                self._rescan_checkpoints()
            _TRIMMED.inc(len(dropped))
            self._note_depth()
        return dropped

    def _rescan_checkpoints(self) -> None:
        """Rebuild the checkpoint/floor caches after an out-of-band trim."""
        self._latest_chk = None
        self._latest_durable_chk = None
        for ev in reversed(self.events):
            if isinstance(ev, CheckpointEvent):
                if self._latest_chk is None:
                    self._latest_chk = ev
                if ev.durable:
                    self._latest_durable_chk = ev
                    break
        self._floor_cache = {}
        for ev in self.events_after(self._latest_durable_chk):
            if ev.op is EventKind.GET and ev.desc is not None:
                cur = self._floor_cache.get(ev.desc.name)
                if cur is None or ev.desc.version < cur:
                    self._floor_cache[ev.desc.name] = ev.desc.version

    def trimmable_horizon(self) -> int:
        """Queue sequence below which events can never be replayed.

        That is the sequence of the latest *durable* checkpoint event: a
        node failure can force rollback past newer node-local checkpoints,
        so only events before the durable one are dead. Returns 0 (nothing
        trimmable) for components with no durable checkpoint yet.
        """
        chk = self.latest_checkpoint(durable_only=True)
        return chk.seq if chk is not None else 0

    # -------------------------------------------------------------- metrics

    def __len__(self) -> int:
        return len(self.events)

    def version_floor(self, name: str) -> int | None:
        """Oldest version of ``name`` this component could re-read on rollback.

        Served from the append-time floor cache (min GET version since the
        latest *durable* checkpoint — the deepest restorable point); O(1).
        None when the component never reads ``name`` in its replayable
        window.
        """
        return self._floor_cache.get(name)
