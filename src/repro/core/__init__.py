"""The paper's primary contribution: workflow-level checkpoint/restart with
data/event logging in the staging area.

Public surface:

* :class:`WorkflowStaging` / :class:`WorkflowClient` — the global user
  interface of Table I (``workflow_check``, ``workflow_restart``,
  ``dspaces_put_with_log``, ``dspaces_get_with_log``);
* :class:`EventQueue` / :class:`ReplayScript` — the queue-based data
  consistency algorithm of §III-A.1;
* :class:`DataLog` — the data logging component;
* :class:`GarbageCollector` — the storage-cost GC of §III-A.2;
* :class:`ObservationLog` / :func:`verify_read_stability` — the
  crash-consistency checker used by tests and the inconsistency demo.
"""

from repro.core.consistency import Observation, ObservationLog, verify_read_stability
from repro.core.data_log import DataLog, LogRecord
from repro.core.event_queue import EventQueue, ReplayScript
from repro.core.events import (
    CheckpointEvent,
    DataEvent,
    EventKind,
    RecoveryEvent,
    WChkId,
    WorkflowEvent,
    payload_digest,
)
from repro.core.garbage import GarbageCollector, GCReport
from repro.core.interface import GetResult, PutResult, WorkflowClient, WorkflowStaging

__all__ = [
    "Observation",
    "ObservationLog",
    "verify_read_stability",
    "DataLog",
    "LogRecord",
    "EventQueue",
    "ReplayScript",
    "CheckpointEvent",
    "DataEvent",
    "EventKind",
    "RecoveryEvent",
    "WChkId",
    "WorkflowEvent",
    "payload_digest",
    "GarbageCollector",
    "GCReport",
    "GetResult",
    "PutResult",
    "WorkflowClient",
    "WorkflowStaging",
]
