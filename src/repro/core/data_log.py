"""Data Logging Component (paper Figure 8).

Stores, indexes and maintains the logged payload versions flowing through
staging. The underlying :class:`~repro.staging.client.StagingGroup` already
keeps payload fragments; what logging adds is *retention*: the original
DataSpaces keeps only the latest version of each variable, while the logging
component pins every version that some component could still re-read after a
rollback, and accounts for the extra bytes (the quantity plotted in the
paper's Figure 9(c)/(d)).

The log is fully indexed: per-name sorted version lists, per-name byte
totals, and a running logged-bytes total are maintained O(1) at
``record_put``/``evict`` time, so ``logged_versions``/``names``/
``logged_bytes`` never walk the record map. A listener hook (used by the
garbage collector) receives put/get notifications so collection can be
candidate-driven instead of scan-driven.

Eviction is fault-aware: a server that answers with a *transient* error
keeps its fragments on a per-server **pending-eviction queue** and is
retried on later passes or on health recovery — only a confirmed fail-stop
(:class:`~repro.errors.ServerUnavailable`) writes fragments off, because a
crashed server's memory dies with it. Treating a merely slow or flaky
server like a crashed one would leak its fragments forever *and* leave the
version fetchable there after GC reported it freed.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, insort
from dataclasses import dataclass, field

from repro.errors import ObjectNotFound, ServerUnavailable, TransientServerError
from repro.obs import registry as _obs
from repro.staging.client import StagingGroup

__all__ = ["DataLog", "LogRecord"]

_PUTS = _obs.counter("datalog.puts")
_EVICTIONS = _obs.counter("datalog.evictions")
_PENDING_QUEUED = _obs.counter("datalog.evictions.pending_queued")
_PENDING_DRAINED = _obs.counter("datalog.evictions.pending_drained")
_PENDING_WRITTEN_OFF = _obs.counter("datalog.evictions.written_off")

# Instance ids for per-instance gauges: a module-global gauge would
# aggregate across every live DataLog, so a second workflow (or test)
# corrupts the reading and obs reports disagree with ``logged_bytes()``.
_instance_ids = itertools.count()


@dataclass(frozen=True)
class LogRecord:
    """Retention record for one logged (name, version)."""

    name: str
    version: int
    nbytes: int
    producer: str
    step: int


@dataclass
class DataLog:
    """Version-retention bookkeeping over a staging group.

    The log does not copy payloads — fragments live once in the staging
    servers — it tracks which (name, version) pairs must be retained and
    measures the memory cost of doing so versus latest-only retention.
    """

    group: StagingGroup
    records: dict[tuple[str, int], LogRecord] = field(default_factory=dict)
    # name -> component -> highest version read (the consumer's read frontier)
    consumers: dict[str, dict[str, int]] = field(default_factory=dict)
    # ---- incremental indexes (maintained at record/evict time) ----
    # name -> sorted list of logged versions.
    _versions: dict[str, list[int]] = field(default_factory=dict, repr=False)
    # name -> pinned bytes for that name.
    _name_bytes: dict[str, int] = field(default_factory=dict, repr=False)
    # Running total of pinned bytes (== sum of _name_bytes values).
    _total_bytes: int = field(default=0, repr=False)
    # component -> names it consumes (reverse of ``consumers``); lets a
    # checkpoint advance turn into O(names-this-component-reads) candidates.
    _consumed_by: dict[str, set[str]] = field(default_factory=dict, repr=False)
    # server_id -> {(name, version): nbytes} evictions a transiently-failing
    # server has not yet confirmed.
    _pending_evictions: dict[int, dict[tuple[str, int], int]] = field(
        default_factory=dict, repr=False
    )
    # GC (or any observer) notified of puts/gets/evictions; see attach_listener.
    _listener: object = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Rebuild indexes when constructed with pre-existing records (tests
        # build DataLog(records=...) occasionally; normal runs start empty).
        if self.records and not self._versions:
            for (name, version), rec in self.records.items():
                insort(self._versions.setdefault(name, []), version)
                self._name_bytes[name] = self._name_bytes.get(name, 0) + rec.nbytes
                self._total_bytes += rec.nbytes
        for name, frontiers in self.consumers.items():
            for comp in frontiers:
                self._consumed_by.setdefault(comp, set()).add(name)
        iid = next(_instance_ids)
        # Per-instance lazy gauges: read at snapshot time from the O(1)
        # running totals, so concurrent DataLog instances never cross-talk.
        _obs.gauge(f"datalog.{iid}.logged_bytes", fn=self.logged_bytes)
        _obs.gauge(f"datalog.{iid}.pending_evictions", fn=self.pending_eviction_count)
        # Called when a server with queued pending evictions recovers; the
        # owner points it at the background collector's wakeup so the queue
        # drains promptly (the drain itself always runs inside a GC pass,
        # under the GC's lock — never on the recovery notification thread).
        self.recovery_waker = None
        health = getattr(self.group, "health", None)
        if health is not None:
            health.on_recovered = self._on_server_recovered

    def _on_server_recovered(self, server_id: int) -> None:
        waker = self.recovery_waker
        if waker is not None and self.pending_eviction_count(server_id):
            waker()

    # ------------------------------------------------------------- listener

    def attach_listener(self, listener: object) -> None:
        """Register the GC (or any observer) for put/get notifications.

        The listener may implement ``note_put(name, version)``,
        ``note_get(name, component, version)`` — both optional.
        """
        self._listener = listener

    # --------------------------------------------------------------- record

    def record_put(self, name: str, version: int, nbytes: int, producer: str, step: int) -> LogRecord:
        """Pin a freshly written version in the log."""
        rec = LogRecord(name=name, version=version, nbytes=nbytes, producer=producer, step=step)
        prev = self.records.get((name, version))
        self.records[(name, version)] = rec
        versions = self._versions.setdefault(name, [])
        if prev is None:
            if not versions or version > versions[-1]:
                versions.append(version)  # common case: monotone versions
            else:
                insort(versions, version)
        delta = nbytes - (prev.nbytes if prev is not None else 0)
        self._name_bytes[name] = self._name_bytes.get(name, 0) + delta
        self._total_bytes += delta
        _PUTS.inc()
        listener = self._listener
        if listener is not None:
            listener.note_put(name, version)
        return rec

    def register_consumer(self, name: str, component: str) -> None:
        """Declare that ``component`` will read ``name`` before any read
        happens.

        Without the declaration, a producer that writes and checkpoints
        before the consumer's first get would let the GC treat the variable
        as consumerless and collect versions the consumer still needs.
        DataSpaces couplings are declared, so this mirrors reality.
        """
        self.consumers.setdefault(name, {}).setdefault(component, -1)
        self._consumed_by.setdefault(component, set()).add(name)

    def record_get(self, name: str, component: str, version: int) -> None:
        """Note that ``component`` consumed version ``version`` of ``name``.

        The consumer map drives garbage collection: a version may only be
        collected when every consumer's rollback window has moved past it
        *and* the consumer's forward read frontier has passed it (a producer
        running ahead must not have its unread versions collected).
        """
        frontiers = self.consumers.setdefault(name, {})
        frontiers[component] = max(frontiers.get(component, -1), version)
        self._consumed_by.setdefault(component, set()).add(name)
        listener = self._listener
        if listener is not None:
            listener.note_get(name, component, version)

    # ---------------------------------------------------------------- query

    def logged_versions(self, name: str) -> list[int]:
        """Sorted pinned versions of ``name`` (indexed; no record-map scan)."""
        return list(self._versions.get(name, ()))

    def latest_logged(self, name: str) -> int | None:
        """Newest pinned version of ``name`` (O(1))."""
        versions = self._versions.get(name)
        return versions[-1] if versions else None

    def oldest_logged(self, name: str) -> int | None:
        """Oldest pinned version of ``name`` (O(1))."""
        versions = self._versions.get(name)
        return versions[0] if versions else None

    def version_count(self, name: str) -> int:
        """Number of pinned versions of ``name`` (O(1))."""
        return len(self._versions.get(name, ()))

    def consumers_of(self, name: str) -> set[str]:
        """Components known to read ``name``."""
        return set(self.consumers.get(name, ()))

    def names_consumed_by(self, component: str) -> set[str]:
        """Variables ``component`` reads (reverse consumer index)."""
        return set(self._consumed_by.get(component, ()))

    def read_frontier(self, name: str, component: str) -> int:
        """Highest version of ``name`` that ``component`` has read (-1: none)."""
        return self.consumers.get(name, {}).get(component, -1)

    def names(self) -> list[str]:
        """Sorted distinct logged variable names (indexed)."""
        return sorted(self._versions)

    def multi_version_names(self) -> list[str]:
        """Names currently pinning more than one version — the only names a
        collection pass could possibly free anything for."""
        return [n for n, vs in self._versions.items() if len(vs) > 1]

    # ---------------------------------------------------------------- evict

    def evict(self, name: str, version: int) -> int:
        """Unpin (name, version) and drop its fragments from every server.

        Returns bytes freed across the group. Raises ObjectNotFound when the
        version was never logged (GC bookkeeping bug guard).

        Fault handling distinguishes failure modes per server:

        * **fail-stop** (:class:`ServerUnavailable`) — the server's memory
          died with it; the fragments are written off (a rebuild starts from
          the protection records, which are dropped below, so nothing gets
          resurrected);
        * **transient** (:class:`TransientServerError`) — the server is
          alive and still *holds* the fragments; they are queued on that
          server's pending-eviction queue and retried by later passes or on
          health recovery. Writing them off here would leak the memory and
          leave the version readable on that server after GC reported it
          collected.
        """
        rec = self.records.pop((name, version), None)
        if rec is None:
            raise ObjectNotFound(f"{name!r} v{version} not in data log")
        versions = self._versions.get(name)
        if versions:
            i = bisect_left(versions, version)
            if i < len(versions) and versions[i] == version:
                del versions[i]
            if not versions:
                del self._versions[name]
        self._name_bytes[name] = self._name_bytes.get(name, 0) - rec.nbytes
        if self._name_bytes[name] <= 0:
            del self._name_bytes[name]
        self._total_bytes -= rec.nbytes
        freed = 0
        for server in self.group.servers:
            freed += self._evict_from_server(server, name, version)
        self.group.records.evict(name, version)
        _EVICTIONS.inc()
        return freed

    def _evict_from_server(self, server, name: str, version: int) -> int:
        """Ask one server to drop (name, version); queue on transient failure."""
        sid = server.server_id
        health = getattr(self.group, "health", None)
        try:
            freed = server.evict(name, version)
        except ServerUnavailable:
            # Confirmed fail-stop: contents die with the server.
            if health is not None:
                health.mark_down(sid)
            _PENDING_WRITTEN_OFF.inc()
            return 0
        except TransientServerError:
            if health is not None:
                health.mark_failure(sid)
            pending = self._pending_evictions.setdefault(sid, {})
            if (name, version) not in pending:
                pending[(name, version)] = 0
                _PENDING_QUEUED.inc()
            return 0
        if health is not None:
            health.mark_success(sid)
        return freed

    # ------------------------------------------------- pending-eviction queue

    def pending_eviction_count(self, server_id: int | None = None) -> int:
        """Outstanding unconfirmed fragment evictions (optionally one server)."""
        if server_id is not None:
            return len(self._pending_evictions.get(server_id, ()))
        return sum(len(q) for q in self._pending_evictions.values())

    def pending_evictions(self) -> dict[int, list[tuple[str, int]]]:
        """Snapshot of the per-server pending queues (for reports/tests)."""
        return {
            sid: sorted(queue)
            for sid, queue in self._pending_evictions.items()
            if queue
        }

    def drain_pending_evictions(self, server_id: int | None = None) -> tuple[int, int]:
        """Retry queued fragment evictions; returns (drained, bytes_freed).

        Called by every GC pass and by the health layer when a suspect
        server recovers. Entries succeed (fragments confirmed gone), are
        written off on confirmed fail-stop, or stay queued on another
        transient failure. ``ObjectNotFound``/absent fragments count as
        drained — a rebuilt replacement server never held them.
        """
        if server_id is not None:
            sids = [server_id] if server_id in self._pending_evictions else []
        else:
            sids = [sid for sid, q in self._pending_evictions.items() if q]
        drained = 0
        freed = 0
        for sid in sids:
            queue = self._pending_evictions.get(sid)
            if not queue:
                continue
            if sid >= len(self.group.servers):
                # Group shrank (test teardown); nothing to ask.
                self._pending_evictions.pop(sid, None)
                continue
            server = self.group.servers[sid]
            health = getattr(self.group, "health", None)
            for key in list(queue):
                name, version = key
                try:
                    freed += server.evict(name, version)
                except ServerUnavailable:
                    # Fail-stop confirmed: write the whole queue off.
                    if health is not None:
                        health.mark_down(sid)
                    written_off = len(queue)
                    queue.clear()
                    _PENDING_WRITTEN_OFF.inc(written_off)
                    break
                except TransientServerError:
                    if health is not None:
                        health.mark_failure(sid)
                    continue
                except ObjectNotFound:
                    pass  # replacement server never held the fragments
                if health is not None:
                    health.mark_success(sid)
                del queue[key]
                drained += 1
                _PENDING_DRAINED.inc()
            if not queue:
                self._pending_evictions.pop(sid, None)
        return drained, freed

    def write_off_pending(self, server_id: int) -> int:
        """Drop a server's pending queue (confirmed fail-stop / rebuild)."""
        queue = self._pending_evictions.pop(server_id, None)
        if not queue:
            return 0
        _PENDING_WRITTEN_OFF.inc(len(queue))
        return len(queue)

    # -------------------------------------------------------------- metrics

    def logged_bytes(self) -> int:
        """Bytes retained by the log (running total; O(1))."""
        return self._total_bytes

    def name_bytes(self, name: str) -> int:
        """Bytes retained for one variable (running total; O(1))."""
        return self._name_bytes.get(name, 0)

    def baseline_bytes(self) -> int:
        """Bytes the *original* staging would retain: latest version only."""
        total = 0
        for name, versions in self._versions.items():
            rec = self.records.get((name, versions[-1]))
            if rec is not None:
                total += rec.nbytes
        return total

    def logging_overhead(self) -> float:
        """Extra memory fraction versus latest-only retention.

        This is the ratio the paper annotates on Figure 9(c)/(d) bars
        (e.g. +81 % for Case 1 at 20 % subset).
        """
        base = self.baseline_bytes()
        # Refresh the logged-vs-baseline gauges off the hot path (baseline
        # is O(names) to compute, so it is only sampled here).
        _obs.gauge("datalog.baseline_bytes").set(base)
        if base == 0:
            return 0.0
        return self.logged_bytes() / base - 1.0
