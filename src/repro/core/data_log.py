"""Data Logging Component (paper Figure 8).

Stores, indexes and maintains the logged payload versions flowing through
staging. The underlying :class:`~repro.staging.client.StagingGroup` already
keeps payload fragments; what logging adds is *retention*: the original
DataSpaces keeps only the latest version of each variable, while the logging
component pins every version that some component could still re-read after a
rollback, and accounts for the extra bytes (the quantity plotted in the
paper's Figure 9(c)/(d)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ObjectNotFound, ServerUnavailable, TransientServerError
from repro.obs import registry as _obs
from repro.staging.client import StagingGroup

__all__ = ["DataLog", "LogRecord"]

_PUTS = _obs.counter("datalog.puts")
_EVICTIONS = _obs.counter("datalog.evictions")
# Pinned bytes across all live DataLog instances, maintained incrementally
# so the hot path never walks the record map.
_LOGGED_BYTES = _obs.gauge("datalog.logged_bytes")


@dataclass(frozen=True)
class LogRecord:
    """Retention record for one logged (name, version)."""

    name: str
    version: int
    nbytes: int
    producer: str
    step: int


@dataclass
class DataLog:
    """Version-retention bookkeeping over a staging group.

    The log does not copy payloads — fragments live once in the staging
    servers — it tracks which (name, version) pairs must be retained and
    measures the memory cost of doing so versus latest-only retention.
    """

    group: StagingGroup
    records: dict[tuple[str, int], LogRecord] = field(default_factory=dict)
    # name -> component -> highest version read (the consumer's read frontier)
    consumers: dict[str, dict[str, int]] = field(default_factory=dict)

    # --------------------------------------------------------------- record

    def record_put(self, name: str, version: int, nbytes: int, producer: str, step: int) -> LogRecord:
        """Pin a freshly written version in the log."""
        rec = LogRecord(name=name, version=version, nbytes=nbytes, producer=producer, step=step)
        prev = self.records.get((name, version))
        self.records[(name, version)] = rec
        _PUTS.inc()
        _LOGGED_BYTES.add(nbytes - (prev.nbytes if prev is not None else 0))
        return rec

    def register_consumer(self, name: str, component: str) -> None:
        """Declare that ``component`` will read ``name`` before any read
        happens.

        Without the declaration, a producer that writes and checkpoints
        before the consumer's first get would let the GC treat the variable
        as consumerless and collect versions the consumer still needs.
        DataSpaces couplings are declared, so this mirrors reality.
        """
        self.consumers.setdefault(name, {}).setdefault(component, -1)

    def record_get(self, name: str, component: str, version: int) -> None:
        """Note that ``component`` consumed version ``version`` of ``name``.

        The consumer map drives garbage collection: a version may only be
        collected when every consumer's rollback window has moved past it
        *and* the consumer's forward read frontier has passed it (a producer
        running ahead must not have its unread versions collected).
        """
        frontiers = self.consumers.setdefault(name, {})
        frontiers[component] = max(frontiers.get(component, -1), version)

    # ---------------------------------------------------------------- query

    def logged_versions(self, name: str) -> list[int]:
        """Sorted pinned versions of ``name``."""
        return sorted(v for (n, v) in self.records if n == name)

    def latest_logged(self, name: str) -> int | None:
        """Newest pinned version of ``name``."""
        versions = self.logged_versions(name)
        return versions[-1] if versions else None

    def consumers_of(self, name: str) -> set[str]:
        """Components known to read ``name``."""
        return set(self.consumers.get(name, ()))

    def read_frontier(self, name: str, component: str) -> int:
        """Highest version of ``name`` that ``component`` has read (-1: none)."""
        return self.consumers.get(name, {}).get(component, -1)

    def names(self) -> list[str]:
        """Sorted distinct logged variable names."""
        return sorted({n for (n, _v) in self.records})

    # ---------------------------------------------------------------- evict

    def evict(self, name: str, version: int) -> int:
        """Unpin (name, version) and drop its fragments from every server.

        Returns bytes freed across the group. Raises ObjectNotFound when the
        version was never logged (GC bookkeeping bug guard).
        """
        rec = self.records.pop((name, version), None)
        if rec is None:
            raise ObjectNotFound(f"{name!r} v{version} not in data log")
        freed = 0
        for server in self.group.servers:
            # A crashed or flapping server cannot be asked to free memory —
            # skip it (its contents die with it; a rebuild starts from the
            # protection records, which are dropped below, so nothing gets
            # resurrected).
            try:
                freed += server.evict(name, version)
            except (ServerUnavailable, TransientServerError):
                continue
        self.group.records.evict(name, version)
        _EVICTIONS.inc()
        _LOGGED_BYTES.add(-rec.nbytes)
        return freed

    # -------------------------------------------------------------- metrics

    def logged_bytes(self) -> int:
        """Bytes retained by the log (all pinned versions)."""
        return sum(rec.nbytes for rec in self.records.values())

    def baseline_bytes(self) -> int:
        """Bytes the *original* staging would retain: latest version only."""
        latest: dict[str, LogRecord] = {}
        for rec in self.records.values():
            cur = latest.get(rec.name)
            if cur is None or rec.version > cur.version:
                latest[rec.name] = rec
        return sum(rec.nbytes for rec in latest.values())

    def logging_overhead(self) -> float:
        """Extra memory fraction versus latest-only retention.

        This is the ratio the paper annotates on Figure 9(c)/(d) bars
        (e.g. +81 % for Case 1 at 20 % subset).
        """
        base = self.baseline_bytes()
        # Refresh the logged-vs-baseline gauges off the hot path (baseline
        # is O(records) to compute, so it is only sampled here).
        _obs.gauge("datalog.baseline_bytes").set(base)
        if base == 0:
            return 0.0
        return self.logged_bytes() / base - 1.0
