"""Render and persist ``repro.obs`` metrics snapshots.

``metrics_table`` turns a registry snapshot into the same aligned plain-text
format the figure benchmarks print; ``write_snapshot`` persists the raw
JSON (one file per benchmark under ``benchmarks/results/``) so perf PRs can
diff op counts and latency percentiles before/after a change.
"""

from __future__ import annotations

import json
import pathlib

from repro.analysis.report import banner, format_table
from repro.obs import registry as _default_registry

__all__ = [
    "metrics_table",
    "checkpoint_report",
    "gc_report",
    "recovery_report",
    "net_report",
    "write_snapshot",
]


def _fmt(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return f"{int(value)}"
    if abs(value) >= 1e-3 or value == 0:
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return f"{value:.3e}"


def metrics_table(snapshot: dict[str, dict] | None = None, title: str = "obs metrics") -> str:
    """An aligned table of every counter, gauge, and histogram."""
    if snapshot is None:
        snapshot = _default_registry.snapshot()
    counters = []
    histograms = []
    for name in sorted(snapshot):
        state = snapshot[name]
        kind = state.get("type")
        if kind in ("counter", "gauge"):
            counters.append([name, kind, _fmt(state["value"])])
        elif kind == "histogram":
            if state["count"] == 0:
                continue
            histograms.append(
                [
                    name,
                    state["count"],
                    _fmt(state["mean"]),
                    _fmt(state["p50"]),
                    _fmt(state["p95"]),
                    _fmt(state["p99"]),
                    _fmt(state["max"]),
                ]
            )
    parts = [banner(title)]
    if counters:
        parts.append(format_table(["counter/gauge", "type", "value"], counters))
    if histograms:
        parts.append(
            format_table(
                ["histogram", "count", "mean", "p50", "p95", "p99", "max"],
                histograms,
            )
        )
    if not counters and not histograms:
        parts.append("(no metrics recorded)")
    return "\n\n".join(parts)


def checkpoint_report(snapshot: dict[str, dict] | None = None) -> str:
    """A focused section on the ``checkpoint.*`` metrics.

    Summarizes the incremental copy-on-write checkpoint pipeline: how many
    captures were full vs delta, the bytes a delta shipped relative to live
    state (delta ratio), how long capture/compose took, and — the headline
    number — how long the data plane was actually gated (the quiescence
    window, which incremental capture keeps O(mutations), not O(state)).
    Returns an empty string when no checkpoint activity was recorded.
    """
    if snapshot is None:
        snapshot = _default_registry.snapshot()
    section = {
        name: state for name, state in snapshot.items()
        if name.startswith("checkpoint.")
    }
    activity = any(
        state.get("value") or state.get("count") for state in section.values()
    )
    if not section or not activity:
        return ""
    full = section.get("checkpoint.captures.full", {}).get("value", 0)
    incremental = section.get("checkpoint.captures.incremental", {}).get("value", 0)
    delta_bytes = section.get("checkpoint.delta.bytes", {}).get("value", 0)
    rows = [
        ["captures (full / incremental)", f"{int(full)} / {int(incremental)}"],
        ["delta bytes shipped", _fmt(delta_bytes)],
        ["chain length (now)", _fmt(section.get("checkpoint.chain.length", {}).get("value", 0))],
        ["compactions", _fmt(section.get("checkpoint.compactions", {}).get("value", 0))],
    ]
    ratio = section.get("checkpoint.delta.ratio", {})
    if ratio.get("count"):
        rows.append(["delta ratio (mean / p95)", f"{_fmt(ratio['mean'])} / {_fmt(ratio['p95'])}"])
    for label, name in (
        ("gate (quiesce window) s", "checkpoint.gate.seconds"),
        ("capture s", "checkpoint.capture.seconds"),
        ("compose s", "checkpoint.compose.seconds"),
        ("restore s", "checkpoint.restore.seconds"),
        ("workflow_check s", "checkpoint.workflow_check.seconds"),
        ("workflow_restart s", "checkpoint.workflow_restart.seconds"),
    ):
        hist = section.get(name, {})
        if hist.get("count"):
            rows.append(
                [label, f"n={hist['count']} mean={_fmt(hist['mean'])} max={_fmt(hist['max'])}"]
            )
    return "\n\n".join(
        [banner("checkpointing"), format_table(["metric", "value"], rows)]
    )


def gc_report(snapshot: dict[str, dict] | None = None) -> str:
    """A focused section on the ``gc.*`` / ``datalog.evictions.*`` metrics.

    Summarizes the incremental/concurrent collector: pass count and latency
    percentiles (the headline number — flat regardless of logged-state
    size), what the passes reclaimed, how the candidate queue behaved
    (queued vs deferred under budget), the fault path (evictions queued
    pending on transient failures, drained vs written off), and the
    background collector's tick/batch/watermark activity. Returns an empty
    string when no GC activity was recorded.
    """
    if snapshot is None:
        snapshot = _default_registry.snapshot()
    passes = snapshot.get("gc.passes", {}).get("value", 0)
    if not passes:
        return ""

    def val(name: str) -> float:
        return snapshot.get(name, {}).get("value", 0)

    rows = [["passes", _fmt(passes)]]
    lat = snapshot.get("gc.pass.seconds", {})
    if lat.get("count"):
        rows.append(
            [
                "pass latency s (p50 / p95 / p99 / max)",
                f"{_fmt(lat['p50'])} / {_fmt(lat['p95'])} / "
                f"{_fmt(lat['p99'])} / {_fmt(lat['max'])}",
            ]
        )
    rows += [
        ["versions collected", _fmt(val("gc.versions_collected"))],
        ["bytes freed", _fmt(val("gc.bytes_freed"))],
        ["events trimmed", _fmt(val("gc.events_trimmed"))],
        [
            "candidates (queued / deferred)",
            f"{_fmt(val('gc.candidates_queued'))} / "
            f"{_fmt(val('gc.candidates_deferred'))}",
        ],
        [
            "pending evictions (queued / drained / written off)",
            f"{_fmt(val('datalog.evictions.pending_queued'))} / "
            f"{_fmt(val('datalog.evictions.pending_drained'))} / "
            f"{_fmt(val('datalog.evictions.written_off'))}",
        ],
    ]
    if val("gc.bg.ticks") or val("gc.bg.batches"):
        rows.append(
            [
                "background (ticks / batches / watermark trips)",
                f"{_fmt(val('gc.bg.ticks'))} / {_fmt(val('gc.bg.batches'))} / "
                f"{_fmt(val('gc.bg.watermark_trips'))}",
            ]
        )
        if val("gc.bg.errors"):
            rows.append(["background errors", _fmt(val("gc.bg.errors"))])
    return "\n\n".join(
        [banner("garbage collection"), format_table(["metric", "value"], rows)]
    )


def recovery_report(snapshot: dict[str, dict] | None = None) -> str:
    """A focused section on the ``recovery.*`` / rebuild metrics.

    Summarizes the parallel recovery engine end to end: degraded reads
    served while servers were down, server rebuilds (count, bytes, latency,
    plus the batched-decode pipeline's batch/codeword counts and any
    records skipped or failing digest verification), parallel restore
    fan-out, and workflow restarts (latency and replay-partition widths).
    Returns an empty string when no recovery activity was recorded.
    """
    if snapshot is None:
        snapshot = _default_registry.snapshot()

    def val(name: str) -> float:
        return snapshot.get(name, {}).get("value", 0)

    restarts = snapshot.get("recovery.workflow_restart.seconds", {})
    activity = (
        val("staging.rebuild.count")
        or val("staging.client.degraded_reads")
        or val("recovery.restore.parallel_servers")
        or restarts.get("count")
    )
    if not activity:
        return ""
    rows = [
        [
            "degraded reads (served / verify failures)",
            f"{_fmt(val('staging.client.degraded_reads'))} / "
            f"{_fmt(val('staging.client.verify_failures'))}",
        ],
        [
            "rebuilds (count / bytes)",
            f"{_fmt(val('staging.rebuild.count'))} / "
            f"{_fmt(val('staging.rebuild.bytes'))}",
        ],
    ]
    reb = snapshot.get("staging.rebuild.seconds", {})
    if reb.get("count"):
        rows.append(
            [
                "rebuild latency s (mean / max)",
                f"{_fmt(reb['mean'])} / {_fmt(reb['max'])}",
            ]
        )
    if val("recovery.rebuild.batches") or val("recovery.decode.codewords"):
        rows.append(
            [
                "decode pipeline (batches / codewords)",
                f"{_fmt(val('recovery.rebuild.batches'))} / "
                f"{_fmt(val('recovery.decode.codewords'))}",
            ]
        )
    skipped = val("staging.rebuild.skipped_records")
    verify = val("staging.rebuild.verify_failures")
    if skipped or verify:
        rows.append(
            [
                "rebuild records skipped / digest failures",
                f"{_fmt(skipped)} / {_fmt(verify)}",
            ]
        )
    if val("recovery.restore.parallel_servers"):
        rows.append(
            ["restore fan-out (server tasks)", _fmt(val("recovery.restore.parallel_servers"))]
        )
    if restarts.get("count"):
        rows.append(
            [
                "workflow restarts s (n / mean / max)",
                f"n={restarts['count']} mean={_fmt(restarts['mean'])} "
                f"max={_fmt(restarts['max'])}",
            ]
        )
    partitions = snapshot.get("recovery.replay.partitions", {})
    if partitions.get("count"):
        rows.append(
            [
                "replay partitions (mean / max names)",
                f"{_fmt(partitions['mean'])} / {_fmt(partitions['max'])}",
            ]
        )
    return "\n\n".join(
        [banner("recovery"), format_table(["metric", "value"], rows)]
    )


def net_report(snapshot: dict[str, dict] | None = None) -> str:
    """A focused section on the ``net.*`` wire-transport metrics.

    Summarizes TCP transport activity: requests and round-trip latency,
    bytes moved in each direction, connections opened, server-process
    spawns, pipelined batch sizes, and wire-level failures that were mapped
    into the staging error taxonomy. Empty when no wire transport ran (the
    inproc default produces no ``net.*`` activity).
    """
    if snapshot is None:
        snapshot = _default_registry.snapshot()

    def val(name: str) -> float:
        return snapshot.get(name, {}).get("value", 0)

    requests = snapshot.get("net.tcp.request.seconds", {})
    if not (val("net.tcp.requests") or requests.get("count")):
        return ""
    rows = [
        ["requests", _fmt(val("net.tcp.requests"))],
        [
            "bytes sent / received",
            f"{_fmt(val('net.tcp.bytes_sent'))} / "
            f"{_fmt(val('net.tcp.bytes_received'))}",
        ],
        [
            "connections / server spawns",
            f"{_fmt(val('net.tcp.connects'))} / {_fmt(val('net.tcp.server_spawns'))}",
        ],
    ]
    if requests.get("count"):
        rows.append(
            [
                "round trip s (mean / p99 / max)",
                f"{_fmt(requests['mean'])} / {_fmt(requests.get('p99', 0))} / "
                f"{_fmt(requests['max'])}",
            ]
        )
    batches = snapshot.get("net.tcp.batch.size", {})
    if batches.get("count"):
        rows.append(
            [
                "pipelined batches (n / mean ops / max ops)",
                f"n={batches['count']} mean={_fmt(batches['mean'])} "
                f"max={_fmt(batches['max'])}",
            ]
        )
    if val("net.tcp.wire_errors"):
        rows.append(["wire errors (mapped to staging errors)", _fmt(val("net.tcp.wire_errors"))])
    spawns = snapshot.get("net.tcp.spawn.seconds", {})
    if spawns.get("count"):
        rows.append(
            [
                "server spawn s (mean / max)",
                f"{_fmt(spawns['mean'])} / {_fmt(spawns['max'])}",
            ]
        )
    return "\n\n".join([banner("net"), format_table(["metric", "value"], rows)])


def write_snapshot(path: str | pathlib.Path, snapshot: dict[str, dict] | None = None, extra: dict | None = None) -> dict:
    """Dump the snapshot (plus optional metadata) as JSON; returns it."""
    if snapshot is None:
        snapshot = _default_registry.snapshot()
    doc = {"metrics": snapshot}
    if extra:
        doc.update(extra)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc
