"""Render and persist ``repro.obs`` metrics snapshots.

``metrics_table`` turns a registry snapshot into the same aligned plain-text
format the figure benchmarks print; ``write_snapshot`` persists the raw
JSON (one file per benchmark under ``benchmarks/results/``) so perf PRs can
diff op counts and latency percentiles before/after a change.
"""

from __future__ import annotations

import json
import pathlib

from repro.analysis.report import banner, format_table
from repro.obs import registry as _default_registry

__all__ = ["metrics_table", "write_snapshot"]


def _fmt(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return f"{int(value)}"
    if abs(value) >= 1e-3 or value == 0:
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return f"{value:.3e}"


def metrics_table(snapshot: dict[str, dict] | None = None, title: str = "obs metrics") -> str:
    """An aligned table of every counter, gauge, and histogram."""
    if snapshot is None:
        snapshot = _default_registry.snapshot()
    counters = []
    histograms = []
    for name in sorted(snapshot):
        state = snapshot[name]
        kind = state.get("type")
        if kind in ("counter", "gauge"):
            counters.append([name, kind, _fmt(state["value"])])
        elif kind == "histogram":
            if state["count"] == 0:
                continue
            histograms.append(
                [
                    name,
                    state["count"],
                    _fmt(state["mean"]),
                    _fmt(state["p50"]),
                    _fmt(state["p95"]),
                    _fmt(state["p99"]),
                    _fmt(state["max"]),
                ]
            )
    parts = [banner(title)]
    if counters:
        parts.append(format_table(["counter/gauge", "type", "value"], counters))
    if histograms:
        parts.append(
            format_table(
                ["histogram", "count", "mean", "p50", "p95", "p99", "max"],
                histograms,
            )
        )
    if not counters and not histograms:
        parts.append("(no metrics recorded)")
    return "\n\n".join(parts)


def write_snapshot(path: str | pathlib.Path, snapshot: dict[str, dict] | None = None, extra: dict | None = None) -> dict:
    """Dump the snapshot (plus optional metadata) as JSON; returns it."""
    if snapshot is None:
        snapshot = _default_registry.snapshot()
    doc = {"metrics": snapshot}
    if extra:
        doc.update(extra)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc
