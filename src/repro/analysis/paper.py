"""The paper's reported numbers, as data.

Every benchmark prints paper-vs-measured side by side; this module is the
single source of truth for what the paper reported (§IV, Figures 9-10).
"""

from __future__ import annotations

__all__ = [
    "FIG9A_WRITE_OVERHEAD_PCT",
    "FIG9B_WRITE_OVERHEAD_MAX_PCT",
    "FIG9C_MEMORY_OVERHEAD_PCT",
    "FIG9D_MEMORY_OVERHEAD_PCT",
    "FIG9E_IMPROVEMENT_PCT",
    "FIG10_MAX_IMPROVEMENT_PCT",
    "TABLE2_SETUP",
    "TABLE3_SETUP",
]

# Fig 9(a): write-response-time increase of data/event logging vs original
# staging, Case 1, by subset percentage.
FIG9A_WRITE_OVERHEAD_PCT: dict[int, float] = {20: 10.0, 40: 12.0, 60: 14.0, 80: 14.0, 100: 15.0}

# Fig 9(b): maximum write-response increase across checkpoint periods 2-6 ts.
FIG9B_WRITE_OVERHEAD_MAX_PCT: float = 14.0

# Fig 9(c): memory-usage increase of logging vs original staging, Case 1.
FIG9C_MEMORY_OVERHEAD_PCT: dict[int, float] = {20: 81.0, 40: 82.0, 60: 84.0, 80: 86.0, 100: 86.0}

# Fig 9(d): memory-usage increase by checkpoint period (Case 2).
FIG9D_MEMORY_OVERHEAD_PCT: dict[int, float] = {2: 76.0, 3: 79.0, 4: 84.0, 5: 89.0, 6: 97.0}

# Fig 9(e): total-time reduction of Un/Hy vs Co with one failure, Case 2,
# by checkpoint period (Case 1 reports 3.06 % / 3.05 %).
FIG9E_IMPROVEMENT_PCT: dict[int, float] = {2: 3.15, 3: 3.28, 4: 3.26, 5: 3.05, 6: 3.18}
FIG9E_CASE1_IMPROVEMENT_PCT: tuple[float, float] = (3.06, 3.05)

# Fig 10: maximum total-time reduction of Un vs Co (up to 3 failures), by
# total core count.
FIG10_MAX_IMPROVEMENT_PCT: dict[int, float] = {
    704: 7.89,
    1408: 10.48,
    2816: 11.5,
    5632: 12.03,
    11264: 13.48,
}

# Table II (for completeness in reports).
TABLE2_SETUP = {
    "total_cores": 352,
    "sim_cores": 256,
    "staging_cores": 32,
    "analytic_cores": 64,
    "volume": (512, 512, 256),
    "data_40ts_gib": 20,
    "coordinated_period": 4,
    "sim_period": 4,
    "analytic_period": 5,
}

TABLE3_SETUP = {
    704: {"sim": 512, "staging": 64, "analytic": 128, "data_gib": 40},
    1408: {"sim": 1024, "staging": 128, "analytic": 256, "data_gib": 80},
    2816: {"sim": 2048, "staging": 256, "analytic": 512, "data_gib": 160},
    5632: {"sim": 4096, "staging": 512, "analytic": 1024, "data_gib": 320},
    11264: {"sim": 8192, "staging": 1024, "analytic": 2048, "data_gib": 640},
}
