"""Reporting: the paper's reported numbers and comparison-table helpers."""

from repro.analysis import paper
from repro.analysis.report import ComparisonRow, banner, comparison_table, format_table

__all__ = ["paper", "ComparisonRow", "banner", "comparison_table", "format_table"]
