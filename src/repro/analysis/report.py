"""Plain-text report helpers: aligned tables and paper-vs-measured rows.

Benchmarks print through these so every figure reproduction has a uniform,
diffable output format that EXPERIMENTS.md can quote directly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["format_table", "ComparisonRow", "comparison_table", "banner"]


def banner(title: str) -> str:
    """A section header line."""
    bar = "=" * max(8, len(title))
    return f"{bar}\n{title}\n{bar}"


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


@dataclass(frozen=True)
class ComparisonRow:
    """One paper-vs-measured data point."""

    label: str
    paper: float | None
    measured: float
    unit: str = "%"

    @property
    def delta(self) -> float | None:
        if self.paper is None:
            return None
        return self.measured - self.paper

    def cells(self) -> list[str]:
        paper = f"{self.paper:+.2f}{self.unit}" if self.paper is not None else "—"
        delta = f"{self.delta:+.2f}" if self.delta is not None else "—"
        return [self.label, paper, f"{self.measured:+.2f}{self.unit}", delta]


def comparison_table(title: str, rows: list[ComparisonRow]) -> str:
    """Render a paper-vs-measured table with a title banner."""
    body = format_table(
        ["point", "paper", "measured", "delta"], [r.cells() for r in rows]
    )
    return f"{banner(title)}\n{body}"
