"""Threaded workflow driver: build, run, and verify a coupled workflow.

Implements the five schemes the paper compares:

* ``ds`` — original data staging, failure-free baseline;
* ``coordinated`` (Co) — global coordinated C/R: synchronized checkpoints of
  every component *and* the staging servers; any failure rolls back all;
* ``uncoordinated`` (Un) — the paper's framework: independent checkpoints,
  data/event logging, per-component rollback with staging replay;
* ``hybrid`` (Hy) — producer uses C/R, consumer uses process replication;
* ``individual`` (In) — independent C/R *without* logging: fastest possible
  recovery but consistency-unsafe (the Fig. 2 failure mode).
"""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import dataclass, field

from repro.core.consistency import ObservationLog, verify_read_stability
from repro.core.interface import WorkflowStaging
from repro.errors import ConfigError, ConsistencyError, SimulationError
from repro.obs import registry as _obs
from repro.obs import trace as _trace
from repro.geometry.domain import Domain
from repro.runtime.app import (
    AppComponent,
    ComponentSpec,
    ComponentThread,
    ConsumerComponent,
    ProducerComponent,
)
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.failures import FailureInjector, FailurePlan
from repro.runtime.staging_service import SynchronizedStaging
from repro.runtime.ulfm import FailureDetector, SparePool
from repro.staging.client import StagingGroup
from repro.staging.cow import snapshot_cost_bytes
from repro.staging.server import StagingServer

__all__ = [
    "SCHEMES",
    "CoordinatedProtocol",
    "WorkflowResult",
    "ThreadedWorkflow",
    "run_with_reference",
]

SCHEMES = ("ds", "coordinated", "uncoordinated", "hybrid", "individual")


class CoordinatedProtocol:
    """Global coordinated checkpoint/rollback rendezvous.

    All components arrive at every coordinated checkpoint; the last arrival
    atomically commits everyone's state snapshot and captures the staging
    servers. A failure anywhere bumps the rollback generation: every
    component (including ones already finished) converges on the rollback
    rendezvous, restores its committed checkpoint, and the last arrival
    restores the staging snapshot before anyone re-executes.
    """

    def __init__(
        self,
        staging: SynchronizedStaging,
        chk_store: CheckpointStore,
        parties: int,
        timeout: float = 60.0,
    ) -> None:
        if parties <= 0:
            raise ConfigError(f"protocol needs >= 1 party, got {parties}")
        self.staging = staging
        self.chk_store = chk_store
        self.parties = parties
        self.timeout = timeout
        self._cond = threading.Condition()
        self._generation = 0
        self._comp_generation: dict[str, int] = {}
        self._rollback_arrived: set[str] = set()
        self._rollbacks_completed = 0
        self._ckpt_epoch = 0
        self._pending_saves: dict[str, tuple[int, bytes]] = {}
        self._staging_snapshot: dict | None = None
        self._snapshot_step: int | None = None
        self._done: set[str] = set()
        self._aborted = False
        self.global_rollbacks = 0

    # ----------------------------------------------------------- predicates

    def rollback_pending(self, comp: AppComponent) -> bool:
        """True when ``comp`` has not yet performed the latest rollback."""
        with self._cond:
            return self._comp_generation.get(comp.name, 0) < self._generation

    def _check_abort(self) -> None:
        if self._aborted:
            raise SimulationError("coordinated protocol aborted by a peer error")

    def abort(self) -> None:
        """Release every waiter after an unrecoverable component error."""
        with self._cond:
            self._aborted = True
            self._cond.notify_all()

    # ------------------------------------------------------------- failure

    def request_rollback(self, comp: AppComponent, failure) -> None:
        """Entry point for the component that observed the failure."""
        comp.detector.report(comp.name, failure.rank, failure.at_step)
        comp._recover_processes(failure.rank)
        with self._cond:
            # Only open a new generation if this component is current —
            # otherwise it is joining a rollback already in flight.
            if self._comp_generation.get(comp.name, 0) >= self._generation:
                self._generation += 1
                self.global_rollbacks += 1
            self._cond.notify_all()
        self.perform_rollback(comp)

    def perform_rollback(self, comp: AppComponent) -> None:
        """Restore own state, rendezvous, last arrival restores staging."""
        chk = self.chk_store.latest(comp.name)
        if chk is None:
            comp.state = comp.initial_state()
        else:
            comp.state = chk.load_state()
        comp.stats.rollbacks += 1
        deadline = time.monotonic() + self.timeout
        with self._cond:
            gen = self._generation
            self._done.discard(comp.name)  # finished components rejoin
            self._rollback_arrived.add(comp.name)
            if len(self._rollback_arrived) == self.parties:
                if self._staging_snapshot is not None:
                    self.staging.restore(self._staging_snapshot)
                else:
                    # Never checkpointed: staging rewinds to empty.
                    self.staging.restore(
                        {
                            "servers": [
                                StagingServer.empty_snapshot()
                                for _ in self.staging.group.servers
                            ],
                            "frontier": {},
                        }
                    )
                self._pending_saves.clear()
                self._rollback_arrived.clear()
                self._rollbacks_completed = gen
                for name in list(self._comp_generation):
                    self._comp_generation[name] = gen
                self._comp_generation[comp.name] = gen
                self._cond.notify_all()
            else:
                while self._rollbacks_completed < gen:
                    self._check_abort()
                    if not self._cond.wait(timeout=1.0) and time.monotonic() > deadline:
                        raise SimulationError(
                            f"{comp.name!r}: rollback rendezvous timed out "
                            f"({len(self._rollback_arrived)}/{self.parties} arrived)"
                        )
                self._comp_generation[comp.name] = self._rollbacks_completed

    # ----------------------------------------------------------- checkpoint

    def coordinated_checkpoint(self, comp: AppComponent) -> None:
        """Barrier-synchronized global snapshot (paper §II: barriers around
        process checkpoints avoid in-flight messages entirely)."""
        from repro.runtime.app import RollbackSignal  # local import (cycle)

        payload = pickle.dumps(comp.state, protocol=pickle.HIGHEST_PROTOCOL)
        deadline = time.monotonic() + self.timeout
        with self._cond:
            # Compare against this component's own completed generation, not
            # the current global one: a rollback opened since the last
            # step-start poll must pre-empt this checkpoint, or the opener
            # waits at the rollback rendezvous while we wait here.
            gen = self._comp_generation.get(comp.name, 0)
            if self._generation > gen:
                raise RollbackSignal()
            self._pending_saves[comp.name] = (comp.state["step"] - 1, payload)
            waiting_for = len(self._pending_saves) + len(self._done)
            if waiting_for == self.parties:
                # Last arrival commits everyone's save atomically.
                for name, (step, data) in self._pending_saves.items():
                    self.chk_store.save(name, step, pickle.loads(data))
                self._pending_saves.clear()
                self._staging_snapshot = self.staging.snapshot()
                self.chk_store.record_external(
                    "staging", snapshot_cost_bytes(self._staging_snapshot)
                )
                self._snapshot_step = comp.state["step"] - 1
                self._ckpt_epoch += 1
                comp.stats.checkpoints_taken += 1
                self._cond.notify_all()
                return
            target = self._ckpt_epoch + 1
            while self._ckpt_epoch < target:
                self._check_abort()
                if self._generation > gen:
                    # A rollback pre-empted this checkpoint round.
                    self._pending_saves.pop(comp.name, None)
                    raise RollbackSignal()
                if not self._cond.wait(timeout=1.0) and time.monotonic() > deadline:
                    raise SimulationError(
                        f"{comp.name!r}: checkpoint rendezvous timed out"
                    )
            comp.stats.checkpoints_taken += 1

    # ------------------------------------------------------------- teardown

    def wait_all_done(self, comp: AppComponent) -> None:
        """Park a finished component until all finish (it may yet roll back)."""
        from repro.runtime.app import RollbackSignal  # local import (cycle)

        deadline = time.monotonic() + self.timeout
        with self._cond:
            gen = self._comp_generation.get(comp.name, 0)
            if self._generation > gen:
                raise RollbackSignal()
            self._done.add(comp.name)
            # A finished party satisfies any checkpoint round in progress.
            if (
                self._pending_saves
                and len(self._pending_saves) + len(self._done) == self.parties
            ):
                for name, (step, data) in self._pending_saves.items():
                    self.chk_store.save(name, step, pickle.loads(data))
                self._pending_saves.clear()
                self._staging_snapshot = self.staging.snapshot()
                self.chk_store.record_external(
                    "staging", snapshot_cost_bytes(self._staging_snapshot)
                )
                self._ckpt_epoch += 1
            self._cond.notify_all()
            while len(self._done) < self.parties:
                self._check_abort()
                if self._generation > gen:
                    self._done.discard(comp.name)
                    raise RollbackSignal()
                if not self._cond.wait(timeout=1.0) and time.monotonic() > deadline:
                    raise SimulationError(f"{comp.name!r}: completion wait timed out")


@dataclass
class WorkflowResult:
    """Everything a run produced, for verification and metrics."""

    scheme: str
    observations: ObservationLog
    component_stats: dict[str, object]
    final_states: dict[str, dict]
    memory_bytes: int
    logging_overhead: float
    failures_injected: int
    checkpoint_bytes: int
    wall_seconds: float
    gc_reports: list = field(default_factory=list)
    # Fragments still queued for eviction at shutdown (after the final GC
    # pass). Non-zero means a transient server fault was never drained.
    pending_evictions: int = 0

    def verify_against(self, reference: "WorkflowResult") -> None:
        """Raise ConsistencyError unless this run is read-stable vs reference."""
        verify_read_stability(reference.observations, self.observations)


class ThreadedWorkflow:
    """Build and execute one workflow under a chosen fault-tolerance scheme."""

    def __init__(
        self,
        specs: list[ComponentSpec],
        scheme: str,
        num_servers: int = 4,
        failures: list[FailurePlan] | None = None,
        spare_processes: int = 16,
        coordinated_period: int | None = None,
        join_timeout: float = 120.0,
        background_gc: bool = False,
        gc_high_watermark: int | None = None,
        server_faults: list | None = None,
        parallel: bool | None = None,
        protection=None,
    ) -> None:
        if scheme not in SCHEMES:
            raise ConfigError(f"unknown scheme {scheme!r}; choose from {SCHEMES}")
        if not specs:
            raise ConfigError("workflow needs at least one component")
        domains = {spec.domain.shape for spec in specs}
        if len(domains) != 1:
            raise ConfigError(f"components disagree on the domain: {domains}")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate component names: {names}")
        self.specs = specs
        self.scheme = scheme
        self.num_servers = num_servers
        self.failures = failures or []
        self.spare_processes = spare_processes
        self.coordinated_period = coordinated_period
        self.join_timeout = join_timeout
        # Concurrent watermark-driven GC instead of synchronous auto-GC on
        # every workflow_check (only meaningful for logging schemes).
        self.background_gc = background_gc
        self.gc_high_watermark = gc_high_watermark
        # Staging-server fault plans (FaultPlan list) injected into the
        # group before the run — the GC/fault soak drives eviction through
        # crashing/slow/flaky servers this way.
        self.server_faults = server_faults or []
        # Staging parallelism override for group and service together
        # (None = each layer's own default) and optional ProtectionConfig —
        # the recovery soak runs protected workflows with servers crashing
        # mid-flight and needs both knobs from the outside.
        self.parallel = parallel
        self.protection = protection
        if scheme in ("ds", "coordinated", "individual"):
            self.enable_logging = False
        else:
            self.enable_logging = True

    # ----------------------------------------------------------------- run

    def run(self) -> WorkflowResult:
        domain = self.specs[0].domain
        group = StagingGroup.create(
            domain,
            num_servers=self.num_servers,
            parallel=self.parallel,
            protection=self.protection,
        )
        if self.server_faults:
            from repro.faults.proxy import inject_faults  # local import (optional path)

            inject_faults(group, list(self.server_faults))
        staging = SynchronizedStaging(
            WorkflowStaging(group, enable_logging=self.enable_logging),
            **({} if self.parallel is None else {"parallel": self.parallel}),
        )
        if self.background_gc and self.enable_logging:
            # Retention trimming leaves the checkpoint path: checks only
            # queue candidates; the collector evicts concurrently, one
            # bounded batch per lock acquisition.
            high = self.gc_high_watermark
            if high is None:
                high = 1 << 20
            staging.start_background_gc(high_watermark=high)
        for spec in self.specs:
            if spec.kind == "consumer":
                for var in spec.variables:
                    staging.declare_coupling(var, spec.name)
        chk_store = CheckpointStore()
        observations = ObservationLog()
        injector = FailureInjector(list(self.failures))
        detector = FailureDetector()
        spares = SparePool(self.spare_processes, allow_spawn=True)

        protocol = None
        if self.scheme == "coordinated":
            protocol = CoordinatedProtocol(
                staging, chk_store, parties=len(self.specs), timeout=self.join_timeout / 2
            )

        components: list[AppComponent] = []
        for spec in self.specs:
            spec = self._apply_scheme(spec)
            cls = ProducerComponent if spec.kind == "producer" else ConsumerComponent
            mode = self._recovery_mode(spec)
            comp = cls(
                spec=spec,
                staging=staging,
                chk_store=chk_store,
                observations=observations,
                injector=injector,
                detector=detector,
                spares=spares,
                recovery_mode=mode,
                coordinated_protocol=protocol,
            )
            components.append(comp)

        threads = [ComponentThread(c) for c in components]
        start = time.perf_counter()
        with _trace.span("runtime.workflow.run", scheme=self.scheme):
            for t in threads:
                t.start()
            deadline = time.monotonic() + self.join_timeout
            for t in threads:
                t.join(timeout=max(0.1, deadline - time.monotonic()))
        wall = time.perf_counter() - start
        stuck = [t.component.name for t in threads if t.alive]
        staging.shutdown()
        if protocol is not None:
            protocol.abort()
        if stuck:
            raise SimulationError(f"workflow deadlocked; stuck components: {stuck}")
        errors = {c.name: c.error for c in components if c.error is not None}
        if errors:
            name, err = next(iter(errors.items()))
            raise SimulationError(f"component {name!r} failed: {err!r}") from err

        _obs.counter("workflow.runs").inc()
        _obs.histogram("workflow.run.wall_seconds").record(wall)

        ws = staging.staging
        return WorkflowResult(
            scheme=self.scheme,
            observations=observations,
            component_stats={c.name: c.stats for c in components},
            final_states={c.name: c.state for c in components},
            memory_bytes=ws.memory_bytes(),
            logging_overhead=ws.logging_overhead() if self.enable_logging else 0.0,
            failures_injected=len(injector.fired),
            checkpoint_bytes=chk_store.bytes_written,
            wall_seconds=wall,
            gc_reports=list(ws.gc_reports),
            pending_evictions=ws.log.pending_eviction_count(),
        )

    # ------------------------------------------------------------- plumbing

    def _apply_scheme(self, spec: ComponentSpec) -> ComponentSpec:
        import dataclasses

        if self.scheme == "coordinated":
            period = self.coordinated_period or spec.checkpoint_period
            return dataclasses.replace(
                spec,
                checkpoint_period=period,
                replicated=False,
                # Coordinated snapshots are global; tiering is meaningless.
                pfs_checkpoint_interval=1,
            )
        if self.scheme == "hybrid" and spec.kind == "consumer":
            return dataclasses.replace(
                spec,
                replicated=True,
                replica_budget=max(1, spec.replica_budget),
            )
        return spec

    def _recovery_mode(self, spec: ComponentSpec) -> str:
        if self.scheme == "coordinated":
            return "global"
        if spec.replicated:
            return "failover"
        return "local"


def run_with_reference(
    specs: list[ComponentSpec],
    scheme: str,
    failures: list[FailurePlan] | None = None,
    num_servers: int = 4,
    coordinated_period: int | None = None,
    expect_consistent: bool = True,
) -> tuple[WorkflowResult, WorkflowResult]:
    """Run a failure-free ``ds`` reference, then the target scheme, and verify.

    Returns (reference, run). With ``expect_consistent=False`` (the ``In``
    baseline) a ConsistencyError is swallowed and reported via the returned
    run's ``consistent`` attribute instead.
    """
    reference = ThreadedWorkflow(specs, "ds", num_servers=num_servers).run()
    run = ThreadedWorkflow(
        specs,
        scheme,
        num_servers=num_servers,
        failures=failures,
        coordinated_period=coordinated_period,
    ).run()
    try:
        run.verify_against(reference)
        run.consistent = True  # type: ignore[attr-defined]
    except ConsistencyError:
        run.consistent = False  # type: ignore[attr-defined]
        if expect_consistent:
            raise
    return reference, run
