"""ULFM-style process-group fault handling (paper §III-C, Figure 7(b)).

Implements the recovery sequence the paper builds on the proposed MPI
User-Level Failure Mitigation extension:

1. *failure detection* — an operation on a communicator with a dead rank
   raises :class:`~repro.errors.CommunicatorRevoked`;
2. *process recovery* — ``shrink()`` removes dead ranks, and a
   :class:`SparePool` refills the group to its original size (the paper's
   "equal number of spare processes join the old communicator"), or fresh
   ranks are spawned when the pool is exhausted and spawning is allowed;
3. the caller then performs *data recovery* (restore from checkpoint) and
   *staging client recovery* (``workflow_restart``), which live in
   :mod:`repro.runtime.app`.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass

from repro.errors import CommunicatorRevoked, ConfigError

__all__ = ["RankState", "Communicator", "SparePool", "FailureDetector"]


@dataclass(frozen=True)
class RankState:
    """One logical MPI rank: global process id plus liveness."""

    rank: int
    proc_id: int
    alive: bool = True


class SparePool:
    """A pool of pre-allocated spare processes shared by a workflow.

    Thread-safe: concurrent recoveries of different components draw from the
    same pool, as they would on a real allocation.
    """

    def __init__(self, size: int, allow_spawn: bool = False) -> None:
        if size < 0:
            raise ConfigError(f"spare pool size must be >= 0, got {size}")
        self._lock = threading.Lock()
        self._available = size
        self.allow_spawn = allow_spawn
        self.spawned = 0
        self._proc_ids = itertools.count(10_000_000)

    @property
    def available(self) -> int:
        """Spare processes currently idle in the pool."""
        with self._lock:
            return self._available

    def acquire(self, n: int) -> list[int]:
        """Take ``n`` spare process ids, spawning beyond the pool if allowed."""
        if n < 0:
            raise ConfigError(f"cannot acquire {n} spares")
        with self._lock:
            from_pool = min(n, self._available)
            self._available -= from_pool
            short = n - from_pool
            if short > 0:
                if not self.allow_spawn:
                    # Return what we took before failing.
                    self._available += from_pool
                    raise ConfigError(
                        f"spare pool exhausted: need {n}, have {from_pool}, "
                        f"spawning disabled"
                    )
                self.spawned += short
            return [next(self._proc_ids) for _ in range(n)]


class Communicator:
    """A failable process group with ULFM shrink/repair semantics."""

    def __init__(self, name: str, nranks: int, _proc_base: int = 0) -> None:
        if nranks <= 0:
            raise ConfigError(f"communicator needs >= 1 rank, got {nranks}")
        self.name = name
        self._ranks = [RankState(rank=i, proc_id=_proc_base + i) for i in range(nranks)]
        self._revoked = False
        self._epoch = 0

    # ---------------------------------------------------------------- state

    @property
    def size(self) -> int:
        return len(self._ranks)

    @property
    def epoch(self) -> int:
        """Incremented every repair; stale handles compare epochs."""
        return self._epoch

    @property
    def revoked(self) -> bool:
        return self._revoked

    def alive_ranks(self) -> list[int]:
        return [r.rank for r in self._ranks if r.alive]

    def failed_ranks(self) -> list[int]:
        return [r.rank for r in self._ranks if not r.alive]

    # -------------------------------------------------------------- failure

    def fail(self, rank: int) -> None:
        """Mark ``rank`` dead and revoke the communicator."""
        if not (0 <= rank < self.size):
            raise ConfigError(f"rank {rank} out of range for size {self.size}")
        state = self._ranks[rank]
        if state.alive:
            self._ranks[rank] = RankState(rank=state.rank, proc_id=state.proc_id, alive=False)
        self._revoked = True

    def check(self) -> None:
        """Raise when the communicator is unusable (ULFM error semantics)."""
        if self._revoked:
            raise CommunicatorRevoked(
                f"communicator {self.name!r} revoked; failed ranks: {self.failed_ranks()}"
            )

    def barrier(self) -> None:
        """A collective that fails on revoked communicators."""
        self.check()

    # --------------------------------------------------------------- repair

    def shrink(self) -> "Communicator":
        """New communicator containing only the surviving processes."""
        survivors = [r for r in self._ranks if r.alive]
        if not survivors:
            raise CommunicatorRevoked(f"communicator {self.name!r} has no survivors")
        new = Communicator(self.name, len(survivors))
        new._ranks = [
            RankState(rank=i, proc_id=r.proc_id) for i, r in enumerate(survivors)
        ]
        new._epoch = self._epoch + 1
        return new

    def repair(self, spares: SparePool) -> "Communicator":
        """Shrink, then refill to the original size from the spare pool.

        This is the paper's full recovery: dead ranks are replaced so the
        application resumes at its original scale, with rank ids preserved
        for the survivors' data decomposition.
        """
        n_dead = len(self.failed_ranks())
        if n_dead == 0 and not self._revoked:
            return self
        new_procs = spares.acquire(n_dead)
        new = Communicator(self.name, self.size)
        fresh = iter(new_procs)
        new._ranks = [
            r if r.alive else RankState(rank=r.rank, proc_id=next(fresh))
            for r in self._ranks
        ]
        new._epoch = self._epoch + 1
        return new


class FailureDetector:
    """Aggregates rank failures observed across a workflow.

    Components report failures here; the workflow driver queries it to decide
    which recovery protocol to trigger (local for Un/Hy, global for Co).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._failures: list[tuple[str, int, int]] = []  # (component, rank, step)

    def report(self, component: str, rank: int, step: int) -> None:
        with self._lock:
            self._failures.append((component, rank, step))

    def failures(self) -> list[tuple[str, int, int]]:
        with self._lock:
            return list(self._failures)

    def count(self, component: str | None = None) -> int:
        with self._lock:
            if component is None:
                return len(self._failures)
            return sum(1 for c, _r, _s in self._failures if c == component)
