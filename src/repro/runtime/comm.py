"""Inter-component synchronization primitives for the threaded runtime.

The coordinated checkpoint baseline needs exactly what the paper describes:
"a couple of synchronizing MPI barriers ... before and after taking the
process checkpoints". :class:`PhaseBarrier` provides a reusable barrier with
a leader action (the thread-release hook that restores staging snapshots),
and :class:`Mailbox` provides point-to-point control messages.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["PhaseBarrier", "Mailbox", "BarrierBroken"]


class BarrierBroken(SimulationError):
    """The barrier was aborted (a participant died or timed out)."""


class PhaseBarrier:
    """Reusable N-party barrier with an optional once-per-cycle action.

    A thin wrapper over :class:`threading.Barrier` that converts breakage
    into the library's error type and exposes abort for teardown paths.
    """

    def __init__(self, parties: int, action: Callable[[], None] | None = None) -> None:
        if parties <= 0:
            raise SimulationError(f"barrier needs >= 1 party, got {parties}")
        self.parties = parties
        self._barrier = threading.Barrier(parties, action=action)

    def wait(self, timeout: float | None = 30.0) -> int:
        """Block until all parties arrive; returns this thread's arrival index."""
        try:
            return self._barrier.wait(timeout=timeout)
        except threading.BrokenBarrierError as err:
            raise BarrierBroken(f"barrier of {self.parties} broken") from err

    def abort(self) -> None:
        """Break the barrier, releasing waiters with BarrierBroken."""
        self._barrier.abort()

    def reset(self) -> None:
        """Restore an aborted barrier for reuse."""
        self._barrier.reset()


class Mailbox:
    """An unbounded point-to-point message queue between components."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._queue: queue.Queue[Any] = queue.Queue()

    def send(self, message: Any) -> None:
        """Enqueue a message (never blocks)."""
        self._queue.put(message)

    def recv(self, timeout: float | None = None) -> Any:
        """Dequeue the next message, waiting up to ``timeout`` seconds."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty as err:
            raise TimeoutError(f"mailbox {self.name!r}: no message within {timeout}s") from err

    def try_recv(self) -> Any | None:
        """Dequeue without waiting; None when empty."""
        try:
            return self._queue.get_nowait()
        except queue.Empty:
            return None

    def __len__(self) -> int:
        return self._queue.qsize()
