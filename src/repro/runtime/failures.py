"""Failure injection for the threaded runtime.

Failures are fail-stop process crashes injected at step boundaries, either
from an explicit schedule (deterministic tests) or drawn from an exponential
MTBF model mapped onto steps (the paper injects "a failure randomly ... into
the application process within 40 time steps, which corresponds to
MTBF = 10 min").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.util.rng import RngRegistry

__all__ = ["FailurePlan", "FailureInjector", "mtbf_failure_steps"]


@dataclass(frozen=True)
class FailurePlan:
    """One planned crash: which component, step, rank, and failure kind.

    ``kind="process"`` is a fail-stop process failure; ``kind="node"``
    additionally destroys the component's node-local checkpoints
    (multi-level checkpointing).
    """

    component: str
    step: int
    rank: int = 0
    kind: str = "process"

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ConfigError(f"failure step must be >= 0, got {self.step}")
        if self.rank < 0:
            raise ConfigError(f"failure rank must be >= 0, got {self.rank}")
        if self.kind not in ("process", "node"):
            raise ConfigError(f"failure kind must be process|node, got {self.kind!r}")


def mtbf_failure_steps(
    rng: RngRegistry,
    stream: str,
    total_steps: int,
    step_seconds: float,
    mtbf_seconds: float,
    max_failures: int | None = None,
) -> list[int]:
    """Draw failure steps from an exponential inter-arrival process.

    Arrival times with mean ``mtbf_seconds`` are mapped to the step whose
    execution window contains them; arrivals past the run end are dropped.
    """
    if total_steps <= 0:
        raise ConfigError(f"total_steps must be positive, got {total_steps}")
    if step_seconds <= 0 or mtbf_seconds <= 0:
        raise ConfigError("step_seconds and mtbf_seconds must be positive")
    horizon = total_steps * step_seconds
    steps: list[int] = []
    t = 0.0
    while True:
        t += rng.exponential(stream, mtbf_seconds)
        if t >= horizon:
            break
        steps.append(int(t / step_seconds))
        if max_failures is not None and len(steps) >= max_failures:
            break
    return steps


class FailureInjector:
    """Thread-safe one-shot failure delivery.

    Each plan fires exactly once: the first time the target component asks
    "should I fail?" at (or after) the planned step. Firing after the planned
    step covers components that skipped the exact step due to rollback
    re-execution landing elsewhere.
    """

    def __init__(self, plans: list[FailurePlan] | None = None) -> None:
        self._lock = threading.Lock()
        self._pending: list[FailurePlan] = sorted(
            plans or [], key=lambda p: (p.step, p.component)
        )
        self.fired: list[FailurePlan] = []

    def schedule(self, plan: FailurePlan) -> None:
        """Add one more planned failure."""
        with self._lock:
            self._pending.append(plan)
            self._pending.sort(key=lambda p: (p.step, p.component))

    def poll(self, component: str, step: int) -> FailurePlan | None:
        """Fire and return the next due plan for ``component``, if any.

        A plan is due when ``step >= plan.step``. Re-executed steps do not
        re-fire a plan that already fired (fail-stop failures are one-shot).
        """
        with self._lock:
            for i, plan in enumerate(self._pending):
                if plan.component == component and step >= plan.step:
                    self.fired.append(plan)
                    del self._pending[i]
                    return plan
            return None

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def pending_for(self, component: str) -> list[FailurePlan]:
        """Unfired plans targeting ``component``."""
        with self._lock:
            return [p for p in self._pending if p.component == component]
