"""Application components for the threaded runtime.

A component is a stepped SPMD application (the paper's "simulation" or
"analytic") whose coupling traffic flows through staging. Each owns a ULFM
communicator of logical ranks, checkpoints its state on its own period, and —
depending on the workflow's fault-tolerance scheme — recovers from injected
fail-stop failures by rollback + staging replay, by global rollback, or by
replica failover.

Components are deterministic functions of (name, step): re-execution after a
rollback reproduces byte-identical puts, which is the property the paper's
replay mechanism assumes of the application layer.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core.consistency import ObservationLog
from repro.obs import registry as _obs
from repro.descriptors.odsc import ObjectDescriptor
from repro.errors import ConfigError, ProcessFailure
from repro.geometry.domain import Domain
from repro.runtime.checkpoint import CheckpointStore, CheckpointTier
from repro.runtime.failures import FailureInjector
from repro.runtime.staging_service import SynchronizedStaging
from repro.runtime.ulfm import Communicator, FailureDetector, SparePool

_RECOVERY_SECONDS = _obs.histogram("workflow.recovery.seconds")
_RECOVERIES = _obs.counter("workflow.recoveries")
_CHECKPOINT_SECONDS = _obs.histogram("workflow.checkpoint.seconds")

__all__ = [
    "RollbackSignal",
    "ComponentSpec",
    "AppComponent",
    "ProducerComponent",
    "ConsumerComponent",
    "synthetic_field",
]


class RollbackSignal(Exception):
    """Control-flow signal: a *global* rollback was requested (Co scheme)."""


def synthetic_field(name: str, step: int, shape: tuple[int, ...]) -> np.ndarray:
    """Deterministic, step-dependent field data.

    A cheap smooth function with enough structure that wrong-version reads
    produce detectably different bytes; deterministic so rollback
    re-execution reproduces identical payloads.
    """
    base = (hash_stable(name) % 97) / 97.0
    idx = np.indices(shape, dtype=np.float64)
    phase = idx.sum(axis=0) / max(sum(shape), 1)
    return np.sin(2.0 * np.pi * (phase + base) * (step + 1)) + step


def hash_stable(text: str) -> int:
    """Process-stable string hash (``hash()`` is salted; this is not)."""
    h = 2166136261
    for ch in text.encode():
        h = (h ^ ch) * 16777619 % (1 << 32)
    return h


@dataclass
class ComponentSpec:
    """Static description of one workflow component."""

    name: str
    kind: str  # "producer" | "consumer"
    nranks: int
    num_steps: int
    checkpoint_period: int
    variables: list[str]
    domain: Domain
    subset_fraction: float = 1.0
    replicated: bool = False
    replica_budget: int = 1  # failures a replicated component can absorb
    # Multi-level checkpointing: every k-th checkpoint goes to the durable
    # PFS tier, the rest to node-local storage. 1 = all durable (classic).
    pfs_checkpoint_interval: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("producer", "consumer"):
            raise ConfigError(f"unknown component kind {self.kind!r}")
        if self.num_steps <= 0:
            raise ConfigError("num_steps must be positive")
        if self.checkpoint_period <= 0:
            raise ConfigError("checkpoint_period must be positive")
        if not (0.0 < self.subset_fraction <= 1.0):
            raise ConfigError(f"subset_fraction out of (0,1]: {self.subset_fraction}")
        if not self.variables:
            raise ConfigError("component exchanges at least one variable")
        if self.pfs_checkpoint_interval < 1:
            raise ConfigError("pfs_checkpoint_interval must be >= 1")


@dataclass
class ComponentStats:
    """Per-component counters collected during a run."""

    steps_executed: int = 0
    steps_reexecuted: int = 0
    checkpoints_taken: int = 0
    rollbacks: int = 0
    failovers: int = 0
    puts: int = 0
    suppressed_puts: int = 0
    gets: int = 0
    replayed_gets: int = 0


class AppComponent:
    """Base class: the stepped run loop with failure handling.

    Subclasses implement :meth:`execute_step`. The run loop supports three
    recovery modes, chosen by the workflow driver:

    * ``local`` — uncoordinated/individual: restore own checkpoint, call
      ``workflow_restart``, re-execute (staging replays if logging is on);
    * ``global`` — coordinated: any failure triggers every component's
      rollback via the shared protocol object;
    * ``failover`` — process replication: absorb the failure and continue.
    """

    def __init__(
        self,
        spec: ComponentSpec,
        staging: SynchronizedStaging,
        chk_store: CheckpointStore,
        observations: ObservationLog,
        injector: FailureInjector,
        detector: FailureDetector,
        spares: SparePool,
        recovery_mode: str = "local",
        coordinated_protocol: "object | None" = None,
        chk_tier: CheckpointTier = CheckpointTier.PFS,
    ) -> None:
        if recovery_mode not in ("local", "global", "failover"):
            raise ConfigError(f"unknown recovery mode {recovery_mode!r}")
        self.spec = spec
        self.staging = staging
        self.chk_store = chk_store
        self.observations = observations
        self.injector = injector
        self.detector = detector
        self.spares = spares
        self.recovery_mode = recovery_mode
        self.protocol = coordinated_protocol
        self.chk_tier = chk_tier

        self.comm = Communicator(spec.name, spec.nranks)
        self.state: dict = self.initial_state()
        self.stats = ComponentStats()
        self.error: BaseException | None = None
        self._seen_steps: set[int] = set()
        self._replicas_left = spec.replica_budget if spec.replicated else 0
        # Per-component step latency (cardinality is bounded by the spec
        # list, so a name-tagged histogram per component is safe).
        self._step_hist = _obs.histogram(f"workflow.step.seconds.{spec.name}")
        staging.register(spec.name)

    # --------------------------------------------------------------- state

    def initial_state(self) -> dict:
        """The state a never-checkpointed component restarts from."""
        return {"step": 0, "results": []}

    @property
    def name(self) -> str:
        return self.spec.name

    # ------------------------------------------------------------ stepping

    def execute_step(self, step: int) -> None:
        """One coupling step's staged traffic; implemented by subclasses."""
        raise NotImplementedError

    def _checkpoint_due(self, completed_step: int) -> bool:
        return (completed_step + 1) % self.spec.checkpoint_period == 0

    def take_checkpoint(self, completed_step: int) -> None:
        """Save state to reliable storage, then notify staging (Fig. 7a).

        Under multi-level checkpointing (``pfs_checkpoint_interval > 1``)
        only every k-th checkpoint goes to the durable PFS tier; the rest
        are node-local and are reported to staging as non-durable so the
        log retains enough history for a node-failure fallback.
        """
        t0 = perf_counter()
        interval = self.spec.pfs_checkpoint_interval
        durable = (self.stats.checkpoints_taken % interval) == interval - 1 or interval == 1
        tier = self.chk_tier if durable else CheckpointTier.NODE_LOCAL
        self.chk_store.save(self.name, completed_step, self.state, tier=tier)
        self.staging.workflow_check(self.name, completed_step, durable=durable)
        self.stats.checkpoints_taken += 1
        _CHECKPOINT_SECONDS.record(perf_counter() - t0)

    # ------------------------------------------------------------- failures

    def _maybe_fail(self, step: int) -> None:
        plan = self.injector.poll(self.name, step)
        if plan is None:
            return
        if self.recovery_mode == "failover" and self._replicas_left > 0:
            # Process replication: the replica takes over; no rollback and
            # no staging recovery phase (paper §III-B).
            self._replicas_left -= 1
            self.stats.failovers += 1
            self.detector.report(self.name, plan.rank, step)
            return
        raise ProcessFailure(
            rank=plan.rank, component=self.name, at_step=step, kind=plan.kind
        )

    def _recover_processes(self, failed_rank: int) -> None:
        """ULFM process recovery: revoke, repair from the spare pool."""
        self.comm.fail(failed_rank)
        self.comm = self.comm.repair(self.spares)

    def _apply_checkpoint(self, chk) -> int:
        """Install a loaded checkpoint's state (or the initial state)."""
        if chk is None:
            self.state = self.initial_state()
            return 0
        self.state = chk.load_state()
        return self.state["step"]

    def _restore_state(self) -> int:
        """Data recovery: reload the latest checkpoint (or initial state)."""
        return self._apply_checkpoint(self.chk_store.latest(self.name))

    def handle_local_failure(self, failure: ProcessFailure) -> None:
        """The paper's four recovery steps for uncoordinated/individual C/R.

        A *node* failure first destroys the node-local checkpoint tier, so
        data recovery falls back to the last durable (PFS) checkpoint and
        staging replays from that deeper point.

        When the staging service exposes a recovery executor (its parallel
        mode), component state restore overlaps the staging-side restart:
        every save path records the completed step alongside the pickled
        state (``Checkpoint.step``), so ``workflow_restart`` — which only
        needs the restored step number — runs while the checkpoint payload
        is still unpickling on the pool. Serial mode keeps the seed's
        restore-then-restart sequence.
        """
        self.detector.report(self.name, failure.rank, failure.at_step)
        self._recover_processes(failure.rank)
        node_failure = failure.kind == "node"
        if node_failure:
            self.chk_store.drop_tier(self.name, CheckpointTier.NODE_LOCAL)
        pool = getattr(self.staging, "recovery_executor", None)
        if pool is None:
            restored_step = self._restore_state()
            self.staging.workflow_restart(
                self.name, restored_step, durable_only=node_failure
            )
        else:
            chk = self.chk_store.latest(self.name)
            restored_step = chk.step + 1 if chk is not None else 0
            restore = pool.submit(self._apply_checkpoint, chk)
            try:
                self.staging.workflow_restart(
                    self.name, restored_step, durable_only=node_failure
                )
            finally:
                restore.result()
        self.stats.rollbacks += 1

    # ------------------------------------------------------------- run loop

    def run(self) -> None:
        """Execute all steps, recovering from injected failures."""
        from repro.runtime.staging_service import WaitInterrupted

        try:
            while True:
                if self.state["step"] >= self.spec.num_steps:
                    # A finished consumer must not throttle producers.
                    self.staging.retire_consumer(self.name)
                    if self.protocol is None:
                        break
                    try:
                        # Finished components park until all finish: a peer's
                        # failure can still force a global rollback of this
                        # component's already-completed steps.
                        self.protocol.wait_all_done(self)
                        break
                    except RollbackSignal:
                        self.protocol.perform_rollback(self)
                        continue
                step = self.state["step"]
                self.staging.rejoin_consumer(self.name)
                try:
                    self._poll_global_rollback()
                    self._maybe_fail(step)
                    self.observations.begin_step(self.name, step)
                    t_step = perf_counter()
                    self.execute_step(step)
                    self._step_hist.record(perf_counter() - t_step)
                    self.stats.steps_executed += 1
                    if step in self._seen_steps:
                        self.stats.steps_reexecuted += 1
                    self._seen_steps.add(step)
                    self.state["step"] = step + 1
                    if self._checkpoint_due(step):
                        self._checkpoint()
                except ProcessFailure as failure:
                    t_rec = perf_counter()
                    if self.recovery_mode == "global":
                        assert self.protocol is not None
                        self.protocol.request_rollback(self, failure)
                    else:
                        self.handle_local_failure(failure)
                    _RECOVERIES.inc()
                    _RECOVERY_SECONDS.record(perf_counter() - t_rec)
                except RollbackSignal:
                    assert self.protocol is not None
                    t_rec = perf_counter()
                    self.protocol.perform_rollback(self)
                    _RECOVERIES.inc()
                    _RECOVERY_SECONDS.record(perf_counter() - t_rec)
                except WaitInterrupted:
                    if self.protocol is None:
                        raise  # shutdown or stuck wait; surface to the runner
                    t_rec = perf_counter()
                    self.protocol.perform_rollback(self)
                    _RECOVERIES.inc()
                    _RECOVERY_SECONDS.record(perf_counter() - t_rec)
        except BaseException as err:  # surfaced by the runner
            self.error = err
            if self.protocol is not None:
                self.protocol.abort()
            raise

    def _poll_global_rollback(self) -> None:
        if self.protocol is not None and self.protocol.rollback_pending(self):
            raise RollbackSignal()

    def _checkpoint(self) -> None:
        if self.recovery_mode == "global":
            assert self.protocol is not None
            self.protocol.coordinated_checkpoint(self)
        else:
            if self.staging.in_replay(self.name):
                # Catching up after a rollback: the window being replayed is
                # already covered by the checkpoint we restored from, and a
                # mid-replay checkpoint would desynchronize the state save
                # from its queue event. Skip until live again.
                return
            self.take_checkpoint(self.state["step"] - 1)

    # ------------------------------------------------------------- helpers

    def interrupt_predicate(self):
        """Predicate for blocking gets: abort the wait on global rollback."""
        if self.protocol is None:
            return None
        return lambda: self.protocol.rollback_pending(self)


class ProducerComponent(AppComponent):
    """The simulation: writes each variable's coupled region every step."""

    def execute_step(self, step: int) -> None:
        region = self.spec.domain.subset(self.spec.subset_fraction)
        for var in self.spec.variables:
            desc = ObjectDescriptor(var, step, region)
            data = synthetic_field(var, step, region.shape)
            result = self.staging.put(
                self.name, desc, data, step, interrupt=self.interrupt_predicate()
            )
            self.stats.puts += 1
            if result.suppressed:
                self.stats.suppressed_puts += 1


class ConsumerComponent(AppComponent):
    """The analytic: reads each variable right after the producer's write."""

    def execute_step(self, step: int) -> None:
        region = self.spec.domain.subset(self.spec.subset_fraction)
        for var in self.spec.variables:
            desc = ObjectDescriptor(var, step, region)
            result = self.staging.get_blocking(
                self.name, desc, step, interrupt=self.interrupt_predicate()
            )
            self.stats.gets += 1
            if result.replayed:
                self.stats.replayed_gets += 1
            self.observations.record(
                self.name, step, var, result.served_version, result.digest
            )
            # A simple feature-extraction reduction, kept in checkpointable
            # state so rollback re-computation is observable in tests.
            self.state["results"].append(
                (step, var, float(np.mean(result.data)))
            )


@dataclass
class ComponentThread:
    """A component bound to its executing thread."""

    component: AppComponent
    thread: threading.Thread = field(init=False)

    def __post_init__(self) -> None:
        self.thread = threading.Thread(
            target=self.component.run, name=f"component-{self.component.name}", daemon=True
        )

    def start(self) -> None:
        self.thread.start()

    def join(self, timeout: float | None = None) -> None:
        self.thread.join(timeout=timeout)

    @property
    def alive(self) -> bool:
        return self.thread.is_alive()
