"""Thread-safe staging service for the threaded runtime.

Wraps :class:`~repro.core.interface.WorkflowStaging` with a *two-tier* lock
hierarchy and adds the blocking read DataSpaces clients rely on: a
consumer's get waits until the producer's version arrives. Waits are
interruptible so global rollbacks (coordinated scheme) and shutdowns never
deadlock.

Lock hierarchy (outer to inner; see DESIGN.md, performance architecture):

1. **metadata lock** (``_meta``) — guards flow-control frontiers, replay
   scripts, event queues, the data log, and the GC. Held only for the
   metadata phases of an operation.
2. **per-server locks** (``StagingServer.lock``) — guard one server's store
   and index. The payload phase of a put/get holds only these, so requests
   whose shards land on different servers move bytes concurrently.

A request is serviced as *plan (meta) → move payload (server locks) → commit
(meta)*. Snapshot/restore quiesce the data plane first (an in-flight-ops
gate) so a coordinated checkpoint never captures a torn, half-written group.
``parallel=False`` collapses everything back under the metadata lock — the
seed's single-lock behaviour, kept as the measurable baseline.

Also provides whole-staging snapshot/restore — under *global coordinated*
checkpointing the staging servers are part of the global snapshot and roll
back together with the applications.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

import numpy as np

from repro.core.event_queue import ReplayScript
from repro.core.events import WChkId, payload_digest
from repro.core.garbage import BackgroundCollector, GCReport
from repro.core.interface import GetPlan, GetResult, PutResult, WorkflowStaging
from repro.descriptors.odsc import ObjectDescriptor
from repro.errors import ObjectNotFound, StagingError
from repro.obs import registry as _obs
from repro.staging.client import StagingGroup
from repro.staging.cow import compose_chain, is_cow_snapshot

__all__ = ["SynchronizedStaging", "WaitInterrupted"]

_LOCK_WAIT = _obs.histogram("staging.service.lock_wait.seconds")
_FLOW_STALLS = _obs.counter("staging.service.flow_stall.count")
_FLOW_STALL_SECONDS = _obs.histogram("staging.service.flow_stall.seconds")
_BLOCKING_WAITS = _obs.counter("staging.service.blocking_get.waits")
_BLOCKING_WAIT_SECONDS = _obs.histogram("staging.service.blocking_get.wait.seconds")
_WAITS_INTERRUPTED = _obs.counter("staging.service.waits_interrupted")
_DATA_PHASES = _obs.counter("staging.service.data_phase.count")
_DATA_PHASE_RETRIES = _obs.counter("staging.service.data_phase.retries")
_QUIESCE_WAIT_SECONDS = _obs.histogram("staging.service.quiesce_wait.seconds")
_CAPTURE_SECONDS = _obs.histogram("checkpoint.capture.seconds")
_GATE_SECONDS = _obs.histogram("checkpoint.gate.seconds")
_RESTORE_SECONDS = _obs.histogram("checkpoint.restore.seconds")
_RECOVERY_RESTORE_FANOUT = _obs.counter("recovery.restore.parallel_servers")
_RECOVERY_RESTART_SECONDS = _obs.histogram("recovery.workflow_restart.seconds")


class WaitInterrupted(StagingError):
    """A blocking get was interrupted (rollback or shutdown)."""


class SynchronizedStaging:
    """Concurrent access to a WorkflowStaging plus blocking version waits."""

    def __init__(
        self,
        staging: WorkflowStaging,
        poll_timeout: float = 1.0,
        max_wait: float = 60.0,
        max_ahead: int = 2,
        parallel: bool = True,
    ) -> None:
        self.staging = staging
        self.poll_timeout = poll_timeout
        self.max_wait = max_wait
        # Coupling flow control: a producer may run at most this many
        # versions ahead of the slowest registered consumer. Models the
        # paper's "write immediately followed by read" coordination
        # (DataSpaces coupling locks) and bounds staging memory.
        self.max_ahead = max_ahead
        # parallel=False serializes every request under the metadata lock
        # (the seed's single-lock path): the benchmark baseline, and the
        # reference the parallel path is differentially tested against.
        self.parallel = parallel
        # The recovery path follows the data path's concurrency mode:
        # partitioned replay scripts (per-variable cursors) only when the
        # parallel request phases are on, strict global order otherwise.
        staging.replay_partitioned = parallel
        self._meta = threading.RLock()
        self._data_arrived = threading.Condition(self._meta)
        # Data-plane quiescence gate: payload phases run outside _meta, so
        # snapshot/restore block new data phases and wait out in-flight ones.
        self._quiesced = threading.Condition(self._meta)
        self._inflight = 0
        self._excluders = 0
        self._shutdown = False
        # name -> set of consumer component names (declared couplings).
        self._flow_consumers: dict[str, set[str]] = {}
        # (name, component) -> highest version read.
        self._frontier: dict[tuple[str, str], int] = {}
        # Frontier entries changed since the last checkpoint epoch — the
        # frontier's mutation journal (it only ever advances per key, so a
        # dict of latest values is an exact journal).
        self._frontier_dirty: dict[tuple[str, str], int] = {}
        # Serializes whole checkpoint/restore operations against each other
        # so chain updates that happen *outside* the metadata lock (delta
        # materialization, compose) stay ordered. Acquired before _meta;
        # nothing holding _meta ever takes it, so ordering is acyclic.
        self._ckpt_lock = threading.Lock()
        # Finished consumers no longer gate producers.
        self._retired: set[str] = set()
        staging.frontier_source = self._unconsumed_floor
        # ---- background garbage collection --------------------------------
        self._bg_gc: BackgroundCollector | None = None
        self._bg_gc_prev_auto: bool | None = None
        # Operations that must exclude GC (snapshot/restore/rebuild) bump
        # this; the collector's pause predicate reads it. Guarded by its own
        # lock so the predicate never has to touch ``_meta``.
        self._gc_pause_lock = threading.Lock()
        self._gc_excluded = 0
        # An epoch boundary makes pre-epoch versions collectable: feed the
        # GC's candidate queue whenever the checkpointer seals one. (Always
        # registered — the synchronous incremental passes benefit too.)
        staging.checkpointer.epoch_listeners.append(staging.gc.note_epoch)

    # ------------------------------------------------------------ lifecycle

    def register(self, component: str) -> None:
        with self._meta:
            self.staging.register(component)

    def shutdown(self) -> None:
        """Wake every waiter with WaitInterrupted; used at teardown."""
        # Join the collector before taking _meta: its batches acquire _meta,
        # so joining while holding the lock could deadlock.
        self.stop_background_gc()
        with self._meta:
            self._shutdown = True
            self._data_arrived.notify_all()

    def close(self) -> None:
        """Shut the service down *and* release the staging transport.

        ``shutdown()`` alone leaves the group usable (tests re-read staged
        state after stopping the service); ``close()`` is the full teardown
        for owners of the whole stack — it additionally closes the group's
        transport, which on TCP terminates the server processes. Idempotent.
        """
        self.shutdown()
        self.staging.group.close()

    # ---------------------------------------------------- garbage collection

    def gc_step(
        self, max_versions: int | None = 1, max_seconds: float | None = None
    ) -> GCReport:
        """One bounded incremental GC batch under the metadata lock.

        The default budget of a *single* eviction per batch is what bounds
        the data plane's GC-induced stall: the lock is released between
        batches, so a concurrent put/get waits for at most one candidate's
        eviction, never a sweep.
        """
        with self._meta:
            report = self.staging.gc.collect_incremental(
                max_versions=max_versions, max_seconds=max_seconds
            )
            if (
                report.versions_collected
                or report.events_trimmed
                or report.pending_drained
            ):
                # Idle no-op batches would swamp the report list.
                self.staging.gc_reports.append(report)
            return report

    def _gc_paused(self) -> bool:
        """Pause predicate for the background collector (lock-free-ish).

        True while a snapshot/restore/rebuild excludes GC or any component
        is mid-replay. Reads race benignly with the writers: a stale False
        only means one more bounded batch, which still serializes correctly
        through ``_meta``.
        """
        if self._gc_excluded:
            return True
        return self.staging.any_replaying()

    def _exclude_gc(self) -> None:
        with self._gc_pause_lock:
            self._gc_excluded += 1

    def _readmit_gc(self) -> None:
        with self._gc_pause_lock:
            self._gc_excluded -= 1

    def start_background_gc(
        self,
        high_watermark: int,
        low_watermark: int | None = None,
        interval: float = 0.05,
        batch_versions: int | None = 1,
        batch_seconds: float | None = None,
    ) -> BackgroundCollector:
        """Start concurrent watermark-driven collection (idempotent).

        Synchronous auto-GC on ``workflow_check`` is suspended while the
        collector runs — checkpoints only queue candidates (O(1) under
        ``_meta``) and nudge the collector, so the checkpoint path loses its
        last collection work. Fault recovery wakes the collector too, via
        the data log's ``recovery_waker``, so pending evictions queued
        behind a transient fault drain as soon as the server heals.
        """
        if self._bg_gc is not None:
            return self._bg_gc
        collector = BackgroundCollector(
            run_batch=lambda: self.gc_step(batch_versions, batch_seconds),
            pressure_bytes=self.staging.log.logged_bytes,
            high_watermark=high_watermark,
            low_watermark=low_watermark,
            interval=interval,
            paused=self._gc_paused,
        )
        with self._meta:
            self._bg_gc_prev_auto = self.staging.auto_gc
            self.staging.auto_gc = False
            self.staging.log.recovery_waker = collector.wakeup
            self.staging.checkpointer.epoch_listeners.append(collector.wakeup)
        self._bg_gc = collector
        collector.start()
        return collector

    def stop_background_gc(self, final_pass: bool = True) -> None:
        """Stop the collector thread and restore synchronous auto-GC.

        ``final_pass`` runs one last *unbounded* incremental pass after the
        thread joins, so candidates queued between its final batch and the
        stop are not stranded (teardown determinism for tests/benchmarks).
        """
        collector = self._bg_gc
        if collector is None:
            return
        self._bg_gc = None
        collector.stop()
        with self._meta:
            self.staging.log.recovery_waker = None
            listeners = self.staging.checkpointer.epoch_listeners
            if collector.wakeup in listeners:
                listeners.remove(collector.wakeup)
            if self._bg_gc_prev_auto is not None:
                self.staging.auto_gc = self._bg_gc_prev_auto
                self._bg_gc_prev_auto = None
        if final_pass:
            self.gc_step(max_versions=None, max_seconds=None)

    @property
    def background_gc(self) -> BackgroundCollector | None:
        """The running background collector, if any."""
        return self._bg_gc

    # -------------------------------------------------------- data-phase gate

    def _begin_data_phase(self) -> None:
        """Enter the data plane (caller holds ``_meta``)."""
        while self._excluders:
            self._quiesced.wait()
        self._inflight += 1
        _DATA_PHASES.inc()

    def _end_data_phase(self) -> None:
        """Leave the data plane (caller holds ``_meta``)."""
        self._inflight -= 1
        if self._inflight == 0:
            self._quiesced.notify_all()

    def _abort_data_phase(self) -> None:
        """Leave the data plane from an except path (acquires ``_meta``)."""
        with self._meta:
            self._end_data_phase()

    def _quiesce_data_plane(self) -> None:
        """Block new data phases and wait out in-flight ones (holds ``_meta``)."""
        t0 = time.monotonic()
        self._excluders += 1
        while self._inflight:
            self._quiesced.wait()
        _QUIESCE_WAIT_SECONDS.record(time.monotonic() - t0)

    def _release_data_plane(self) -> None:
        self._excluders -= 1
        if self._excluders == 0:
            self._quiesced.notify_all()

    # ------------------------------------------------------------------ ops

    def declare_coupling(self, name: str, consumer: str) -> None:
        """Register that ``consumer`` reads variable ``name``.

        Feeds both flow control (producer pacing) and the data log's
        GC-protection of unread versions.
        """
        with self._meta:
            self._flow_consumers.setdefault(name, set()).add(consumer)
            if self.staging.enable_logging:
                self.staging.declare_coupling(name, consumer)

    def retire_consumer(self, consumer: str) -> None:
        """Exclude a *finished* consumer from flow control.

        A consumer that has read everything it ever will must not throttle
        the producer — critical after a coordinated rollback rewinds read
        frontiers below versions the parked consumer will never re-read.
        """
        with self._meta:
            self._retired.add(consumer)
            self._data_arrived.notify_all()

    def rejoin_consumer(self, consumer: str) -> None:
        """Re-admit a consumer dragged back below its final step."""
        with self._meta:
            self._retired.discard(consumer)

    def _min_frontier(self, name: str) -> int | None:
        """Slowest active consumer's read frontier (None: no active consumers)."""
        consumers = self._flow_consumers.get(name)
        if not consumers:
            return None
        active = [c for c in consumers if c not in self._retired]
        if not active:
            return None
        return min(self._frontier.get((name, c), -1) for c in active)

    def _unconsumed_floor(self, name: str) -> int | None:
        """Lowest version not yet read by every consumer (retention floor)."""
        frontier = self._min_frontier(name)
        return None if frontier is None else frontier + 1

    # ------------------------------------------------------------------ put

    def put(
        self,
        component: str,
        desc: ObjectDescriptor,
        data: np.ndarray,
        step: int,
        interrupt: Callable[[], bool] | None = None,
    ) -> PutResult:
        """Serviced write; wakes any consumer blocked on this version.

        Blocks while the slowest consumer lags more than ``max_ahead``
        versions behind this write (coupling flow control). Replay-suppressed
        writes never block: their data already flowed in the initial run.
        """
        data = self.staging.validate_put(desc, data)
        t_req = time.monotonic()
        with self._meta:
            _LOCK_WAIT.record(time.monotonic() - t_req)
            # The flow-control budget starts once the request is being
            # serviced: lock contention must not eat into max_wait.
            deadline = time.monotonic() + self.max_wait
            stalled_since: float | None = None
            while not self.staging.in_replay(component):
                frontier = self._min_frontier(desc.name)
                if frontier is None or desc.version - frontier <= self.max_ahead:
                    break
                if self._shutdown:
                    _WAITS_INTERRUPTED.inc()
                    raise WaitInterrupted("staging service shut down")
                if interrupt is not None and interrupt():
                    _WAITS_INTERRUPTED.inc()
                    raise WaitInterrupted(f"flow wait for {desc} interrupted")
                if time.monotonic() > deadline:
                    _WAITS_INTERRUPTED.inc()
                    raise WaitInterrupted(
                        f"{component!r}: consumers stalled > {self.max_wait}s "
                        f"behind {desc}"
                    )
                if stalled_since is None:
                    stalled_since = time.monotonic()
                    _FLOW_STALLS.inc()
                self._data_arrived.wait(timeout=self.poll_timeout)
            if stalled_since is not None:
                _FLOW_STALL_SECONDS.record(time.monotonic() - stalled_since)
            suppressed = self.staging.suppress_replayed_put(component, desc, data)
            if suppressed is not None:
                self._data_arrived.notify_all()
                return suppressed
            if not self.parallel:
                result = self.staging.handle_put(component, desc, data, step)
                self._data_arrived.notify_all()
                return result
            self._begin_data_phase()
        # ---- data phase: payload moves under per-server locks only -------
        try:
            shards = self.staging.client.put(desc, data)
            digest = payload_digest(data) if self.staging.enable_logging else ""
        except BaseException:
            self._abort_data_phase()
            raise
        with self._meta:
            self._end_data_phase()
            result = self.staging.commit_put(component, desc, digest, step, shards)
            self._data_arrived.notify_all()
            return result

    # ------------------------------------------------------------------ get

    def get_blocking(
        self,
        component: str,
        desc: ObjectDescriptor,
        step: int,
        interrupt: Callable[[], bool] | None = None,
    ) -> GetResult:
        """Read ``desc``, waiting until its data is available.

        ``interrupt`` is polled while waiting; returning True aborts the wait
        with :class:`WaitInterrupted` (e.g. a coordinated rollback was
        requested while this consumer waited for a version the rolled-back
        producer will never write).

        In the parallel path the payload is assembled outside the metadata
        lock; if a concurrent eviction or rollback removes the planned
        version mid-fetch, the fetch raises and the wait loop simply resumes
        (the interrupt predicate or deadline bounds the retry).
        """
        t_req = time.monotonic()
        t_start = time.monotonic()
        _LOCK_WAIT.record(0.0 if not self.parallel else t_start - t_req)
        deadline = t_start + self.max_wait
        waited = False
        while True:
            plan: GetPlan | None = None
            with self._meta:
                if not waited:
                    # As in put(): the wait budget excludes lock-acquisition
                    # time; re-anchor it now that the lock is held once.
                    deadline = max(deadline, time.monotonic() + self.max_wait)
                while True:
                    if self._shutdown:
                        _WAITS_INTERRUPTED.inc()
                        raise WaitInterrupted("staging service shut down")
                    if interrupt is not None and interrupt():
                        _WAITS_INTERRUPTED.inc()
                        raise WaitInterrupted(f"wait for {desc} interrupted")
                    if time.monotonic() > deadline:
                        _WAITS_INTERRUPTED.inc()
                        raise WaitInterrupted(
                            f"{component!r} waited over {self.max_wait}s for {desc}"
                        )
                    if not self.parallel:
                        result = self._serve_get_serial(component, desc, step)
                        if result is not None:
                            if waited:
                                _BLOCKING_WAIT_SECONDS.record(
                                    time.monotonic() - t_start
                                )
                            self._record_read(component, desc, result)
                            return result
                    else:
                        plan = self.staging.plan_get(component, desc)
                        if plan is not None:
                            self._begin_data_phase()
                            break
                    if not waited:
                        waited = True
                        _BLOCKING_WAITS.inc()
                    self._data_arrived.wait(timeout=self.poll_timeout)
            # ---- data phase: assemble payload under per-server locks -----
            try:
                data = self.staging.fetch_get(desc, plan.version)
                digest = payload_digest(data)
            except ObjectNotFound:
                # Planned version vanished mid-fetch (eviction/rollback race);
                # go back to waiting.
                self._abort_data_phase()
                _DATA_PHASE_RETRIES.inc()
                continue
            except BaseException:
                self._abort_data_phase()
                raise
            with self._meta:
                self._end_data_phase()
                if plan.replayed:
                    result = self.staging.commit_replayed_get(
                        component, desc, data, digest
                    )
                else:
                    result = self.staging.commit_get(
                        component, desc, data, digest, plan.version, step
                    )
                if waited:
                    _BLOCKING_WAIT_SECONDS.record(time.monotonic() - t_start)
                self._record_read(component, desc, result)
                return result

    def _serve_get_serial(
        self, component: str, desc: ObjectDescriptor, step: int
    ) -> GetResult | None:
        """One readiness probe + serve attempt fully under the metadata lock
        (the seed's single-lock path; caller holds ``_meta``)."""
        client = self.staging.client
        if self.staging.in_replay(component):
            # Replay never blocks: the log retains everything the script
            # will serve.
            return self.staging.handle_get(component, desc, step)
        if client.covers(desc):
            return self.staging.handle_get(component, desc, step)
        if (
            # In non-logged mode a stale-latest fallback may apply, but only
            # once *some* newer version exists.
            not self.staging.enable_logging
            and (latest := client.latest_version(desc.name)) is not None
            and latest >= desc.version
        ):
            return self.staging.handle_get(component, desc, step)
        return None

    def _record_read(
        self, component: str, desc: ObjectDescriptor, result: GetResult
    ) -> None:
        """Advance the consumer's frontier; wake producers it may unblock
        (caller holds ``_meta``)."""
        key = (desc.name, component)
        self._frontier[key] = max(self._frontier.get(key, -1), result.served_version)
        self._frontier_dirty[key] = self._frontier[key]
        if not self.staging.enable_logging:
            # Original-DataSpaces retention drops consumed versions at read
            # time, not only at the producer's next put: this keeps the
            # eviction point deterministic regardless of how producer and
            # consumer interleave (the ``In`` baseline's inconsistency
            # demonstration depends on it).
            floor = self._unconsumed_floor(desc.name)
            if floor is not None:
                self.staging.drop_consumed(desc.name, floor)
        self._data_arrived.notify_all()

    # ---------------------------------------------------- workflow interface

    def workflow_check(self, component: str, step: int, durable: bool = True) -> WChkId:
        with self._meta:
            return self.staging.handle_check(component, step, durable=durable)

    def workflow_restart(
        self, component: str, step: int, durable_only: bool = False
    ) -> ReplayScript:
        t0 = time.monotonic()
        with self._meta:
            script = self.staging.handle_restart(
                component, step, durable_only=durable_only
            )
            # A recovering component changes no data, but consumers blocked
            # on it should re-check their interrupt predicates.
            self._data_arrived.notify_all()
        _RECOVERY_RESTART_SECONDS.record(time.monotonic() - t0)
        return script

    @property
    def recovery_executor(self):
        """Thread pool for recovery-side overlap, or None in serial mode.

        The workflow runtime uses it to run component state restore
        (checkpoint unpickling) concurrently with ``workflow_restart`` /
        replay; ``parallel=False`` returns None so the seed's sequential
        recovery is preserved exactly.
        """
        if not self.parallel:
            return None
        return self.group.executor

    def in_replay(self, component: str) -> bool:
        with self._meta:
            return self.staging.in_replay(component)

    # ------------------------------------------------------------- snapshot

    def snapshot(self, full: bool = False) -> dict:
        """Capture staging state (global coordinated checkpoint).

        Includes the consumer read frontiers: they are coupling state, and a
        global rollback must rewind them alongside the stores or retention
        would evict versions the rolled-back consumers still need. The data
        plane is quiesced first so no in-flight put tears the snapshot.

        Default is **incremental**: the first call takes a full base capture
        (fanned out per server on the shard pool) and starts the mutation
        journals; every later call's work under the quiescence gate is just
        sealing those journals — O(mutations since the last epoch), not
        O(state) — and the delta is packaged after the gate reopens.
        ``full=True`` is the seed-compatible path: a plain full snapshot
        in the legacy format (restorable by older code), which never turns
        journaling on by itself.
        """
        t0 = time.monotonic()
        ckpt = self.staging.checkpointer
        # GC pauses for the whole operation (not just the gated window):
        # delta packaging outside the gate still reads sealed journals that
        # share payload references with the stores.
        self._exclude_gc()
        try:
            return self._snapshot_excluded(full, ckpt, t0)
        finally:
            self._readmit_gc()

    def _snapshot_excluded(self, full: bool, ckpt, t0: float) -> dict:
        with self._ckpt_lock:
            sealed: dict | None = None
            with self._meta:
                self._quiesce_data_plane()
                t_gate = time.monotonic()
                try:
                    if full or ckpt.wants_full():
                        snap = ckpt.capture_full(
                            self._frontier,
                            # An explicit full=True capture on a group that
                            # never checkpointed incrementally stays purely
                            # seed-shaped; once a chain exists it doubles as
                            # a fresh base.
                            start_chain=(not full) or ckpt.journaling,
                        )
                        self._frontier_dirty.clear()
                        if not full:
                            snap = ckpt.chain_view()
                    else:
                        sealed = ckpt.seal()
                        sealed["frontier"] = dict(self._frontier_dirty)
                        self._frontier_dirty.clear()
                finally:
                    _GATE_SECONDS.record(time.monotonic() - t_gate)
                    self._release_data_plane()
            if sealed is not None:
                # Delta packaging + chain upkeep run outside the metadata
                # lock: the data plane is already moving again.
                snap = ckpt.materialize(sealed)
            # Journals a re-base discarded are freed here, after the gate:
            # they can hold the last reference to evicted payloads, and that
            # deallocation cascade must not stall the data plane.
            ckpt.release_discarded()
        _CAPTURE_SECONDS.record(time.monotonic() - t0)
        return snap

    def restore(self, snap: dict) -> None:
        """Roll staging back to a captured snapshot (full or incremental).

        Incremental snapshots are composed back into the full format
        *before* the data plane is quiesced, so the gate closes only for the
        in-place restore. Each server restores its store *and* its spatial
        index together (:meth:`StagingServer.restore`): restoring only the
        store would leave the metadata layer with stale entries for
        rolled-back versions and missing entries for versions the snapshot
        re-adds. After an incremental restore the checkpointer rebases onto
        the restored chain, so the next checkpoint is a delta against the
        rolled-back state; after a legacy full restore the chain is marked
        dirty and the next checkpoint re-bases with a full capture.
        """
        t0 = time.monotonic()
        ckpt = self.staging.checkpointer
        self._exclude_gc()
        try:
            self._restore_excluded(snap, ckpt)
        finally:
            self._readmit_gc()
        _RESTORE_SECONDS.record(time.monotonic() - t0)

    def _restore_excluded(self, snap: dict, ckpt) -> None:
        with self._ckpt_lock:
            cow = is_cow_snapshot(snap)
            # Per-server chain composition and store/index repopulation are
            # independent across servers, so the recovery path fans both out
            # on the shared staging pool: compose runs before the gate even
            # closes, and the in-gate restore seals once and then works all
            # servers concurrently. parallel=False keeps the seed serial
            # path (the differential-test reference).
            parallel = (
                self.parallel
                and self.group.parallel
                and len(self.group.servers) > 1
            )
            executor = self.group.executor if parallel else None
            full = compose_chain(snap["chain"], executor=executor) if cow else snap
            with self._meta:
                snaps = full["servers"]
                if len(snaps) != len(self.group.servers):
                    raise StagingError(
                        f"snapshot covers {len(snaps)} servers, group has "
                        f"{len(self.group.servers)}"
                    )
                self._quiesce_data_plane()
                try:
                    if executor is not None:
                        _RECOVERY_RESTORE_FANOUT.inc(len(snaps))
                        for fut in [
                            executor.submit(srv.restore, s)
                            for srv, s in zip(self.group.servers, snaps)
                        ]:
                            fut.result()
                    else:
                        for srv, s in zip(self.group.servers, snaps):
                            srv.restore(s)
                    self._frontier = dict(full["frontier"])
                    self._frontier_dirty = {}
                    # Legacy snapshots (pre-resilience) carry no records/
                    # health; leave the live state alone for those.
                    if "protection" in full:
                        self.group.records.restore(full["protection"])
                    if "health" in full:
                        self.group.health.restore(full["health"])
                    if cow:
                        ckpt.rebase(snap)
                    else:
                        ckpt.mark_dirty()
                finally:
                    self._release_data_plane()
                self._data_arrived.notify_all()
            ckpt.release_discarded()

    def rebuild_server(self, server_id: int, replacement=None) -> int:
        """Rebuild a lost staging server from survivors, then resume.

        Quiesces the data plane (a rebuild swaps the server object out from
        under concurrent puts/gets otherwise), delegates to
        :meth:`StagingGroup.rebuild`, and wakes blocked consumers — versions
        that were only degraded-readable become directly servable again.
        Returns the number of payload bytes rebuilt.
        """
        self._exclude_gc()
        try:
            with self._meta:
                self._quiesce_data_plane()
                try:
                    rebuilt = self.group.rebuild(server_id, replacement)
                    # The rebuild swapped a server object: its journals no
                    # longer describe the chain's lineage, so the next
                    # checkpoint must re-base with a full capture.
                    self.staging.checkpointer.mark_dirty()
                finally:
                    self._release_data_plane()
                self._data_arrived.notify_all()
                return rebuilt
        finally:
            self._readmit_gc()

    # -------------------------------------------------------------- metrics

    @property
    def group(self) -> StagingGroup:
        return self.staging.group

    def memory_bytes(self) -> int:
        with self._meta:
            return self.staging.memory_bytes()

    def logging_overhead(self) -> float:
        with self._meta:
            return self.staging.logging_overhead()
