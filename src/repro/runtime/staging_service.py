"""Thread-safe staging service for the threaded runtime.

Wraps :class:`~repro.core.interface.WorkflowStaging` with a lock (staging
servers service one request at a time, like a DataSpaces server thread) and
adds the blocking read DataSpaces clients rely on: a consumer's get waits
until the producer's version arrives. Waits are interruptible so global
rollbacks (coordinated scheme) and shutdowns never deadlock.

Also provides whole-staging snapshot/restore — under *global coordinated*
checkpointing the staging servers are part of the global snapshot and roll
back together with the applications.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

import numpy as np

from repro.core.event_queue import ReplayScript
from repro.core.events import WChkId
from repro.core.interface import GetResult, PutResult, WorkflowStaging
from repro.descriptors.odsc import ObjectDescriptor
from repro.errors import StagingError
from repro.obs import registry as _obs
from repro.staging.client import StagingGroup

__all__ = ["SynchronizedStaging", "WaitInterrupted"]

_LOCK_WAIT = _obs.histogram("staging.service.lock_wait.seconds")
_FLOW_STALLS = _obs.counter("staging.service.flow_stall.count")
_FLOW_STALL_SECONDS = _obs.histogram("staging.service.flow_stall.seconds")
_BLOCKING_WAITS = _obs.counter("staging.service.blocking_get.waits")
_BLOCKING_WAIT_SECONDS = _obs.histogram("staging.service.blocking_get.wait.seconds")
_WAITS_INTERRUPTED = _obs.counter("staging.service.waits_interrupted")


class WaitInterrupted(StagingError):
    """A blocking get was interrupted (rollback or shutdown)."""


class SynchronizedStaging:
    """Serialized access to a WorkflowStaging plus blocking version waits."""

    def __init__(
        self,
        staging: WorkflowStaging,
        poll_timeout: float = 1.0,
        max_wait: float = 60.0,
        max_ahead: int = 2,
    ) -> None:
        self.staging = staging
        self.poll_timeout = poll_timeout
        self.max_wait = max_wait
        # Coupling flow control: a producer may run at most this many
        # versions ahead of the slowest registered consumer. Models the
        # paper's "write immediately followed by read" coordination
        # (DataSpaces coupling locks) and bounds staging memory.
        self.max_ahead = max_ahead
        self._lock = threading.RLock()
        self._data_arrived = threading.Condition(self._lock)
        self._shutdown = False
        # name -> set of consumer component names (declared couplings).
        self._flow_consumers: dict[str, set[str]] = {}
        # (name, component) -> highest version read.
        self._frontier: dict[tuple[str, str], int] = {}
        # Finished consumers no longer gate producers.
        self._retired: set[str] = set()
        staging.frontier_source = self._unconsumed_floor

    # ------------------------------------------------------------ lifecycle

    def register(self, component: str) -> None:
        with self._lock:
            self.staging.register(component)

    def shutdown(self) -> None:
        """Wake every waiter with WaitInterrupted; used at teardown."""
        with self._lock:
            self._shutdown = True
            self._data_arrived.notify_all()

    # ------------------------------------------------------------------ ops

    def declare_coupling(self, name: str, consumer: str) -> None:
        """Register that ``consumer`` reads variable ``name``.

        Feeds both flow control (producer pacing) and the data log's
        GC-protection of unread versions.
        """
        with self._lock:
            self._flow_consumers.setdefault(name, set()).add(consumer)
            if self.staging.enable_logging:
                self.staging.declare_coupling(name, consumer)

    def retire_consumer(self, consumer: str) -> None:
        """Exclude a *finished* consumer from flow control.

        A consumer that has read everything it ever will must not throttle
        the producer — critical after a coordinated rollback rewinds read
        frontiers below versions the parked consumer will never re-read.
        """
        with self._lock:
            self._retired.add(consumer)
            self._data_arrived.notify_all()

    def rejoin_consumer(self, consumer: str) -> None:
        """Re-admit a consumer dragged back below its final step."""
        with self._lock:
            self._retired.discard(consumer)

    def _min_frontier(self, name: str) -> int | None:
        """Slowest active consumer's read frontier (None: no active consumers)."""
        consumers = self._flow_consumers.get(name)
        if not consumers:
            return None
        active = [c for c in consumers if c not in self._retired]
        if not active:
            return None
        return min(self._frontier.get((name, c), -1) for c in active)

    def _unconsumed_floor(self, name: str) -> int | None:
        """Lowest version not yet read by every consumer (retention floor)."""
        frontier = self._min_frontier(name)
        return None if frontier is None else frontier + 1

    def put(
        self,
        component: str,
        desc: ObjectDescriptor,
        data: np.ndarray,
        step: int,
        interrupt: Callable[[], bool] | None = None,
    ) -> PutResult:
        """Serviced write; wakes any consumer blocked on this version.

        Blocks while the slowest consumer lags more than ``max_ahead``
        versions behind this write (coupling flow control). Replay-suppressed
        writes never block: their data already flowed in the initial run.
        """
        t_req = time.monotonic()
        with self._lock:
            _LOCK_WAIT.record(time.monotonic() - t_req)
            # The flow-control budget starts once the request is being
            # serviced: lock contention must not eat into max_wait.
            deadline = time.monotonic() + self.max_wait
            stalled_since: float | None = None
            while not self.staging.in_replay(component):
                frontier = self._min_frontier(desc.name)
                if frontier is None or desc.version - frontier <= self.max_ahead:
                    break
                if self._shutdown:
                    _WAITS_INTERRUPTED.inc()
                    raise WaitInterrupted("staging service shut down")
                if interrupt is not None and interrupt():
                    _WAITS_INTERRUPTED.inc()
                    raise WaitInterrupted(f"flow wait for {desc} interrupted")
                if time.monotonic() > deadline:
                    _WAITS_INTERRUPTED.inc()
                    raise WaitInterrupted(
                        f"{component!r}: consumers stalled > {self.max_wait}s "
                        f"behind {desc}"
                    )
                if stalled_since is None:
                    stalled_since = time.monotonic()
                    _FLOW_STALLS.inc()
                self._data_arrived.wait(timeout=self.poll_timeout)
            if stalled_since is not None:
                _FLOW_STALL_SECONDS.record(time.monotonic() - stalled_since)
            result = self.staging.handle_put(component, desc, data, step)
            self._data_arrived.notify_all()
            return result

    def get_blocking(
        self,
        component: str,
        desc: ObjectDescriptor,
        step: int,
        interrupt: Callable[[], bool] | None = None,
    ) -> GetResult:
        """Read ``desc``, waiting until its data is available.

        ``interrupt`` is polled while waiting; returning True aborts the wait
        with :class:`WaitInterrupted` (e.g. a coordinated rollback was
        requested while this consumer waited for a version the rolled-back
        producer will never write).
        """
        t_req = time.monotonic()
        with self._lock:
            t_start = time.monotonic()
            _LOCK_WAIT.record(t_start - t_req)
            # As in put(): the wait budget excludes lock-acquisition time.
            deadline = t_start + self.max_wait
            waited = False
            while True:
                if self._shutdown:
                    _WAITS_INTERRUPTED.inc()
                    raise WaitInterrupted("staging service shut down")
                if interrupt is not None and interrupt():
                    _WAITS_INTERRUPTED.inc()
                    raise WaitInterrupted(f"wait for {desc} interrupted")
                if time.monotonic() > deadline:
                    _WAITS_INTERRUPTED.inc()
                    raise WaitInterrupted(
                        f"{component!r} waited over {self.max_wait}s for {desc}"
                    )
                result = None
                client = self.staging.client
                if self.staging.in_replay(component):
                    # Replay never blocks: the log retains everything the
                    # script will serve.
                    result = self.staging.handle_get(component, desc, step)
                elif client.covers(desc):
                    result = self.staging.handle_get(component, desc, step)
                elif (
                    # In non-logged mode a stale-latest fallback may apply,
                    # but only once *some* newer version exists.
                    not self.staging.enable_logging
                    and (latest := client.latest_version(desc.name)) is not None
                    and latest >= desc.version
                ):
                    result = self.staging.handle_get(component, desc, step)
                if result is not None:
                    if waited:
                        _BLOCKING_WAIT_SECONDS.record(time.monotonic() - t_start)
                    key = (desc.name, component)
                    self._frontier[key] = max(
                        self._frontier.get(key, -1), result.served_version
                    )
                    # Producers may be blocked on this consumer's progress.
                    self._data_arrived.notify_all()
                    return result
                if not waited:
                    waited = True
                    _BLOCKING_WAITS.inc()
                self._data_arrived.wait(timeout=self.poll_timeout)

    # ---------------------------------------------------- workflow interface

    def workflow_check(self, component: str, step: int, durable: bool = True) -> WChkId:
        with self._lock:
            return self.staging.handle_check(component, step, durable=durable)

    def workflow_restart(
        self, component: str, step: int, durable_only: bool = False
    ) -> ReplayScript:
        with self._lock:
            script = self.staging.handle_restart(
                component, step, durable_only=durable_only
            )
            # A recovering component changes no data, but consumers blocked
            # on it should re-check their interrupt predicates.
            self._data_arrived.notify_all()
            return script

    def in_replay(self, component: str) -> bool:
        with self._lock:
            return self.staging.in_replay(component)

    # ------------------------------------------------------------- snapshot

    def snapshot(self) -> dict:
        """Capture staging state (global coordinated checkpoint).

        Includes the consumer read frontiers: they are coupling state, and a
        global rollback must rewind them alongside the stores or retention
        would evict versions the rolled-back consumers still need.
        """
        with self._lock:
            return {
                "servers": [srv.snapshot() for srv in self.group.servers],
                "frontier": dict(self._frontier),
            }

    def restore(self, snap: dict) -> None:
        """Roll staging back to a captured snapshot.

        Each server restores its store *and* its spatial index together
        (:meth:`StagingServer.restore`): restoring only the store would
        leave the metadata layer with stale entries for rolled-back versions
        and missing entries for versions the snapshot re-adds.
        """
        with self._lock:
            snaps = snap["servers"]
            if len(snaps) != len(self.group.servers):
                raise StagingError(
                    f"snapshot covers {len(snaps)} servers, group has "
                    f"{len(self.group.servers)}"
                )
            for srv, s in zip(self.group.servers, snaps):
                srv.restore(s)
            self._frontier = dict(snap["frontier"])
            self._data_arrived.notify_all()

    # -------------------------------------------------------------- metrics

    @property
    def group(self) -> StagingGroup:
        return self.staging.group

    def memory_bytes(self) -> int:
        with self._lock:
            return self.staging.memory_bytes()

    def logging_overhead(self) -> float:
        with self._lock:
            return self.staging.logging_overhead()
