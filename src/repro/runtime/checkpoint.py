"""Application checkpoint capture and restore.

Models the paper's Figure 7(a): a component saves process state and
user-level data to reliable storage (parallel file system, node-local
NVRAM/SSD, or burst buffer) before calling ``workflow_check()``. Here the
"reliable storage" is an in-memory store with deep-copied state — checkpoints
must be immune to later mutation of the live state, which the tests verify.
"""

from __future__ import annotations

import copy
import enum
import pickle
from dataclasses import dataclass, field

from repro.errors import CheckpointError

__all__ = ["CheckpointTier", "Checkpoint", "CheckpointStore"]


class CheckpointTier(enum.Enum):
    """Where a checkpoint is stored (cost model differs per tier)."""

    PFS = "pfs"  # centralized parallel file system, assumed fault-free
    NODE_LOCAL = "node_local"  # NVRAM / SSD on the compute node
    BURST_BUFFER = "burst_buffer"


@dataclass(frozen=True)
class Checkpoint:
    """One immutable state snapshot of a component."""

    component: str
    counter: int
    step: int
    tier: CheckpointTier
    payload: bytes = field(repr=False)

    @property
    def nbytes(self) -> int:
        return len(self.payload)

    def load_state(self) -> dict:
        """Deserialize the captured state (a fresh object every call)."""
        return pickle.loads(self.payload)


class CheckpointStore:
    """Reliable checkpoint storage shared by workflow components.

    Keeps every checkpoint by default; ``keep_last`` bounds retention per
    component (multi-level schemes keep e.g. 1 PFS + k node-local).
    """

    def __init__(self, keep_last: int | None = None) -> None:
        if keep_last is not None and keep_last < 1:
            raise CheckpointError(f"keep_last must be >= 1, got {keep_last}")
        self.keep_last = keep_last
        self._by_component: dict[str, list[Checkpoint]] = {}
        self._counters: dict[str, int] = {}
        self.bytes_written = 0
        # label -> bytes persisted outside component state (e.g. the staging
        # snapshot a coordinated checkpoint writes alongside the components).
        self.external_bytes: dict[str, int] = {}

    def record_external(self, label: str, nbytes: int) -> None:
        """Account bytes persisted to reliable storage outside `save()`.

        Used by the coordinated protocol for the staging snapshot: with
        incremental checkpointing those bytes are the *delta* since the last
        epoch, so ``bytes_written`` reflects what a real checkpoint actually
        ships to the PFS.
        """
        self.external_bytes[label] = self.external_bytes.get(label, 0) + nbytes
        self.bytes_written += nbytes

    def save(
        self,
        component: str,
        step: int,
        state: dict,
        tier: CheckpointTier = CheckpointTier.PFS,
    ) -> Checkpoint:
        """Capture ``state`` (deep-copied via pickling) at ``step``."""
        counter = self._counters.get(component, 0)
        self._counters[component] = counter + 1
        try:
            payload = pickle.dumps(copy.deepcopy(state), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as err:  # unpicklable user state
            raise CheckpointError(f"cannot serialize state of {component!r}: {err}") from err
        chk = Checkpoint(
            component=component, counter=counter, step=step, tier=tier, payload=payload
        )
        chks = self._by_component.setdefault(component, [])
        chks.append(chk)
        self.bytes_written += chk.nbytes
        if self.keep_last is not None and len(chks) > self.keep_last:
            del chks[: len(chks) - self.keep_last]
        return chk

    def latest(self, component: str) -> Checkpoint | None:
        """Most recent checkpoint of ``component`` (None if never saved)."""
        chks = self._by_component.get(component)
        return chks[-1] if chks else None

    def get(self, component: str, counter: int) -> Checkpoint:
        """Fetch a specific checkpoint by its per-component counter."""
        for chk in self._by_component.get(component, ()):
            if chk.counter == counter:
                return chk
        raise CheckpointError(f"no checkpoint #{counter} for {component!r}")

    def drop_tier(self, component: str, tier: CheckpointTier) -> int:
        """Discard every checkpoint of ``component`` stored on ``tier``.

        Models a node failure destroying node-local checkpoint copies;
        returns the number of checkpoints lost.
        """
        chks = self._by_component.get(component)
        if not chks:
            return 0
        survivors = [c for c in chks if c.tier is not tier]
        lost = len(chks) - len(survivors)
        self._by_component[component] = survivors
        return lost

    def count(self, component: str) -> int:
        """Number of retained checkpoints for ``component``."""
        return len(self._by_component.get(component, ()))

    def components(self) -> list[str]:
        return sorted(self._by_component)
