"""Threaded execution substrate: application components run as real threads
exchanging real payloads through a synchronized staging service, with
fail-stop failure injection, ULFM-style process recovery, checkpoint capture,
and the five fault-tolerance schemes of the paper (Ds/Co/Un/Hy/In)."""

from repro.runtime.app import (
    AppComponent,
    ComponentSpec,
    ConsumerComponent,
    ProducerComponent,
    RollbackSignal,
    synthetic_field,
)
from repro.runtime.checkpoint import Checkpoint, CheckpointStore, CheckpointTier
from repro.runtime.comm import BarrierBroken, Mailbox, PhaseBarrier
from repro.runtime.failures import FailureInjector, FailurePlan, mtbf_failure_steps
from repro.runtime.staging_service import SynchronizedStaging, WaitInterrupted
from repro.runtime.ulfm import Communicator, FailureDetector, RankState, SparePool
from repro.runtime.workflow import (
    SCHEMES,
    CoordinatedProtocol,
    ThreadedWorkflow,
    WorkflowResult,
    run_with_reference,
)

__all__ = [
    "AppComponent",
    "ComponentSpec",
    "ConsumerComponent",
    "ProducerComponent",
    "RollbackSignal",
    "synthetic_field",
    "Checkpoint",
    "CheckpointStore",
    "CheckpointTier",
    "BarrierBroken",
    "Mailbox",
    "PhaseBarrier",
    "FailureInjector",
    "FailurePlan",
    "mtbf_failure_steps",
    "SynchronizedStaging",
    "WaitInterrupted",
    "Communicator",
    "FailureDetector",
    "RankState",
    "SparePool",
    "SCHEMES",
    "CoordinatedProtocol",
    "ThreadedWorkflow",
    "WorkflowResult",
    "run_with_reference",
]
