"""Systematic Reed–Solomon erasure coding RS(k, m).

CoREC protects staged data against server loss with erasure coding. We
implement a systematic RS code: ``k`` data shards pass through unchanged and
``m`` parity shards are Vandermonde combinations, so any ``k`` surviving
shards reconstruct the original. Encoding/decoding is vectorised GF(256)
matrix algebra over whole shards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corec.gf256 import GF256
from repro.errors import DecodingError, EncodingError

__all__ = ["RSCode", "Shard"]


@dataclass(frozen=True)
class Shard:
    """One erasure-code shard: its index in the codeword and its bytes."""

    index: int
    data: np.ndarray  # uint8, all shards the same length

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)


class RSCode:
    """A systematic RS(k, m) erasure code over GF(256).

    Parameters
    ----------
    k:
        Number of data shards.
    m:
        Number of parity shards; the code tolerates any ``m`` erasures.
    """

    def __init__(self, k: int, m: int) -> None:
        if k <= 0 or m < 0:
            raise EncodingError(f"invalid RS parameters k={k}, m={m}")
        if k + m > 255:
            raise EncodingError(f"k+m={k + m} exceeds GF(256) limit of 255")
        self.k = k
        self.m = m
        # Encoding matrix: identity on top (systematic), Vandermonde parity
        # rows below. Rows of the parity block use generators k+1 .. k+m.
        vand = GF256.vandermonde(k + m, k)
        ident = np.eye(k, dtype=np.uint8)
        self.matrix = np.concatenate([ident, vand[k:, :]], axis=0)

    # -------------------------------------------------------------- encode

    def shard_length(self, nbytes: int) -> int:
        """Length of each shard for a payload of ``nbytes``."""
        return (nbytes + self.k - 1) // self.k

    def _as_buffer(self, payload: bytes | np.ndarray) -> np.ndarray:
        buf = np.frombuffer(bytes(payload), dtype=np.uint8) if isinstance(
            payload, (bytes, bytearray)
        ) else np.ascontiguousarray(payload, dtype=np.uint8).reshape(-1)
        if buf.size == 0:
            raise EncodingError("cannot encode empty payload")
        return buf

    def encode(self, payload: bytes | np.ndarray) -> list[Shard]:
        """Split ``payload`` into k data shards and compute m parity shards.

        The payload is zero-padded to a multiple of k; callers must remember
        the original length to strip padding after decode.
        """
        return self.encode_batch([payload])[0]

    def encode_batch(
        self, payloads: list[bytes | np.ndarray]
    ) -> list[list[Shard]]:
        """Encode several payloads with one parity matmul.

        Payloads may have different lengths; each is padded to its own shard
        length and the padded data matrices are concatenated column-wise, so
        the (m, k) x (k, sum-of-shard-lengths) parity product runs once for
        the whole batch instead of once per payload. The code is systematic:
        data shards are slices of the payload itself and never pass through
        the field kernel.
        """
        if not payloads:
            return []
        bufs = [self._as_buffer(p) for p in payloads]
        lens = [self.shard_length(b.size) for b in bufs]
        total = sum(lens)
        data = np.zeros((self.k, total), dtype=np.uint8)
        col = 0
        for buf, shard_len in zip(bufs, lens):
            padded = np.zeros(shard_len * self.k, dtype=np.uint8)
            padded[: buf.size] = buf
            data[:, col : col + shard_len] = padded.reshape(self.k, shard_len)
            col += shard_len
        parity = GF256.matmul(self.matrix[self.k :, :], data)  # (m, total)
        out: list[list[Shard]] = []
        col = 0
        for shard_len in lens:
            shards = [
                Shard(index=i, data=data[i, col : col + shard_len].copy())
                for i in range(self.k)
            ]
            shards += [
                Shard(index=self.k + j, data=parity[j, col : col + shard_len].copy())
                for j in range(self.m)
            ]
            out.append(shards)
            col += shard_len
        return out

    def encode_parity(self, data_matrix: np.ndarray) -> np.ndarray:
        """Parity rows for an explicit ``(k, L)`` uint8 shard matrix.

        Callers that already hold their payload as k equal-length shards
        (e.g. the staging client's per-server shard groups) compute parity
        directly without the split/pad round-trip of :meth:`encode`. Row j of
        the result is the shard at codeword index ``k + j``.
        """
        data_matrix = np.ascontiguousarray(data_matrix, dtype=np.uint8)
        if data_matrix.ndim != 2 or data_matrix.shape[0] != self.k:
            raise EncodingError(
                f"data matrix shape {data_matrix.shape} incompatible with k={self.k}"
            )
        return GF256.matmul(self.matrix[self.k :, :], data_matrix)

    # -------------------------------------------------------------- decode

    def decode(self, shards: list[Shard], nbytes: int) -> bytes:
        """Reconstruct the original ``nbytes`` payload from >= k shards.

        Accepts any subset of the codeword; raises :class:`DecodingError`
        when fewer than k distinct shards survive.
        """
        return self.decode_batch([shards], [nbytes])[0]

    def _select_survivors(
        self, shards: list[Shard], nbytes: int
    ) -> tuple[tuple[int, ...], list[Shard], int]:
        """Validate one codeword's survivors; returns (rows, shards, length)."""
        seen: dict[int, Shard] = {}
        for s in shards:
            if not (0 <= s.index < self.k + self.m):
                raise DecodingError(f"shard index {s.index} out of range")
            seen.setdefault(s.index, s)
        if len(seen) < self.k:
            raise DecodingError(
                f"need {self.k} shards to decode, only {len(seen)} distinct survive"
            )
        use = sorted(seen.values(), key=lambda s: s.index)[: self.k]
        shard_len = use[0].data.size
        if any(s.data.size != shard_len for s in use):
            raise DecodingError("surviving shards have inconsistent lengths")
        expect_len = self.shard_length(nbytes)
        if shard_len != expect_len:
            raise DecodingError(
                f"shard length {shard_len} inconsistent with payload {nbytes} B "
                f"(expected {expect_len})"
            )
        return tuple(s.index for s in use), use, shard_len

    def decode_batch(
        self, codewords: list[list[Shard]], nbytes_list: list[int]
    ) -> list[bytes]:
        """Decode several codewords, amortising the matrix solves.

        Codewords are grouped by erasure pattern (the sorted survivor rows):
        each distinct pattern costs one ``(k, k)`` inverse, and all codewords
        sharing it are stacked column-wise into a single
        ``(k, k) x (k, sum-of-shard-lengths)`` matmul — the decode mirror of
        :meth:`encode_batch`. Codewords whose k data shards all survived skip
        the field kernel entirely. Payloads may have different lengths.
        """
        if len(codewords) != len(nbytes_list):
            raise DecodingError(
                f"batch mismatch: {len(codewords)} codewords, "
                f"{len(nbytes_list)} payload lengths"
            )
        if not codewords:
            return []
        prepared = [
            self._select_survivors(shards, nbytes)
            for shards, nbytes in zip(codewords, nbytes_list)
        ]
        out: list[bytes | None] = [None] * len(prepared)
        ident = tuple(range(self.k))
        groups: dict[tuple[int, ...], list[int]] = {}
        for idx, (rows, use, _) in enumerate(prepared):
            if rows == ident:
                # All data shards survived: no matrix solve needed.
                data = np.stack([s.data for s in use])
                out[idx] = data.reshape(-1)[: nbytes_list[idx]].tobytes()
            else:
                groups.setdefault(rows, []).append(idx)
        for rows, members in groups.items():
            inv = GF256.mat_inverse(self.matrix[list(rows), :])
            lens = [prepared[i][2] for i in members]
            coded = np.empty((self.k, sum(lens)), dtype=np.uint8)
            col = 0
            for i, shard_len in zip(members, lens):
                coded[:, col : col + shard_len] = np.stack(
                    [s.data for s in prepared[i][1]]
                )
                col += shard_len
            data = GF256.matmul(inv, coded)
            col = 0
            for i, shard_len in zip(members, lens):
                out[i] = (
                    data[:, col : col + shard_len]
                    .reshape(-1)[: nbytes_list[i]]
                    .tobytes()
                )
                col += shard_len
        return out

    # ------------------------------------------------------------- helpers

    @property
    def storage_overhead(self) -> float:
        """Extra storage fraction, m/k (e.g. RS(4,2) -> 0.5)."""
        return self.m / self.k

    def __repr__(self) -> str:
        return f"RSCode(k={self.k}, m={self.m})"
