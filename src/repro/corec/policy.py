"""CoREC hybrid protection policy.

CoREC (Duan et al., IPDPS'18) keeps *hot* data (recently written, likely to
be read immediately by the coupled consumer) under cheap-to-access
replication and demotes *cold* data (older versions retained for potential
rollback) to space-efficient erasure coding. This module implements that
policy as a version-age rule plus the bookkeeping to re-encode on demotion,
and reports the storage overhead each regime contributes — the quantity the
paper's memory figures build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corec.reedsolomon import RSCode, Shard
from repro.corec.replication import ReplicationScheme
from repro.errors import ConfigError, ObjectNotFound

__all__ = ["HybridPolicy", "ProtectedObject"]


@dataclass
class ProtectedObject:
    """One protected payload: either replicated copies or RS shards."""

    name: str
    version: int
    nbytes: int
    mode: str  # "replicated" | "encoded"
    copies: list[np.ndarray] = field(default_factory=list)
    shards: list[Shard] = field(default_factory=list)

    @property
    def stored_bytes(self) -> int:
        """Actual bytes consumed by this object's protection."""
        if self.mode == "replicated":
            return sum(int(c.nbytes) for c in self.copies)
        return sum(s.nbytes for s in self.shards)


class HybridPolicy:
    """Hot/cold protection with age-based demotion.

    Parameters
    ----------
    replication:
        Scheme used for hot data.
    code:
        RS code used for cold data.
    hot_versions:
        A version is *hot* while ``latest - version < hot_versions``; once it
        ages past that horizon it is demoted to erasure coding.
    """

    def __init__(
        self,
        replication: ReplicationScheme | None = None,
        code: RSCode | None = None,
        hot_versions: int = 1,
    ) -> None:
        if hot_versions < 1:
            raise ConfigError(f"hot_versions must be >= 1, got {hot_versions}")
        self.replication = replication or ReplicationScheme(n_replicas=2)
        self.code = code or RSCode(k=4, m=2)
        self.hot_versions = hot_versions
        self._objects: dict[tuple[str, int], ProtectedObject] = {}
        self._latest: dict[str, int] = {}

    # ---------------------------------------------------------------- write

    def protect(self, name: str, version: int, payload: np.ndarray) -> ProtectedObject:
        """Protect a new payload (hot => replicated), demoting aged versions."""
        payload = np.ascontiguousarray(payload)
        flat = payload.reshape(-1).view(np.uint8)
        obj = ProtectedObject(
            name=name,
            version=version,
            nbytes=int(flat.nbytes),
            mode="replicated",
            copies=[flat.copy() for _ in range(self.replication.n_replicas)],
        )
        self._objects[(name, version)] = obj
        self._latest[name] = max(self._latest.get(name, -1), version)
        self._demote_aged(name)
        return obj

    def _demote_aged(self, name: str) -> None:
        latest = self._latest[name]
        for (n, v), obj in list(self._objects.items()):
            if n != name or obj.mode != "replicated":
                continue
            if latest - v >= self.hot_versions:
                self.demote(n, v)

    def demote(self, name: str, version: int) -> ProtectedObject:
        """Re-encode one replicated object as RS shards (hot -> cold)."""
        obj = self._objects.get((name, version))
        if obj is None:
            raise ObjectNotFound(f"{name!r} v{version} not protected")
        if obj.mode == "encoded":
            return obj
        payload = obj.copies[0]
        obj.shards = self.code.encode(payload)
        obj.copies = []
        obj.mode = "encoded"
        return obj

    # ----------------------------------------------------------------- read

    def recover(
        self, name: str, version: int, lost_copies: int = 0, lost_shards: int = 0
    ) -> bytes:
        """Reconstruct the payload after losing copies/shards.

        ``lost_copies`` applies to replicated objects (copies are dropped from
        the front); ``lost_shards`` to encoded ones (shards dropped from the
        front, which exercises the non-systematic decode path).
        """
        obj = self._objects.get((name, version))
        if obj is None:
            raise ObjectNotFound(f"{name!r} v{version} not protected")
        if obj.mode == "replicated":
            survivors = obj.copies[lost_copies:]
            if not survivors:
                raise ObjectNotFound(
                    f"all {len(obj.copies)} replicas of {name!r} v{version} lost"
                )
            return survivors[0].tobytes()
        survivors = obj.shards[lost_shards:]
        return self.code.decode(survivors, obj.nbytes)

    # -------------------------------------------------------------- metrics

    def stored_bytes(self) -> int:
        """Total bytes consumed across both regimes."""
        return sum(o.stored_bytes for o in self._objects.values())

    def logical_bytes(self) -> int:
        """Bytes of unique payload protected (no protection overhead)."""
        return sum(o.nbytes for o in self._objects.values())

    def overhead(self) -> float:
        """stored/logical - 1; between RS overhead and replication overhead."""
        logical = self.logical_bytes()
        if logical == 0:
            return 0.0
        return self.stored_bytes() / logical - 1.0

    def evict(self, name: str, version: int) -> int:
        """Drop protection for one version; returns bytes freed."""
        obj = self._objects.pop((name, version), None)
        return obj.stored_bytes if obj else 0

    def modes(self) -> dict[tuple[str, int], str]:
        """Current protection mode per (name, version)."""
        return {k: o.mode for k, o in self._objects.items()}
