"""GF(2^8) arithmetic with NumPy lookup tables.

The Galois field underlying Reed–Solomon coding. Multiplication and division
are table lookups over exp/log tables built from the AES polynomial 0x11d,
vectorised so encoding whole shards is a handful of NumPy ops (per the
hpc-parallel guide: vectorise the hot loop, never iterate bytes in Python).
"""

from __future__ import annotations

import numpy as np

__all__ = ["GF256"]

_PRIMITIVE_POLY = 0x11D  # x^8 + x^4 + x^3 + x^2 + 1


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _PRIMITIVE_POLY
    # Duplicate so exp[(a+b) mod 255] can skip the modulo for a+b < 510.
    exp[255:510] = exp[:255]
    return exp, log


class GF256:
    """Vectorised GF(2^8) field operations.

    All element-wise operations accept scalars or uint8 arrays and broadcast
    like NumPy. Division by zero raises ZeroDivisionError (scalar) or
    ValueError (array containing zero divisors).
    """

    EXP, LOG = _build_tables()

    @classmethod
    def add(cls, a, b):
        """Addition (= subtraction) is XOR."""
        return np.bitwise_xor(np.asarray(a, np.uint8), np.asarray(b, np.uint8))

    sub = add

    @classmethod
    def mul(cls, a, b):
        """Element-wise product via log/exp tables."""
        a = np.asarray(a, np.uint8)
        b = np.asarray(b, np.uint8)
        out = cls.EXP[(cls.LOG[a].astype(np.int64) + cls.LOG[b])]
        # log(0) is garbage; zero inputs force zero output.
        return np.where((a == 0) | (b == 0), np.uint8(0), out)

    @classmethod
    def div(cls, a, b):
        """Element-wise quotient a / b."""
        a = np.asarray(a, np.uint8)
        b = np.asarray(b, np.uint8)
        if np.any(b == 0):
            if b.ndim == 0:
                raise ZeroDivisionError("GF256 division by zero")
            raise ValueError("GF256 division by array containing zero")
        out = cls.EXP[(cls.LOG[a].astype(np.int64) - cls.LOG[b]) % 255]
        return np.where(a == 0, np.uint8(0), out)

    @classmethod
    def inv(cls, a):
        """Multiplicative inverse."""
        return cls.div(np.uint8(1), a)

    @classmethod
    def pow(cls, a: int, n: int) -> int:
        """Scalar exponentiation a**n."""
        a = int(a)
        if a == 0:
            if n == 0:
                return 1
            if n < 0:
                raise ZeroDivisionError("0 ** negative in GF256")
            return 0
        return int(cls.EXP[(int(cls.LOG[a]) * n) % 255])

    # ---------------------------------------------------------- matrix ops

    @classmethod
    def matmul(cls, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product over GF(256).

        ``a`` is (m, k), ``b`` is (k, n); result is (m, n). Implemented as a
        k-term accumulation of vectorised scalar-row products, so the inner
        work is NumPy table lookups over whole rows.
        """
        a = np.asarray(a, np.uint8)
        b = np.asarray(b, np.uint8)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"bad shapes for GF matmul: {a.shape} x {b.shape}")
        m, k = a.shape
        n = b.shape[1]
        out = np.zeros((m, n), dtype=np.uint8)
        for j in range(k):
            # outer product of column j of a with row j of b, accumulated by XOR
            out ^= cls.mul(a[:, j : j + 1], b[j : j + 1, :])
        return out

    @classmethod
    def mat_inverse(cls, mat: np.ndarray) -> np.ndarray:
        """Invert a square matrix over GF(256) by Gauss-Jordan elimination."""
        mat = np.asarray(mat, np.uint8)
        n = mat.shape[0]
        if mat.shape != (n, n):
            raise ValueError(f"matrix must be square, got {mat.shape}")
        aug = np.concatenate([mat.copy(), np.eye(n, dtype=np.uint8)], axis=1)
        for col in range(n):
            # Find pivot.
            pivot_rows = np.nonzero(aug[col:, col])[0]
            if pivot_rows.size == 0:
                raise np.linalg.LinAlgError("singular matrix over GF256")
            pivot = col + int(pivot_rows[0])
            if pivot != col:
                aug[[col, pivot]] = aug[[pivot, col]]
            # Normalise pivot row.
            aug[col] = cls.div(aug[col], aug[col, col])
            # Eliminate the column everywhere else.
            for row in range(n):
                if row != col and aug[row, col]:
                    aug[row] ^= cls.mul(aug[row, col], aug[col])
        return aug[:, n:].copy()

    @classmethod
    def vandermonde(cls, rows: int, cols: int) -> np.ndarray:
        """Vandermonde matrix V[i, j] = (i+1)^j over GF(256).

        Using generators i+1 (not i) keeps every row nonzero; any ``cols``
        rows of this matrix are linearly independent for rows <= 255, the
        property RS decoding relies on.
        """
        if rows > 255:
            raise ValueError("GF256 Vandermonde supports at most 255 rows")
        out = np.empty((rows, cols), dtype=np.uint8)
        for i in range(rows):
            for j in range(cols):
                out[i, j] = cls.pow(i + 1, j)
        return out
