"""GF(2^8) arithmetic with NumPy lookup tables.

The Galois field underlying Reed–Solomon coding. Element-wise products are a
single fancy-index into a precomputed 256x256 multiplication table (~64 KB),
built once from exp/log tables over the AES polynomial 0x11d — no ``where()``
masks on the hot path, zero rows/columns are baked into the table.

Matrix products pick between two table-driven kernels:

* **row-LUT** (large operands): for each coefficient ``a[i, j]`` the 256-byte
  row ``MUL[a[i, j]]`` is gathered over ``b[j]`` with ``np.take`` and
  XOR-accumulated. The per-coefficient LUT lives in L1 cache, which makes
  this ~25x faster than the seed kernel on megabyte shards (and ~12x faster
  than a one-shot 3-d gather of the full table, which thrashes cache).
* **3-d gather** (small operands): one fancy-index ``MUL[a[:, :, None],
  b[None, :, :]]`` reduced with XOR along ``k`` — no Python loop at all,
  fastest when the (m, k, n) intermediate is tiny (decode matrices,
  Gauss-Jordan pivots).

Both kernels are bit-identical (property-tested in tests/corec).
"""

from __future__ import annotations

import numpy as np

__all__ = ["GF256"]

_PRIMITIVE_POLY = 0x11D  # x^8 + x^4 + x^3 + x^2 + 1

# Column count above which matmul switches from the one-shot 3-d gather to
# the row-LUT kernel (the gather's (m, k, n) intermediate stops fitting in
# cache long before this, but the crossover is flat around here).
_ROWLUT_MIN_COLS = 1024


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _PRIMITIVE_POLY
    # Duplicate so exp[(a+b) mod 255] can skip the modulo for a+b < 510.
    exp[255:510] = exp[:255]
    return exp, log


def _build_mul_table(exp: np.ndarray, log: np.ndarray) -> np.ndarray:
    """Full 256x256 product table; row/column 0 forced to zero."""
    mul = exp[log[:, None].astype(np.int64) + log[None, :]].copy()
    mul[0, :] = 0
    mul[:, 0] = 0
    return mul


def _build_div_table(exp: np.ndarray, log: np.ndarray) -> np.ndarray:
    """Full 256x256 quotient table a/b; column 0 (b=0) is left zero and
    guarded by the caller, row 0 (a=0) is zero."""
    div = exp[(log[:, None].astype(np.int64) - log[None, :]) % 255].copy()
    div[0, :] = 0
    div[:, 0] = 0
    return div


class GF256:
    """Vectorised GF(2^8) field operations.

    All element-wise operations accept scalars or uint8 arrays and broadcast
    like NumPy. Division by zero raises ZeroDivisionError (scalar) or
    ValueError (array containing zero divisors).
    """

    EXP, LOG = _build_tables()
    MUL = _build_mul_table(EXP, LOG)
    DIV = _build_div_table(EXP, LOG)

    @classmethod
    def add(cls, a, b):
        """Addition (= subtraction) is XOR."""
        return np.bitwise_xor(np.asarray(a, np.uint8), np.asarray(b, np.uint8))

    sub = add

    @classmethod
    def mul(cls, a, b):
        """Element-wise product: one gather from the 256x256 table."""
        return cls.MUL[np.asarray(a, np.uint8), np.asarray(b, np.uint8)]

    @classmethod
    def div(cls, a, b):
        """Element-wise quotient a / b."""
        a = np.asarray(a, np.uint8)
        b = np.asarray(b, np.uint8)
        if np.any(b == 0):
            if b.ndim == 0:
                raise ZeroDivisionError("GF256 division by zero")
            raise ValueError("GF256 division by array containing zero")
        return cls.DIV[a, b]

    @classmethod
    def inv(cls, a):
        """Multiplicative inverse."""
        return cls.div(np.uint8(1), a)

    @classmethod
    def pow(cls, a: int, n: int) -> int:
        """Scalar exponentiation a**n."""
        a = int(a)
        if a == 0:
            if n == 0:
                return 1
            if n < 0:
                raise ZeroDivisionError("0 ** negative in GF256")
            return 0
        return int(cls.EXP[(int(cls.LOG[a]) * n) % 255])

    # ---------------------------------------------------------- matrix ops

    @classmethod
    def matmul(cls, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product over GF(256).

        ``a`` is (m, k), ``b`` is (k, n); result is (m, n). Dispatches on
        ``n`` between the row-LUT and 3-d gather kernels (module docstring);
        both are exact, only speed differs.
        """
        a = np.asarray(a, np.uint8)
        b = np.asarray(b, np.uint8)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"bad shapes for GF matmul: {a.shape} x {b.shape}")
        if b.shape[1] >= _ROWLUT_MIN_COLS:
            return cls._matmul_rowlut(a, b)
        return np.bitwise_xor.reduce(cls.MUL[a[:, :, None], b[None, :, :]], axis=1)

    @classmethod
    def _matmul_rowlut(cls, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Row-LUT kernel: per-coefficient 256 B table gathers, XOR-folded."""
        m, k = a.shape
        n = b.shape[1]
        out = np.zeros((m, n), dtype=np.uint8)
        scratch = np.empty(n, dtype=np.uint8)
        for i in range(m):
            row = out[i]
            for j in range(k):
                coeff = a[i, j]
                if coeff == 0:
                    continue
                if coeff == 1:
                    row ^= b[j]
                else:
                    np.take(cls.MUL[coeff], b[j], out=scratch)
                    row ^= scratch
        return out

    @classmethod
    def mat_inverse(cls, mat: np.ndarray) -> np.ndarray:
        """Invert a square matrix over GF(256) by Gauss-Jordan elimination."""
        mat = np.asarray(mat, np.uint8)
        n = mat.shape[0]
        if mat.shape != (n, n):
            raise ValueError(f"matrix must be square, got {mat.shape}")
        aug = np.concatenate([mat.copy(), np.eye(n, dtype=np.uint8)], axis=1)
        for col in range(n):
            # Find pivot.
            pivot_rows = np.nonzero(aug[col:, col])[0]
            if pivot_rows.size == 0:
                raise np.linalg.LinAlgError("singular matrix over GF256")
            pivot = col + int(pivot_rows[0])
            if pivot != col:
                aug[[col, pivot]] = aug[[pivot, col]]
            # Normalise pivot row.
            aug[col] = cls.div(aug[col], aug[col, col])
            # Eliminate the column everywhere else.
            for row in range(n):
                if row != col and aug[row, col]:
                    aug[row] ^= cls.mul(aug[row, col], aug[col])
        return aug[:, n:].copy()

    @classmethod
    def vandermonde(cls, rows: int, cols: int) -> np.ndarray:
        """Vandermonde matrix V[i, j] = (i+1)^j over GF(256).

        Using generators i+1 (not i) keeps every row nonzero; any ``cols``
        rows of this matrix are linearly independent for rows <= 255, the
        property RS decoding relies on.
        """
        if rows > 255:
            raise ValueError("GF256 Vandermonde supports at most 255 rows")
        gens = np.arange(1, rows + 1)
        exps = np.arange(cols)
        logs = cls.LOG[gens].astype(np.int64)
        return cls.EXP[(logs[:, None] * exps[None, :]) % 255].copy()
