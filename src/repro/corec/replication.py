"""N-way replication for staged fragments.

The simpler of CoREC's two protection mechanisms: every fragment written to
its home server is mirrored onto ``n_replicas - 1`` buddy servers. Fast to
write and to recover, but with (n_replicas - 1)x storage overhead — exactly
the trade-off CoREC's hybrid policy balances against erasure coding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.descriptors.odsc import ObjectDescriptor
from repro.errors import ConfigError, ObjectNotFound
from repro.staging.server import StagingServer

__all__ = ["ReplicationScheme"]


@dataclass(frozen=True)
class ReplicationScheme:
    """Buddy replication across a server group.

    Parameters
    ----------
    n_replicas:
        Total copies per fragment (1 = no protection). Replicas are placed on
        the ``n_replicas - 1`` servers following the home server cyclically,
        which both spreads load and guarantees replicas never share a server
        with the primary.
    """

    n_replicas: int = 2

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ConfigError(f"n_replicas must be >= 1, got {self.n_replicas}")

    def replica_servers(self, home: int, num_servers: int) -> list[int]:
        """Server ids for all copies, primary first."""
        if self.n_replicas > num_servers:
            raise ConfigError(
                f"cannot place {self.n_replicas} replicas on {num_servers} servers"
            )
        return [(home + i) % num_servers for i in range(self.n_replicas)]

    def put(
        self,
        servers: list[StagingServer],
        home: int,
        desc: ObjectDescriptor,
        data: np.ndarray,
    ) -> list[int]:
        """Write the fragment to the primary and each buddy server."""
        placed = self.replica_servers(home, len(servers))
        for sid in placed:
            servers[sid].put(desc, data)
        return placed

    def get(
        self,
        servers: list[StagingServer],
        home: int,
        desc: ObjectDescriptor,
        failed: set[int] | None = None,
    ) -> np.ndarray:
        """Read from the first live replica; raise if all copies are lost."""
        failed = failed or set()
        last_err: Exception | None = None
        for sid in self.replica_servers(home, len(servers)):
            if sid in failed:
                continue
            try:
                return servers[sid].get(desc)
            except ObjectNotFound as err:  # replica absent on this server
                last_err = err
        raise ObjectNotFound(
            f"all {self.n_replicas} replicas of {desc} unavailable"
        ) from last_err

    @property
    def storage_overhead(self) -> float:
        """Extra storage fraction relative to unprotected data."""
        return float(self.n_replicas - 1)

    def tolerates(self, failures: int) -> bool:
        """True when the scheme survives ``failures`` simultaneous server losses."""
        return failures <= self.n_replicas - 1
