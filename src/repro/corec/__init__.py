"""CoREC-style data resilience for the staging area: GF(256) arithmetic,
systematic Reed-Solomon erasure coding, buddy replication, and the hybrid
hot/cold protection policy."""

from repro.corec.gf256 import GF256
from repro.corec.policy import HybridPolicy, ProtectedObject
from repro.corec.reedsolomon import RSCode, Shard
from repro.corec.replication import ReplicationScheme

__all__ = [
    "GF256",
    "HybridPolicy",
    "ProtectedObject",
    "RSCode",
    "Shard",
    "ReplicationScheme",
]
