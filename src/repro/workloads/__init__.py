"""Synthetic workload builders and access patterns (paper §IV)."""

from repro.workloads.patterns import AccessPattern, WRITE_THEN_READ, s3d_field_set
from repro.workloads.synthetic import (
    RUNTIME_DOMAIN,
    case1_specs,
    case2_specs,
    coupled_specs,
    s3d_specs,
)

__all__ = [
    "AccessPattern",
    "WRITE_THEN_READ",
    "s3d_field_set",
    "RUNTIME_DOMAIN",
    "case1_specs",
    "case2_specs",
    "coupled_specs",
    "s3d_specs",
]
