"""Data access patterns for synthetic workloads.

The paper evaluates the pattern "write immediately followed by read": each
step, the simulation writes the coupled variables and the analytic reads
them right away. Real workflows (S3D) extend this with multiple fields at
different frequencies; :class:`AccessPattern` captures which variables a
consumer reads at which step multiples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = ["AccessPattern", "WRITE_THEN_READ", "s3d_field_set"]


@dataclass(frozen=True)
class AccessPattern:
    """Which variables flow at which step frequency.

    ``frequencies[var] = k`` means the variable couples every ``k`` steps
    (k=1: every step, the paper's synthetic case).
    """

    name: str
    frequencies: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.frequencies:
            raise ConfigError("pattern needs at least one variable")
        for var, k in self.frequencies.items():
            if k <= 0:
                raise ConfigError(f"variable {var!r} frequency must be positive")

    @property
    def variables(self) -> list[str]:
        return sorted(self.frequencies)

    def variables_at(self, step: int) -> list[str]:
        """Variables exchanged at ``step``."""
        return [v for v in self.variables if step % self.frequencies[v] == 0]

    def transfers_per_cycle(self, steps: int) -> int:
        """Total variable transfers over ``steps`` coupling steps."""
        return sum(len(self.variables_at(s)) for s in range(steps))


WRITE_THEN_READ = AccessPattern(name="write-then-read", frequencies={"field": 1})


def s3d_field_set() -> AccessPattern:
    """An S3D-like multi-field pattern.

    The paper's motivation: "dozens of 3D scalar and vector field components
    (fluid velocity, molecular species concentrations, temperature, pressure,
    density, etc)" with analyses at different temporal frequencies. We model
    a representative subset: bulk fields every step, diagnostics less often.
    """
    freqs: dict[str, int] = {
        "velocity_x": 1,
        "velocity_y": 1,
        "velocity_z": 1,
        "temperature": 1,
        "pressure": 1,
        "density": 1,
        "mixture_fraction": 2,
        "scalar_dissipation": 2,
        "heat_release": 4,
        "vorticity": 4,
    }
    return AccessPattern(name="s3d", frequencies=freqs)
