"""Synthetic workload builders.

Two views of the same experiments:

* ``*_specs`` builders return :class:`~repro.runtime.app.ComponentSpec` lists
  for the *threaded runtime* — real execution at laptop scale (the domain is
  shrunk, the structure is identical), used by functional tests and examples;
* the perfsim configurations for the paper's actual scales live in
  :mod:`repro.perfsim.config` (Tables II/III) and are driven directly by the
  benchmark harness.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.geometry.domain import Domain
from repro.runtime.app import ComponentSpec
from repro.workloads.patterns import AccessPattern, WRITE_THEN_READ, s3d_field_set

__all__ = [
    "RUNTIME_DOMAIN",
    "coupled_specs",
    "case1_specs",
    "case2_specs",
    "s3d_specs",
]

# Laptop-scale stand-in for the paper's 512x512x256 volume: same rank
# (3-D), same producer/consumer structure, ~256 KiB per step.
RUNTIME_DOMAIN = Domain((32, 32, 32))


def coupled_specs(
    num_steps: int = 12,
    sim_period: int = 4,
    analytic_period: int = 5,
    variables: list[str] | None = None,
    domain: Domain = RUNTIME_DOMAIN,
    subset_fraction: float = 1.0,
    sim_ranks: int = 8,
    analytic_ranks: int = 4,
) -> list[ComponentSpec]:
    """The paper's two-component coupled workflow at runtime scale."""
    if num_steps <= 0:
        raise ConfigError("num_steps must be positive")
    variables = variables or ["field"]
    return [
        ComponentSpec(
            name="simulation",
            kind="producer",
            nranks=sim_ranks,
            num_steps=num_steps,
            checkpoint_period=sim_period,
            variables=list(variables),
            domain=domain,
            subset_fraction=subset_fraction,
        ),
        ComponentSpec(
            name="analytic",
            kind="consumer",
            nranks=analytic_ranks,
            num_steps=num_steps,
            checkpoint_period=analytic_period,
            variables=list(variables),
            domain=domain,
            subset_fraction=subset_fraction,
        ),
    ]


def case1_specs(subset_fraction: float, num_steps: int = 12) -> list[ComponentSpec]:
    """Case 1: write different subsets of the data domain each step."""
    return coupled_specs(
        num_steps=num_steps,
        sim_period=4,
        analytic_period=5,
        subset_fraction=subset_fraction,
    )


def case2_specs(checkpoint_period: int, num_steps: int = 12) -> list[ComponentSpec]:
    """Case 2: full domain, varying checkpoint frequency (paper: 2-6 ts)."""
    if checkpoint_period <= 0:
        raise ConfigError("checkpoint_period must be positive")
    return coupled_specs(
        num_steps=num_steps,
        sim_period=checkpoint_period,
        analytic_period=checkpoint_period + 1,
    )


def s3d_specs(
    num_steps: int = 8,
    pattern: AccessPattern | None = None,
    domain: Domain = RUNTIME_DOMAIN,
) -> list[ComponentSpec]:
    """An S3D-like DNS + visualization workflow (multi-field coupling).

    The threaded runtime exchanges every variable every step (the pattern's
    lower-frequency fields are exercised by the perfsim harness); this spec
    keeps the full field set so replay covers many variables per step.
    """
    pattern = pattern or s3d_field_set()
    specs = coupled_specs(
        num_steps=num_steps,
        sim_period=4,
        analytic_period=5,
        variables=pattern.variables,
        domain=domain,
        sim_ranks=16,
        analytic_ranks=8,
    )
    specs[0].name = "s3d-dns"
    specs[1].name = "s3d-viz"
    return specs
