"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors. Subsystems
raise the most specific subclass that applies.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GeometryError",
    "StagingError",
    "ObjectNotFound",
    "VersionConflict",
    "ServerUnavailable",
    "TransientServerError",
    "DeadlineExceeded",
    "ServerBusy",
    "StagingDegradedError",
    "EncodingError",
    "DecodingError",
    "ConsistencyError",
    "ReplayError",
    "CheckpointError",
    "ProcessFailure",
    "CommunicatorRevoked",
    "SimulationError",
    "ConfigError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class GeometryError(ReproError):
    """Invalid bounding box or domain-decomposition operation."""


class StagingError(ReproError):
    """Generic staging-area failure."""


class ObjectNotFound(StagingError):
    """A get/query referenced a (name, version, region) not present in staging."""


class VersionConflict(StagingError):
    """A put would overwrite an existing version with different payload."""


class ServerUnavailable(StagingError):
    """A staging server suffered a fail-stop loss; requests to it cannot
    succeed until it is rebuilt (clients must not retry, only route around)."""

    def __init__(self, server_id: int, message: str = ""):
        self.server_id = server_id
        super().__init__(message or f"staging server {server_id} unavailable")


class TransientServerError(StagingError):
    """A staging-server request failed transiently (timeout, dropped message);
    safe to retry with backoff."""

    def __init__(self, server_id: int, message: str = ""):
        self.server_id = server_id
        super().__init__(message or f"transient failure on staging server {server_id}")


class DeadlineExceeded(TransientServerError):
    """A request's propagated deadline expired before the server ran it.

    Raised server-side (the request is dropped without executing) and
    re-raised typed on the client. Subclassing :class:`TransientServerError`
    folds it into the existing retry path: the client's ``_server_op`` loop
    retries while its own budget allows and gives up when the same deadline
    that expired on the wire has expired locally too.
    """

    def __init__(self, server_id: int, message: str = ""):
        super().__init__(
            server_id,
            message or f"request deadline expired before staging server {server_id} ran it",
        )


class ServerBusy(TransientServerError):
    """The server's bounded in-flight queue is full; the request was shed.

    Load-shedding admission control (depth via ``REPRO_SERVER_QUEUE``):
    rather than queueing without bound and letting latency collapse, the
    server refuses immediately with this typed, retryable error — the
    client's backoff becomes the flow-control signal.
    """

    def __init__(self, server_id: int, message: str = ""):
        super().__init__(
            server_id, message or f"staging server {server_id} queue full; request shed"
        )


class StagingDegradedError(StagingError):
    """More staging servers are lost than the protection scheme tolerates;
    the requested data cannot be served or reconstructed."""


class EncodingError(ReproError):
    """Erasure-coding encode failed (bad parameters or shard layout)."""


class DecodingError(ReproError):
    """Erasure-coding decode failed (too many erasures or corrupt shards)."""


class ConsistencyError(ReproError):
    """A crash-consistency invariant was violated.

    Raised by the consistency checker when a component observes a different
    (version, payload) than it did during its initial execution — exactly the
    failure mode the paper's data-logging mechanism exists to prevent.
    """


class ReplayError(ReproError):
    """Event replay could not honour the logged history."""


class CheckpointError(ReproError):
    """Checkpoint capture or restore failed."""


class ProcessFailure(ReproError):
    """A simulated fail-stop failure (used as control flow by ULFM).

    ``kind="node"`` means the whole node died, taking any node-local
    checkpoint copies with it (multi-level checkpointing falls back to the
    last durable tier).
    """

    def __init__(
        self, rank: int, component: str = "", at_step: int = -1, kind: str = "process"
    ):
        self.rank = rank
        self.component = component
        self.at_step = at_step
        self.kind = kind
        super().__init__(
            f"fail-stop {kind} failure of rank {rank}"
            + (f" in component {component!r}" if component else "")
            + (f" at step {at_step}" if at_step >= 0 else "")
        )


class CommunicatorRevoked(ReproError):
    """The communicator was revoked after a peer failure (ULFM semantics)."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class ConfigError(ReproError):
    """An experiment configuration is invalid or internally inconsistent."""
