"""Staging substrate: versioned object store, spatial index, DHT placement,
servers and the client-side geometric put/get API."""

from repro.staging.client import StagingClient, StagingGroup
from repro.staging.cow import (
    StagingCheckpointer,
    compose_chain,
    is_cow_snapshot,
    snapshot_cost_bytes,
)
from repro.staging.hashing import PlacementMap
from repro.staging.index import IndexEntry, SpatialIndex
from repro.staging.resilience import (
    GroupHealth,
    ProtectionConfig,
    ProtectionIndex,
    PutRecord,
    RetryPolicy,
    rebuild_server,
)
from repro.staging.server import StagingServer
from repro.staging.store import ObjectStore, StoredObject

__all__ = [
    "StagingClient",
    "StagingGroup",
    "StagingCheckpointer",
    "compose_chain",
    "is_cow_snapshot",
    "snapshot_cost_bytes",
    "PlacementMap",
    "IndexEntry",
    "SpatialIndex",
    "StagingServer",
    "ObjectStore",
    "StoredObject",
    "GroupHealth",
    "ProtectionConfig",
    "ProtectionIndex",
    "PutRecord",
    "RetryPolicy",
    "rebuild_server",
]
