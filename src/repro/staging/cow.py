"""Incremental copy-on-write checkpointing for the staging group.

The seed's coordinated checkpoint deep-copies every server's full container
structure on every epoch — O(total fragments) even when almost nothing
changed. This module makes checkpoint capture O(mutations since the last
epoch) instead:

* every mutable staging layer (:class:`~repro.staging.store.ObjectStore`,
  :class:`~repro.staging.index.SpatialIndex`, the server blob side-store and
  the group :class:`~repro.staging.resilience.ProtectionIndex`) keeps a
  **mutation journal** — one tuple per effective put/evict/clear;
* sealing an epoch detaches those journals in O(1) per layer (a list swap),
  which is the *only* work done under the service's quiescence gate;
* the sealed journals are packaged into a **delta** outside any lock, and
  appended to a chain hanging off a full **base** snapshot;
* restore composes ``base + deltas`` back into the seed snapshot format,
  so every existing restore path (including legacy full snapshots) keeps
  working unchanged.

Chains are bounded: once a chain exceeds ``max_chain`` deltas the checkpointer
folds it into a new base (compaction) outside the gate, so restore cost and
chain memory never creep. When an epoch's journal grows to the same order as
the live state (high churn), sealing falls back to a fresh full capture —
replaying the journal would cost more than re-snapshotting.

All journaled values (fragments, index entries, protection records, blob
payloads) are immutable by repo convention, so journals and deltas share
them with the live structures — a delta's memory cost is its container
tuples, never payload bytes.
"""

from __future__ import annotations

from concurrent.futures import Future
from time import perf_counter
from typing import TYPE_CHECKING

from repro.obs import registry as _obs

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.staging.client import StagingGroup

__all__ = [
    "COW_FORMAT",
    "StagingCheckpointer",
    "is_cow_snapshot",
    "compose_chain",
    "snapshot_cost_bytes",
    "full_snapshot_bytes",
]

COW_FORMAT = "corec-cow-v1"

_CHAIN_LENGTH = _obs.gauge("checkpoint.chain.length")
_COMPACTIONS = _obs.counter("checkpoint.compactions")
_FULL_CAPTURES = _obs.counter("checkpoint.captures.full")
_DELTA_CAPTURES = _obs.counter("checkpoint.captures.incremental")
_DELTA_BYTES = _obs.counter("checkpoint.delta.bytes")
_DELTA_RATIO = _obs.histogram("checkpoint.delta.ratio")
_COMPOSE_SECONDS = _obs.histogram("checkpoint.compose.seconds")


def is_cow_snapshot(snap: dict) -> bool:
    """True when ``snap`` is an incremental (chain) snapshot."""
    return snap.get("format") == COW_FORMAT


# ----------------------------------------------------------- journal replay
#
# Each _compose_* helper replays one layer's journals on top of that layer's
# base snapshot, maintaining the running aggregates the live structures keep
# (so a composed snapshot restores without any rescans). Replay mirrors the
# recording sites exactly: journals only record *effective* mutations, so no
# existence checks beyond what the live code does are needed.


def _compose_store(base: dict, journals: list[list[tuple]]) -> dict:
    objects = {k: list(v) for k, v in base["objects"].items()}
    nbytes = base["bytes"]
    if "count" in base and "versions" in base:
        count = base["count"]
        versions = {name: set(vs) for name, vs in base["versions"].items()}
    else:  # legacy aggregate-free base
        count = sum(len(v) for v in objects.values())
        versions = {}
        for name, version in objects:
            versions.setdefault(name, set()).add(version)
    for journal in journals:
        for mut in journal:
            op = mut[0]
            if op == "put":
                obj = mut[1]
                objects.setdefault(obj.desc.key, []).append(obj)
                nbytes += obj.nbytes
                count += 1
                versions.setdefault(obj.desc.name, set()).add(obj.desc.version)
            elif op == "evict":
                _, name, version = mut
                frags = objects.pop((name, version), None)
                if frags:
                    nbytes -= sum(f.nbytes for f in frags)
                    count -= len(frags)
                    vs = versions.get(name)
                    if vs is not None:
                        vs.discard(version)
                        if not vs:
                            del versions[name]
            else:  # clear
                objects = {}
                nbytes = 0
                count = 0
                versions = {}
    return {"objects": objects, "bytes": nbytes, "count": count, "versions": versions}


def _compose_index(base: dict, journals: list[list[tuple]]) -> dict:
    entries = {k: list(v) for k, v in base["entries"].items()}
    agg = base.get("aggregates")
    if agg is not None:
        versions = {name: set(vs) for name, vs in agg["versions"].items()}
        total_bytes = agg["total_bytes"]
        logged_bytes = agg["logged_bytes"]
        count = agg["count"]
        volumes = dict(agg["volumes"])
    else:  # legacy aggregate-free base
        versions = {}
        total_bytes = logged_bytes = count = 0
        volumes = {}
        for (name, version), ents in entries.items():
            versions.setdefault(name, set()).add(version)
            count += len(ents)
            for e in ents:
                total_bytes += e.nbytes
                if e.logged:
                    logged_bytes += e.nbytes
                volumes[(name, version)] = (
                    volumes.get((name, version), 0) + e.desc.bbox.volume
                )
    for journal in journals:
        for mut in journal:
            op = mut[0]
            if op == "insert":
                e = mut[1]
                key = e.desc.key
                entries.setdefault(key, []).append(e)
                versions.setdefault(e.desc.name, set()).add(e.desc.version)
                total_bytes += e.nbytes
                if e.logged:
                    logged_bytes += e.nbytes
                count += 1
                volumes[key] = volumes.get(key, 0) + e.desc.bbox.volume
            elif op == "remove":
                _, name, version = mut
                dropped = entries.pop((name, version), None)
                if dropped:
                    vs = versions.get(name)
                    if vs is not None:
                        vs.discard(version)
                        if not vs:
                            del versions[name]
                    for e in dropped:
                        total_bytes -= e.nbytes
                        if e.logged:
                            logged_bytes -= e.nbytes
                    count -= len(dropped)
                    volumes.pop((name, version), None)
            else:  # clear
                entries = {}
                versions = {}
                total_bytes = logged_bytes = count = 0
                volumes = {}
    return {
        "entries": entries,
        "aggregates": {
            "versions": versions,
            "total_bytes": total_bytes,
            "logged_bytes": logged_bytes,
            "count": count,
            "volumes": volumes,
        },
    }


def _compose_blobs(base: dict, journals: list[list[tuple]]) -> dict:
    blobs = {k: dict(v) for k, v in base.items()}
    for journal in journals:
        for mut in journal:
            if mut[0] == "blob_put":
                _, key, blob_key, arr = mut
                blobs.setdefault(key, {})[blob_key] = arr
            else:  # blob_evict
                blobs.pop(mut[1], None)
    return blobs


def _compose_protection(base: dict, journals: list[list[tuple]]) -> dict:
    records = {k: dict(v) for k, v in base["records"].items()}
    for journal in journals:
        for mut in journal:
            if mut[0] == "add":
                rec = mut[1]
                records.setdefault(rec.key, {})[rec.record_id] = rec
            else:  # evict
                records.pop(mut[1], None)
    return {"records": records}


def compose_chain(chain: dict, executor=None) -> dict:
    """Fold ``base + deltas`` into one seed-format full snapshot.

    Pure function of immutable inputs — safe to run outside every lock, and
    never mutates the chain it reads (compaction and older snapshots may
    still reference the same base/delta objects). Per-server images are
    independent, so passing an ``executor`` fans their composition out
    across workers (the recovery path composes every server's chain at
    once); the result is bit-identical to the serial fold.
    """
    t0 = perf_counter()
    base = chain["base"]
    deltas = chain["deltas"]

    def compose_server(i: int, server_base: dict) -> dict:
        journals = [d["servers"][i] for d in deltas]
        return {
            "store": _compose_store(
                server_base["store"], [j["store"] for j in journals]
            ),
            "index": _compose_index(
                server_base["index"], [j["index"] for j in journals]
            ),
            "blobs": _compose_blobs(
                server_base.get("blobs", {}), [j["blobs"] for j in journals]
            ),
        }

    if executor is not None and len(base["servers"]) > 1:
        servers = list(
            executor.map(compose_server, range(len(base["servers"])), base["servers"])
        )
    else:
        servers = [compose_server(i, sb) for i, sb in enumerate(base["servers"])]
    frontier = dict(base["frontier"])
    for d in deltas:
        # Read frontiers only advance within a chain (restores rebase the
        # chain), so replay is a plain per-key overwrite.
        frontier.update(d["frontier"])
    protection = _compose_protection(
        base["protection"], [d["protection"] for d in deltas]
    )
    health = deltas[-1]["health"] if deltas else base["health"]
    composed = {
        "servers": servers,
        "frontier": frontier,
        "protection": protection,
        "health": health,
    }
    _COMPOSE_SECONDS.record(perf_counter() - t0)
    return composed


# ------------------------------------------------------------ cost helpers


def full_snapshot_bytes(snap: dict) -> int:
    """Payload bytes referenced by a seed-format full snapshot."""
    total = 0
    for server in snap["servers"]:
        store = server["store"] if "store" in server else server
        total += store["bytes"]
        for bucket in server.get("blobs", {}).values():
            total += sum(int(b.nbytes) for b in bucket.values())
    return total


def snapshot_cost_bytes(snap: dict) -> int:
    """Bytes a checkpoint of ``snap`` newly persists.

    For an incremental snapshot that is the latest delta's payload bytes
    (the base and earlier deltas were persisted by earlier checkpoints);
    for a freshly rebased chain or a full snapshot it is the full image.
    """
    if is_cow_snapshot(snap):
        deltas = snap["chain"]["deltas"]
        if deltas:
            return deltas[-1]["nbytes"]
        return full_snapshot_bytes(snap["chain"]["base"])
    return full_snapshot_bytes(snap)


# ------------------------------------------------------------- checkpointer


class StagingCheckpointer:
    """Owns the journal lifecycle and the base + delta chain for one group.

    Locking contract: :meth:`capture_full` and :meth:`seal` must be called
    while the owner holds whatever makes the group quiescent (the service's
    metadata lock + data-plane gate); they do O(state) and O(1) work
    respectively. :meth:`materialize`, :func:`compose_chain` and compaction
    run on immutable sealed data and need no group locks — the owner only
    has to serialize whole checkpoint/restore operations against each other
    (the service's ``_ckpt_lock``).
    """

    def __init__(
        self,
        group: StagingGroup,
        max_chain: int = 8,
        full_fallback_ratio: float = 1.0,
    ) -> None:
        self.group = group
        # Deltas kept before folding the chain into a new base.
        self.max_chain = max_chain
        # Seal falls back to a full capture once journal length reaches
        # ratio × (2 × live fragments): past that point replaying the
        # journal costs as much as re-copying the containers.
        self.full_fallback_ratio = full_fallback_ratio
        self.epoch = 0
        self.journaling = False
        # Live state diverged from the journal lineage (legacy restore,
        # server rebuild): the next capture must be full.
        self.dirty = False
        self._base: dict | None = None
        self._deltas: list[dict] = []
        # Journals detached-but-not-yet-freed by a re-base under the gate.
        # A discarded journal may hold the last reference to megabytes of
        # evicted fragment payloads; dropping it is a deallocation cascade
        # that must not run inside the quiescence window. The owner calls
        # :meth:`release_discarded` after reopening the data plane.
        self._discarded: list = []
        # Called (no args) whenever the checkpoint epoch advances. The GC
        # subscribes: an epoch boundary is the retention event after which
        # pre-epoch versions become collectable, so it refreshes candidates.
        # Listeners run under the quiescence gate — they must be O(small).
        self.epoch_listeners: list = []

    def _notify_epoch(self) -> None:
        for listener in self.epoch_listeners:
            listener()

    # ------------------------------------------------------------- queries

    @property
    def chain_length(self) -> int:
        return len(self._deltas)

    def wants_full(self) -> bool:
        """True when the next capture cannot (or should not) be a delta."""
        if not self.journaling or self.dirty or self._base is None:
            return True
        return self._delta_too_large()

    def _delta_too_large(self) -> bool:
        mutations = sum(s.journal_mutation_count() for s in self.group.servers)
        mutations += self.group.records.journal_len()
        if mutations <= 64:
            return False
        fragments = sum(s.store.object_count for s in self.group.servers)
        return mutations >= self.full_fallback_ratio * 2 * max(1, fragments)

    def mark_dirty(self) -> None:
        """Invalidate the chain: live state no longer matches the journals."""
        self.dirty = True

    # ------------------------------------------------------------- capture

    def _reset_journals(self) -> None:
        """(Re)start every layer's journal empty — the new epoch base.

        The discarded journals are parked on ``self._discarded`` instead of
        being dropped: freeing them can cascade through every payload the
        epoch evicted, and this method runs under the quiescence gate.
        """
        for server in self.group.servers:
            server.enable_journal()
            self._discarded.append(server.seal_delta())
        self.group.records.enable_journal()
        self._discarded.append(self.group.records.seal_journal())

    def release_discarded(self) -> None:
        """Free journals parked by a re-base; call outside the gate."""
        self._discarded = []

    def capture_full(
        self, frontier: dict, *, start_chain: bool = True, parallel: bool | None = None
    ) -> dict:
        """Capture a seed-format full snapshot (caller holds the gate).

        With ``start_chain`` the chain rebases onto this capture and
        journaling (re)starts, so subsequent captures are deltas against it;
        without it (the seed-compatible ``full=True`` path on a group that
        never checkpointed incrementally) journaling stays off and no
        per-mutation overhead is ever paid.
        """
        servers = self.group.servers
        if parallel is None:
            parallel = self.group.parallel and len(servers) > 1
        if parallel:
            futures: list[Future] = [
                self.group.executor.submit(s.snapshot) for s in servers
            ]
            server_snaps = [f.result() for f in futures]
        else:
            server_snaps = [s.snapshot() for s in servers]
        snap = {
            "servers": server_snaps,
            "frontier": dict(frontier),
            "protection": self.group.records.snapshot(),
            "health": self.group.health.snapshot(),
        }
        if start_chain:
            self._reset_journals()
            self.epoch += 1
            # Park the superseded chain too: at high churn the old base holds
            # the last references to every payload evicted since it was
            # captured, and freeing those under the gate stalls the data
            # plane for longer than the capture itself.
            self._discarded.append((self._base, self._deltas))
            self._base = snap
            self._deltas = []
            self.dirty = False
            self.journaling = True
            _CHAIN_LENGTH.set(0)
            self._notify_epoch()
        _FULL_CAPTURES.inc()
        return snap

    def chain_view(self) -> dict:
        """The current chain as an immutable snapshot value."""
        return {
            "format": COW_FORMAT,
            "epoch": self.epoch,
            "chain": {"base": self._base, "deltas": tuple(self._deltas)},
        }

    def seal(self) -> dict:
        """Flip the epoch: detach every layer's journal (caller holds the
        gate). O(1) per layer — this is the entire quiescence-window cost of
        an incremental checkpoint. The caller attaches the frontier delta."""
        sealed_servers = [s.seal_delta() for s in self.group.servers]
        self.epoch += 1
        self._notify_epoch()
        return {
            "epoch": self.epoch,
            "servers": sealed_servers,
            "protection": self.group.records.seal_journal(),
            # Health is a few ints per server; a full copy is cheaper than
            # journaling its transitions.
            "health": self.group.health.snapshot(),
        }

    def materialize(self, sealed: dict) -> dict:
        """Package a sealed epoch into a delta and return the new snapshot.

        Runs outside every group lock and in O(servers), not O(mutations):
        each layer accumulated its journaled byte/mutation totals at record
        time, so packaging only sums per-server counters. Compacts the chain
        first when it is at ``max_chain``, so the returned snapshot always
        carries this epoch as its latest delta and restore cost stays
        bounded.
        """
        nbytes = sum(server["nbytes"] for server in sealed["servers"])
        mutations = sum(server["mutations"] for server in sealed["servers"])
        mutations += len(sealed["protection"]) + len(sealed["frontier"])
        delta = dict(sealed)
        delta["nbytes"] = nbytes
        delta["mutations"] = mutations
        if len(self._deltas) >= self.max_chain:
            self._compact()
        self._deltas.append(delta)
        _DELTA_CAPTURES.inc()
        _DELTA_BYTES.inc(nbytes)
        live_bytes = sum(s.nbytes for s in self.group.servers)
        if live_bytes > 0:
            _DELTA_RATIO.record(nbytes / live_bytes)
        _CHAIN_LENGTH.set(len(self._deltas))
        return self.chain_view()

    def _compact(self) -> None:
        """Fold the chain into a new base (no group locks needed)."""
        self._base = compose_chain({"base": self._base, "deltas": tuple(self._deltas)})
        self._deltas = []
        _COMPACTIONS.inc()

    # ------------------------------------------------------------- restore

    def rebase(self, snap: dict) -> None:
        """Adopt a restored incremental snapshot's chain as the new lineage
        (caller holds the gate, having just restored the composed state).

        The next incremental capture produces a delta against ``snap`` —
        exactly the state the group was rolled back to."""
        chain = snap["chain"]
        self._discarded.append((self._base, self._deltas))
        self._base = chain["base"]
        self._deltas = list(chain["deltas"])
        self.epoch = snap["epoch"]
        self._reset_journals()
        self.journaling = True
        self.dirty = False
        _CHAIN_LENGTH.set(len(self._deltas))
