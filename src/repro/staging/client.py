"""Client-side staging API: shard puts/gets across servers.

``StagingClient`` is the original (non-logging) DataSpaces-style interface:
``put(desc, array)`` scatters the payload to owning servers, ``get(desc)``
gathers and assembles it. The paper's logging interface in
:mod:`repro.core.interface` layers the event queue on top of this.

Shard I/O fans out across servers through a process-wide thread pool: each
task serves all of one request's shards for one server, serialized only by
that server's lock, so requests touching different servers proceed in
parallel (put copies and get assembly release the GIL inside NumPy). The
fan-out is gated on payload size — for small shards the submit overhead
exceeds the copy, so those stay on the caller's thread.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.descriptors.odsc import ObjectDescriptor
from repro.errors import ObjectNotFound, ServerUnavailable, TransientServerError
from repro.geometry.bbox import BBox
from repro.geometry.domain import Domain
from repro.net.mux import deadline_scope
from repro.net.transport import InprocTransport, Transport, resolve_transport
from repro.obs import registry as _obs
from repro.staging.hashing import PlacementMap
from repro.staging.resilience import (
    GroupHealth,
    ProtectionConfig,
    ProtectionIndex,
    RetryPolicy,
    protected_put,
    read_record,
    rebuild_server,
)
from repro.staging.server import StagingServer

__all__ = ["StagingClient", "StagingGroup"]

_PUT_COUNT = _obs.counter("staging.client.put.count")
_PUT_FANOUT = _obs.histogram("staging.client.put.shards")
_PUT_SECONDS = _obs.histogram("staging.client.put.seconds")
_GET_COUNT = _obs.counter("staging.client.get.count")
_GET_SECONDS = _obs.histogram("staging.client.get.seconds")
_POOL_TASKS = _obs.counter("staging.pool.tasks")
_POOL_PARALLEL_OPS = _obs.counter("staging.pool.parallel_ops")
_RETRIES = _obs.counter("staging.client.retries")
_BACKOFF_SECONDS = _obs.histogram("staging.client.backoff.seconds")
_DEADLINE_EXCEEDED = _obs.counter("staging.client.deadline_exceeded")

# Fan out to the pool only when a request's payload is at least this large;
# below it, pool submit/wake latency exceeds the shard memcpy.
PARALLEL_THRESHOLD_BYTES = 256 * 1024
# Remote transports (tcp, shm) cross a process boundary per server call, so
# overlapping round trips pays off at much smaller payloads than overlapping
# in-process memcpys does.
REMOTE_PARALLEL_THRESHOLD_BYTES = 64 * 1024

_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None


def _shared_pool() -> ThreadPoolExecutor:
    """Process-wide shard-I/O pool, created on first parallel request.

    One shared pool (rather than one per group) bounds thread count across
    the many short-lived groups tests and benchmarks create.
    """
    global _pool
    if _pool is None:
        with _pool_lock:
            if _pool is None:
                workers = min(16, (os.cpu_count() or 2) * 2)
                _pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="staging-io"
                )
                _obs.gauge("staging.pool.workers").set(workers)
    return _pool


@dataclass
class StagingGroup:
    """A set of staging servers plus the placement map clients use.

    This is the process-group-level object a workflow creates once and hands
    to every component's client. ``parallel=False`` pins every request to
    the caller's thread (the seed's serial data path — kept as the
    measurable baseline and for single-core runs).
    """

    domain: Domain
    servers: list[StagingServer]
    placement: PlacementMap
    parallel: bool = field(default=True, compare=False)
    parallel_threshold: int = field(default=PARALLEL_THRESHOLD_BYTES, compare=False)
    # Resilience state (always present; coding/degraded reads engage only
    # when ``protection`` is set, so the unprotected fast path is untouched).
    protection: ProtectionConfig | None = field(default=None, compare=False)
    retry: RetryPolicy = field(default_factory=RetryPolicy, compare=False)
    health: GroupHealth = field(default=None, compare=False)  # type: ignore[assignment]
    records: ProtectionIndex = field(default_factory=ProtectionIndex, compare=False)
    # Backoff jitter draws; deterministic so retry timing is reproducible.
    jitter_rng: np.random.Generator = field(default=None, compare=False, repr=False)  # type: ignore[assignment]
    # How calls reach the servers (see repro.net): inproc method calls by
    # default; a TcpTransport makes ``servers`` remote-process proxies.
    transport: Transport = field(default=None, compare=False, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.health is None:
            self.health = GroupHealth(len(self.servers))
        if self.jitter_rng is None:
            self.jitter_rng = np.random.default_rng(0xC0DEC)
        if self.transport is None:
            self.transport = InprocTransport()

    @classmethod
    def create(
        cls,
        domain: Domain,
        num_servers: int,
        blocks_per_server: int = 4,
        curve: str = "hilbert",
        parallel: bool | None = None,
        protection: ProtectionConfig | None = None,
        retry: RetryPolicy | None = None,
        down_after: int = 3,
        transport: "Transport | str | None" = None,
    ) -> "StagingGroup":
        """Construct ``num_servers`` empty servers and their placement map.

        ``parallel=None`` (the default) enables pool fan-out only when the
        host has more than one CPU: on a single core, shipping shard memcpy
        to worker threads is pure overhead. Pass True/False to force.

        ``protection`` opts the group's clients into CoREC shard-group
        coding (parity or replication) with verified, degraded-capable
        reads; ``retry``/``down_after`` shape the transient-failure policy.

        ``transport`` selects how clients reach the servers: a
        :class:`~repro.net.transport.Transport` instance, ``"inproc"`` /
        ``"tcp"`` / ``"shm"``, or ``None`` to follow the ``REPRO_TRANSPORT``
        environment variable (default inproc). Wire-transport groups own
        server *processes* — call :meth:`close` (or rely on daemon cleanup
        at exit) when done.
        """
        if parallel is None:
            parallel = (os.cpu_count() or 1) > 1
        placement = PlacementMap(domain, num_servers, blocks_per_server, curve)
        transport_obj = resolve_transport(transport)
        servers = transport_obj.make_servers(num_servers)
        return cls(
            domain=domain,
            servers=servers,
            placement=placement,
            parallel=parallel,
            parallel_threshold=(
                REMOTE_PARALLEL_THRESHOLD_BYTES
                if transport_obj.remote
                else PARALLEL_THRESHOLD_BYTES
            ),
            protection=protection,
            retry=retry if retry is not None else RetryPolicy(),
            health=GroupHealth(num_servers, down_after=down_after),
            transport=transport_obj,
        )

    def close(self) -> None:
        """Release transport resources (server processes/sockets); idempotent.

        A no-op for inproc groups, so existing callers that never close
        remain correct on the default transport.
        """
        self.transport.close()

    def rebuild(
        self, server_id: int, replacement=None, parallel: bool | None = None
    ) -> int:
        """Rebuild a lost server's protected contents from survivors and
        swap the (fresh or provided) replacement into the group. Returns
        bytes rebuilt. ``parallel`` defaults to the group's flag (pipelined
        batches on the shared pool); ``False`` forces the serial
        record-at-a-time path. See
        :func:`repro.staging.resilience.rebuild_server`.
        """
        return rebuild_server(self, server_id, replacement, parallel=parallel)

    def drop_protection(self) -> None:
        """Disable protection and forget all records (test/bench helper)."""
        self.protection = None
        self.records = ProtectionIndex()

    @property
    def executor(self) -> ThreadPoolExecutor:
        """The shard-I/O pool this group fans out on."""
        return _shared_pool()

    @property
    def total_bytes(self) -> int:
        """Payload bytes across all servers."""
        return sum(s.nbytes for s in self.servers)

    def bytes_per_server(self) -> list[int]:
        """Per-server payload byte occupancy."""
        return [s.nbytes for s in self.servers]


def _await_all(futures: list[Future]) -> None:
    """Wait for every task, then raise the first failure (if any).

    Waiting for all before raising keeps server state deterministic: no
    task is abandoned mid-flight while the caller unwinds.
    """
    wait(futures)
    for f in futures:
        exc = f.exception()
        if exc is not None:
            raise exc


class StagingClient:
    """Per-component handle for geometric put/get against a StagingGroup."""

    def __init__(self, group: StagingGroup, client_id: str = "client") -> None:
        self.group = group
        self.client_id = client_id

    @staticmethod
    def _by_server(shards: list[tuple[int, BBox]]) -> dict[int, list[BBox]]:
        """Group a shard list by owning server (preserves shard order)."""
        by_server: dict[int, list[BBox]] = {}
        for server_id, sub in shards:
            by_server.setdefault(server_id, []).append(sub)
        return by_server

    def _use_pool(self, by_server: dict[int, list[BBox]], nbytes: int) -> bool:
        """Whether to fan this request out across the shard-I/O pool."""
        return (
            self.group.parallel
            and nbytes >= self.group.parallel_threshold
            and len(by_server) >= 2
        )

    def _server_op(self, server_id: int, fn):
        """Run one server call under the group's retry/health policy.

        Transient errors retry with capped exponential backoff + jitter
        until the attempt budget or per-call deadline runs out (each
        failure feeds the health state machine). A fail-stop
        :class:`ServerUnavailable` marks the server down immediately — no
        retry can help a crashed server. ``ObjectNotFound`` is a *healthy*
        response (the server answered; the data is absent) and propagates
        untouched, preserving blocking-get wait semantics upstream.
        """
        policy = self.group.retry
        health = self.group.health
        deadline = perf_counter() + policy.deadline
        # The same budget, as a wall-clock instant the wire layer stamps
        # into every v2 frame header: a request that expires in a remote
        # server's queue is dropped there (typed DeadlineExceeded, retried
        # below) instead of executing after the caller stopped waiting.
        wall_deadline = time.time() + policy.deadline
        attempt = 1
        while True:
            try:
                with deadline_scope(wall_deadline):
                    result = fn()
            except ServerUnavailable:
                health.mark_down(server_id)
                raise
            except ObjectNotFound:
                health.mark_success(server_id)
                raise
            except TransientServerError:
                health.mark_failure(server_id)
                if attempt >= policy.max_attempts:
                    raise
                delay = policy.backoff_for(attempt, self.group.jitter_rng)
                if perf_counter() + delay > deadline:
                    _DEADLINE_EXCEEDED.inc()
                    raise
                _RETRIES.inc()
                _BACKOFF_SECONDS.record(delay)
                time.sleep(delay)
                attempt += 1
            else:
                health.mark_success(server_id)
                return result

    # ------------------------------------------------------------------ put

    def put(self, desc: ObjectDescriptor, data: np.ndarray) -> int:
        """Scatter ``data`` (covering ``desc.bbox``) to owning servers.

        Returns the number of server shards written.
        """
        t0 = perf_counter()
        data = np.asarray(data)
        shards = self.group.placement.shards(desc.bbox)
        by_server = self._by_server(shards)
        if self.group.protection is not None:
            protected_put(self, desc, data, by_server)
            _PUT_COUNT.inc()
            _PUT_FANOUT.record(len(shards))
            _PUT_SECONDS.record(perf_counter() - t0)
            return len(shards)
        if not self._use_pool(by_server, int(data.nbytes)):
            for server_id, boxes in by_server.items():
                self._scatter_to(server_id, boxes, desc, data)
        else:
            _POOL_PARALLEL_OPS.inc()
            _POOL_TASKS.inc(len(by_server))
            pool = self.group.executor
            _await_all(
                [
                    pool.submit(self._scatter_to, server_id, boxes, desc, data)
                    for server_id, boxes in by_server.items()
                ]
            )
        _PUT_COUNT.inc()
        _PUT_FANOUT.record(len(shards))
        _PUT_SECONDS.record(perf_counter() - t0)
        return len(shards)

    def _scatter_to(
        self, server_id: int, boxes: list[BBox], desc: ObjectDescriptor, data: np.ndarray
    ) -> None:
        shards = [(desc.with_bbox(sub), data[sub.slices(desc.bbox)]) for sub in boxes]
        self._server_op(
            server_id, lambda: self.group.servers[server_id].put_many(shards)
        )

    # ------------------------------------------------------------------ get

    def get(self, desc: ObjectDescriptor) -> np.ndarray:
        """Gather ``desc.bbox`` from owning servers and assemble it."""
        t0 = perf_counter()
        shards = self.group.placement.shards(desc.bbox)
        if not shards:
            raise ObjectNotFound(f"{desc}: region outside staged domain")
        out = np.empty(desc.bbox.shape, dtype=np.dtype(desc.dtype))
        by_server = self._by_server(shards)
        if self.group.protection is not None:
            self._protected_get(desc, out)
            _GET_COUNT.inc()
            _GET_SECONDS.record(perf_counter() - t0)
            return out
        if not self._use_pool(by_server, int(out.nbytes)):
            for server_id, boxes in by_server.items():
                self._gather_from(server_id, boxes, desc, out)
        else:
            _POOL_PARALLEL_OPS.inc()
            _POOL_TASKS.inc(len(by_server))
            pool = self.group.executor
            # Tasks write disjoint sub-regions of `out`; no synchronization
            # on the buffer is needed.
            _await_all(
                [
                    pool.submit(self._gather_from, server_id, boxes, desc, out)
                    for server_id, boxes in by_server.items()
                ]
            )
        _GET_COUNT.inc()
        _GET_SECONDS.record(perf_counter() - t0)
        return out

    def _gather_from(
        self, server_id: int, boxes: list[BBox], desc: ObjectDescriptor, out: np.ndarray
    ) -> None:
        descs = [desc.with_bbox(sub) for sub in boxes]
        parts = self._server_op(
            server_id, lambda: self.group.servers[server_id].get_many(descs)
        )
        for sub, part in zip(boxes, parts):
            out[sub.slices(desc.bbox)] = part

    def _protected_get(self, desc: ObjectDescriptor, out: np.ndarray) -> None:
        """Serve a read through protection records (verified, degraded-capable).

        A concurrent protected put registers its record only after its last
        parity shard lands, so a racing read can see the data shards
        (``covers()`` true) while the record is still seconds away — and if
        an owner crashes in that window, the record-less fallback below hits
        a dead server. Rather than surfacing that transient as data loss,
        re-scan the records under the retry policy's backoff/deadline; the
        crash is only terminal once no record appears in time. The window is
        microseconds in-process but grows to wire latency under a socket
        transport, where unprotected soaks flaked without this.
        """
        policy = self.group.retry
        deadline = perf_counter() + policy.deadline
        attempt = 1
        while True:
            try:
                self._protected_get_once(desc, out)
                return
            except ServerUnavailable:
                if attempt >= policy.max_attempts:
                    raise
                delay = policy.backoff_for(attempt, self.group.jitter_rng)
                if perf_counter() + delay > deadline:
                    raise
                _RETRIES.inc()
                _BACKOFF_SECONDS.record(delay)
                time.sleep(delay)
                attempt += 1

    def _protected_get_once(self, desc: ObjectDescriptor, out: np.ndarray) -> None:
        """One pass of the record scan + direct fallback.

        Regions covered by a put's record are read shard-aligned so every
        shard is digest-checked and lost servers are reconstructed around;
        any leftover region (data written before protection was enabled)
        falls back to the direct geometric path under the retry policy.
        """
        remaining: list[BBox] = [desc.bbox]
        for rec in self.group.records.overlapping(desc):
            read_record(self, rec, desc, out)
            remaining = [
                piece for r in remaining for piece in r.subtract(rec.desc.bbox)
            ]
            if not remaining:
                return
        for region in remaining:
            sub_desc = desc.with_bbox(region)
            for server_id, boxes in self._by_server(
                self.group.placement.shards(region)
            ).items():
                # _gather_from runs under the retry policy itself.
                self._gather_from(
                    server_id, boxes, sub_desc, out[region.slices(desc.bbox)]
                )

    def covers(self, desc: ObjectDescriptor) -> bool:
        """True when ``desc`` is servable — directly, or degraded via records.

        A crashed or persistently failing server makes its regions
        non-covering (rather than raising), unless a protection record can
        still reconstruct them from survivors.
        """
        shards = self.group.placement.shards(desc.bbox)
        if not shards:
            return False
        remaining: list[BBox] = [desc.bbox]
        if self.group.protection is not None:
            for rec in self.group.records.overlapping(desc):
                if not rec.readable_with(self.group.health):
                    return False
                remaining = [
                    piece for r in remaining for piece in r.subtract(rec.desc.bbox)
                ]
                if not remaining:
                    return True
        for region in remaining:
            sub_desc = desc.with_bbox(region)
            for server_id, boxes in self._by_server(
                self.group.placement.shards(region)
            ).items():
                server = self.group.servers[server_id]
                descs = [sub_desc.with_bbox(sub) for sub in boxes]
                try:
                    ok = self._server_op(
                        server_id, lambda s=server, d=descs: s.covers_all(d)
                    )
                except (ServerUnavailable, TransientServerError):
                    return False
                if not ok:
                    return False
        return True

    def latest_version(self, name: str) -> int | None:
        """Highest version of ``name`` present on any reachable server.

        Down or unresponsive servers are skipped — with protection on, the
        records index fills in versions whose only live fragments died with
        a server (they are still readable via degraded reads).
        """
        latest: int | None = None
        for server in self.group.servers:
            if self.group.health.is_down(server.server_id):
                continue
            try:
                versions = self._server_op(
                    server.server_id, lambda s=server: s.query_versions(name)
                )
            except (ServerUnavailable, TransientServerError):
                continue
            if versions and (latest is None or versions[-1] > latest):
                latest = versions[-1]
        if self.group.protection is not None:
            for v in self.group.records.versions(name):
                if latest is None or v > latest:
                    latest = v
        return latest
