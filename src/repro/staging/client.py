"""Client-side staging API: shard puts/gets across servers.

``StagingClient`` is the original (non-logging) DataSpaces-style interface:
``put(desc, array)`` scatters the payload to owning servers, ``get(desc)``
gathers and assembles it. The paper's logging interface in
:mod:`repro.core.interface` layers the event queue on top of this.

Shard I/O fans out across servers through a process-wide thread pool: each
task serves all of one request's shards for one server, serialized only by
that server's lock, so requests touching different servers proceed in
parallel (put copies and get assembly release the GIL inside NumPy). The
fan-out is gated on payload size — for small shards the submit overhead
exceeds the copy, so those stay on the caller's thread.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.descriptors.odsc import ObjectDescriptor
from repro.errors import ObjectNotFound
from repro.geometry.bbox import BBox
from repro.geometry.domain import Domain
from repro.obs import registry as _obs
from repro.staging.hashing import PlacementMap
from repro.staging.server import StagingServer

__all__ = ["StagingClient", "StagingGroup"]

_PUT_COUNT = _obs.counter("staging.client.put.count")
_PUT_FANOUT = _obs.histogram("staging.client.put.shards")
_PUT_SECONDS = _obs.histogram("staging.client.put.seconds")
_GET_COUNT = _obs.counter("staging.client.get.count")
_GET_SECONDS = _obs.histogram("staging.client.get.seconds")
_POOL_TASKS = _obs.counter("staging.pool.tasks")
_POOL_PARALLEL_OPS = _obs.counter("staging.pool.parallel_ops")

# Fan out to the pool only when a request's payload is at least this large;
# below it, pool submit/wake latency exceeds the shard memcpy.
PARALLEL_THRESHOLD_BYTES = 256 * 1024

_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None


def _shared_pool() -> ThreadPoolExecutor:
    """Process-wide shard-I/O pool, created on first parallel request.

    One shared pool (rather than one per group) bounds thread count across
    the many short-lived groups tests and benchmarks create.
    """
    global _pool
    if _pool is None:
        with _pool_lock:
            if _pool is None:
                workers = min(16, (os.cpu_count() or 2) * 2)
                _pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="staging-io"
                )
                _obs.gauge("staging.pool.workers").set(workers)
    return _pool


@dataclass
class StagingGroup:
    """A set of staging servers plus the placement map clients use.

    This is the process-group-level object a workflow creates once and hands
    to every component's client. ``parallel=False`` pins every request to
    the caller's thread (the seed's serial data path — kept as the
    measurable baseline and for single-core runs).
    """

    domain: Domain
    servers: list[StagingServer]
    placement: PlacementMap
    parallel: bool = field(default=True, compare=False)
    parallel_threshold: int = field(default=PARALLEL_THRESHOLD_BYTES, compare=False)

    @classmethod
    def create(
        cls,
        domain: Domain,
        num_servers: int,
        blocks_per_server: int = 4,
        curve: str = "hilbert",
        parallel: bool | None = None,
    ) -> "StagingGroup":
        """Construct ``num_servers`` empty servers and their placement map.

        ``parallel=None`` (the default) enables pool fan-out only when the
        host has more than one CPU: on a single core, shipping shard memcpy
        to worker threads is pure overhead. Pass True/False to force.
        """
        if parallel is None:
            parallel = (os.cpu_count() or 1) > 1
        placement = PlacementMap(domain, num_servers, blocks_per_server, curve)
        servers = [StagingServer(i) for i in range(num_servers)]
        return cls(
            domain=domain, servers=servers, placement=placement, parallel=parallel
        )

    @property
    def executor(self) -> ThreadPoolExecutor:
        """The shard-I/O pool this group fans out on."""
        return _shared_pool()

    @property
    def total_bytes(self) -> int:
        """Payload bytes across all servers."""
        return sum(s.nbytes for s in self.servers)

    def bytes_per_server(self) -> list[int]:
        """Per-server payload byte occupancy."""
        return [s.nbytes for s in self.servers]


def _await_all(futures: list[Future]) -> None:
    """Wait for every task, then raise the first failure (if any).

    Waiting for all before raising keeps server state deterministic: no
    task is abandoned mid-flight while the caller unwinds.
    """
    wait(futures)
    for f in futures:
        exc = f.exception()
        if exc is not None:
            raise exc


class StagingClient:
    """Per-component handle for geometric put/get against a StagingGroup."""

    def __init__(self, group: StagingGroup, client_id: str = "client") -> None:
        self.group = group
        self.client_id = client_id

    @staticmethod
    def _by_server(shards: list[tuple[int, BBox]]) -> dict[int, list[BBox]]:
        """Group a shard list by owning server (preserves shard order)."""
        by_server: dict[int, list[BBox]] = {}
        for server_id, sub in shards:
            by_server.setdefault(server_id, []).append(sub)
        return by_server

    def _use_pool(self, by_server: dict[int, list[BBox]], nbytes: int) -> bool:
        """Whether to fan this request out across the shard-I/O pool."""
        return (
            self.group.parallel
            and nbytes >= self.group.parallel_threshold
            and len(by_server) >= 2
        )

    # ------------------------------------------------------------------ put

    def put(self, desc: ObjectDescriptor, data: np.ndarray) -> int:
        """Scatter ``data`` (covering ``desc.bbox``) to owning servers.

        Returns the number of server shards written.
        """
        t0 = perf_counter()
        data = np.asarray(data)
        shards = self.group.placement.shards(desc.bbox)
        by_server = self._by_server(shards)
        if not self._use_pool(by_server, int(data.nbytes)):
            for server_id, boxes in by_server.items():
                self._scatter_to(server_id, boxes, desc, data)
        else:
            _POOL_PARALLEL_OPS.inc()
            _POOL_TASKS.inc(len(by_server))
            pool = self.group.executor
            _await_all(
                [
                    pool.submit(self._scatter_to, server_id, boxes, desc, data)
                    for server_id, boxes in by_server.items()
                ]
            )
        _PUT_COUNT.inc()
        _PUT_FANOUT.record(len(shards))
        _PUT_SECONDS.record(perf_counter() - t0)
        return len(shards)

    def _scatter_to(
        self, server_id: int, boxes: list[BBox], desc: ObjectDescriptor, data: np.ndarray
    ) -> None:
        self.group.servers[server_id].put_many(
            [(desc.with_bbox(sub), data[sub.slices(desc.bbox)]) for sub in boxes]
        )

    # ------------------------------------------------------------------ get

    def get(self, desc: ObjectDescriptor) -> np.ndarray:
        """Gather ``desc.bbox`` from owning servers and assemble it."""
        t0 = perf_counter()
        shards = self.group.placement.shards(desc.bbox)
        if not shards:
            raise ObjectNotFound(f"{desc}: region outside staged domain")
        out = np.empty(desc.bbox.shape, dtype=np.dtype(desc.dtype))
        by_server = self._by_server(shards)
        if not self._use_pool(by_server, int(out.nbytes)):
            for server_id, boxes in by_server.items():
                self._gather_from(server_id, boxes, desc, out)
        else:
            _POOL_PARALLEL_OPS.inc()
            _POOL_TASKS.inc(len(by_server))
            pool = self.group.executor
            # Tasks write disjoint sub-regions of `out`; no synchronization
            # on the buffer is needed.
            _await_all(
                [
                    pool.submit(self._gather_from, server_id, boxes, desc, out)
                    for server_id, boxes in by_server.items()
                ]
            )
        _GET_COUNT.inc()
        _GET_SECONDS.record(perf_counter() - t0)
        return out

    def _gather_from(
        self, server_id: int, boxes: list[BBox], desc: ObjectDescriptor, out: np.ndarray
    ) -> None:
        parts = self.group.servers[server_id].get_many(
            [desc.with_bbox(sub) for sub in boxes]
        )
        for sub, part in zip(boxes, parts):
            out[sub.slices(desc.bbox)] = part

    def covers(self, desc: ObjectDescriptor) -> bool:
        """True when every owning server can serve its shard of ``desc``."""
        shards = self.group.placement.shards(desc.bbox)
        if not shards:
            return False
        return all(
            self.group.servers[server_id].covers_all(
                [desc.with_bbox(sub) for sub in boxes]
            )
            for server_id, boxes in self._by_server(shards).items()
        )

    def latest_version(self, name: str) -> int | None:
        """Highest version of ``name`` present on any server."""
        latest: int | None = None
        for server in self.group.servers:
            versions = server.query_versions(name)
            if versions and (latest is None or versions[-1] > latest):
                latest = versions[-1]
        return latest
