"""Client-side staging API: shard puts/gets across servers.

``StagingClient`` is the original (non-logging) DataSpaces-style interface:
``put(desc, array)`` scatters the payload to owning servers, ``get(desc)``
gathers and assembles it. The paper's logging interface in
:mod:`repro.core.interface` layers the event queue on top of this.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.descriptors.odsc import ObjectDescriptor
from repro.errors import ObjectNotFound
from repro.geometry.domain import Domain
from repro.obs import registry as _obs
from repro.staging.hashing import PlacementMap
from repro.staging.server import StagingServer

__all__ = ["StagingClient", "StagingGroup"]

_PUT_COUNT = _obs.counter("staging.client.put.count")
_PUT_FANOUT = _obs.histogram("staging.client.put.shards")
_PUT_SECONDS = _obs.histogram("staging.client.put.seconds")
_GET_COUNT = _obs.counter("staging.client.get.count")
_GET_SECONDS = _obs.histogram("staging.client.get.seconds")


@dataclass
class StagingGroup:
    """A set of staging servers plus the placement map clients use.

    This is the process-group-level object a workflow creates once and hands
    to every component's client.
    """

    domain: Domain
    servers: list[StagingServer]
    placement: PlacementMap

    @classmethod
    def create(
        cls,
        domain: Domain,
        num_servers: int,
        blocks_per_server: int = 4,
        curve: str = "hilbert",
    ) -> "StagingGroup":
        """Construct ``num_servers`` empty servers and their placement map."""
        placement = PlacementMap(domain, num_servers, blocks_per_server, curve)
        servers = [StagingServer(i) for i in range(num_servers)]
        return cls(domain=domain, servers=servers, placement=placement)

    @property
    def total_bytes(self) -> int:
        """Payload bytes across all servers."""
        return sum(s.nbytes for s in self.servers)

    def bytes_per_server(self) -> list[int]:
        """Per-server payload byte occupancy."""
        return [s.nbytes for s in self.servers]


class StagingClient:
    """Per-component handle for geometric put/get against a StagingGroup."""

    def __init__(self, group: StagingGroup, client_id: str = "client") -> None:
        self.group = group
        self.client_id = client_id

    # ------------------------------------------------------------------ put

    def put(self, desc: ObjectDescriptor, data: np.ndarray) -> int:
        """Scatter ``data`` (covering ``desc.bbox``) to owning servers.

        Returns the number of server shards written.
        """
        t0 = perf_counter()
        data = np.asarray(data)
        shards = self.group.placement.shards(desc.bbox)
        for server_id, sub in shards:
            sub_desc = desc.with_bbox(sub)
            self.group.servers[server_id].put(sub_desc, data[sub.slices(desc.bbox)])
        _PUT_COUNT.inc()
        _PUT_FANOUT.record(len(shards))
        _PUT_SECONDS.record(perf_counter() - t0)
        return len(shards)

    # ------------------------------------------------------------------ get

    def get(self, desc: ObjectDescriptor) -> np.ndarray:
        """Gather ``desc.bbox`` from owning servers and assemble it."""
        t0 = perf_counter()
        shards = self.group.placement.shards(desc.bbox)
        if not shards:
            raise ObjectNotFound(f"{desc}: region outside staged domain")
        out = np.empty(desc.bbox.shape, dtype=np.dtype(desc.dtype))
        for server_id, sub in shards:
            sub_desc = desc.with_bbox(sub)
            out[sub.slices(desc.bbox)] = self.group.servers[server_id].get(sub_desc)
        _GET_COUNT.inc()
        _GET_SECONDS.record(perf_counter() - t0)
        return out

    def covers(self, desc: ObjectDescriptor) -> bool:
        """True when every owning server can serve its shard of ``desc``."""
        shards = self.group.placement.shards(desc.bbox)
        if not shards:
            return False
        return all(
            self.group.servers[server_id].covers(desc.with_bbox(sub))
            for server_id, sub in shards
        )

    def latest_version(self, name: str) -> int | None:
        """Highest version of ``name`` present on any server."""
        versions: set[int] = set()
        for server in self.group.servers:
            versions.update(server.query_versions(name))
        return max(versions) if versions else None
