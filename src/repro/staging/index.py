"""Spatial metadata index for a staging server.

Tracks which (name, version) regions a server holds so queries can be
answered without touching payload bytes. This mirrors the DHT metadata layer
of DataSpaces: clients first query the index to learn which fragments exist,
then fetch payloads.

Aggregates are maintained incrementally: byte totals, entry counts, and the
per-name version sets are updated on insert/remove instead of being
recomputed by full iteration — these are read on every flow-control check
and memory-bench sample, so they must be O(1). The running totals are
asserted against full recomputes in the store/index lockstep property test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.descriptors.odsc import ObjectDescriptor
from repro.geometry.bbox import BBox

__all__ = ["SpatialIndex", "IndexEntry"]


@dataclass(frozen=True)
class IndexEntry:
    """One indexed fragment: its descriptor plus bookkeeping."""

    desc: ObjectDescriptor
    nbytes: int
    logged: bool = False  # True when retained by the data-logging component


@dataclass
class SpatialIndex:
    """Per-server metadata index over fragment descriptors.

    A flat per-(name, version) list is sufficient here: server-local fragment
    counts are small (one per producer rank per step). Aggregates (bytes,
    counts, version sets) are incremental so the metadata path never scans.
    """

    _entries: dict[tuple[str, int], list[IndexEntry]] = field(default_factory=dict)
    _versions: dict[str, set[int]] = field(default_factory=dict)
    _total_bytes: int = 0
    _logged_bytes: int = 0
    _count: int = 0

    def insert(self, desc: ObjectDescriptor, nbytes: int, logged: bool = False) -> IndexEntry:
        """Index one fragment; returns the entry created."""
        entry = IndexEntry(desc=desc, nbytes=nbytes, logged=logged)
        self._entries.setdefault(desc.key, []).append(entry)
        self._versions.setdefault(desc.name, set()).add(desc.version)
        self._total_bytes += nbytes
        if logged:
            self._logged_bytes += nbytes
        self._count += 1
        return entry

    def remove_version(self, name: str, version: int) -> int:
        """Drop all entries for (name, version); returns entries removed."""
        entries = self._entries.pop((name, version), None)
        if not entries:
            return 0
        versions = self._versions.get(name)
        if versions is not None:
            versions.discard(version)
            if not versions:
                del self._versions[name]
        for e in entries:
            self._total_bytes -= e.nbytes
            if e.logged:
                self._logged_bytes -= e.nbytes
        self._count -= len(entries)
        return len(entries)

    def query(self, name: str, version: int, region: BBox | None = None) -> list[IndexEntry]:
        """Entries for (name, version) overlapping ``region`` (or all)."""
        entries = self._entries.get((name, version), ())
        if region is None:
            return list(entries)
        return [e for e in entries if e.desc.bbox.intersects(region)]

    def versions(self, name: str) -> list[int]:
        """Sorted versions indexed for ``name`` (per-name set, no key scan)."""
        return sorted(self._versions.get(name, ()))

    def names(self) -> list[str]:
        """Sorted distinct variable names indexed."""
        return sorted(self._versions)

    def covered(self, name: str, version: int, region: BBox) -> bool:
        """True when indexed fragments fully cover ``region``."""
        uncovered = [region]
        for entry in self._entries.get((name, version), ()):
            uncovered = [
                piece for box in uncovered for piece in box.subtract(entry.desc.bbox)
            ]
            if not uncovered:
                return True
        return not uncovered

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> dict:
        """Capture the index for coordinated checkpointing.

        Entries are immutable, so only the container structure is copied —
        the same in-place convention as :meth:`ObjectStore.snapshot`. The
        aggregates are derived state and are rebuilt on restore.
        """
        return {"entries": {k: list(v) for k, v in self._entries.items()}}

    def restore(self, snap: dict) -> None:
        """Roll the index back to a previously captured snapshot."""
        self._entries = {k: list(v) for k, v in snap["entries"].items()}
        self._recount()

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()
        self._versions.clear()
        self._total_bytes = 0
        self._logged_bytes = 0
        self._count = 0

    def _recount(self) -> None:
        """Rebuild the incremental aggregates from ``_entries`` (restore path)."""
        self._versions = {}
        self._total_bytes = 0
        self._logged_bytes = 0
        self._count = 0
        for (name, version), entries in self._entries.items():
            self._versions.setdefault(name, set()).add(version)
            self._count += len(entries)
            for e in entries:
                self._total_bytes += e.nbytes
                if e.logged:
                    self._logged_bytes += e.nbytes

    # ------------------------------------------------------------- metrics

    def nbytes(self, logged_only: bool = False) -> int:
        """Total indexed payload bytes (optionally only logged entries); O(1)."""
        return self._logged_bytes if logged_only else self._total_bytes

    def __len__(self) -> int:
        return self._count
