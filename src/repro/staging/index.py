"""Spatial metadata index for a staging server.

Tracks which (name, version) regions a server holds so queries can be
answered without touching payload bytes. This mirrors the DHT metadata layer
of DataSpaces: clients first query the index to learn which fragments exist,
then fetch payloads.

Aggregates are maintained incrementally: byte totals, entry counts, and the
per-name version sets are updated on insert/remove instead of being
recomputed by full iteration — these are read on every flow-control check
and memory-bench sample, so they must be O(1). The running totals are
asserted against full recomputes in the store/index lockstep property test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.descriptors.odsc import ObjectDescriptor
from repro.geometry.bbox import BBox

__all__ = ["SpatialIndex", "IndexEntry"]


@dataclass(frozen=True)
class IndexEntry:
    """One indexed fragment: its descriptor plus bookkeeping."""

    desc: ObjectDescriptor
    nbytes: int
    logged: bool = False  # True when retained by the data-logging component


@dataclass
class SpatialIndex:
    """Per-server metadata index over fragment descriptors.

    A flat per-(name, version) list is sufficient here: server-local fragment
    counts are small (one per producer rank per step). Aggregates (bytes,
    counts, version sets) are incremental so the metadata path never scans.
    """

    _entries: dict[tuple[str, int], list[IndexEntry]] = field(default_factory=dict)
    _versions: dict[str, set[int]] = field(default_factory=dict)
    _total_bytes: int = 0
    _logged_bytes: int = 0
    _count: int = 0
    # (name, version) -> summed *unclipped* fragment volume, used by
    # covered() as a necessary-condition early-out. Summed full volumes are
    # an upper bound on the covered volume, so sum < region.volume proves
    # non-coverage without any geometry walk.
    _volumes: dict[tuple[str, int], int] = field(default_factory=dict)
    # Mutation journal for incremental checkpointing; None = off. Same
    # seal-in-O(1) contract as ObjectStore._journal.
    _journal: list[tuple] | None = None

    # ----------------------------------------------------------- journaling

    def enable_journal(self) -> None:
        """Start recording mutations (idempotent; keeps an open journal)."""
        if self._journal is None:
            self._journal = []

    def disable_journal(self) -> None:
        """Stop recording mutations and drop any pending journal."""
        self._journal = None

    @property
    def journal_len(self) -> int:
        """Mutations recorded since the last seal; O(1)."""
        return len(self._journal) if self._journal is not None else 0

    def seal_journal(self) -> list[tuple]:
        """Detach and return the mutations since the last seal; O(1)."""
        sealed = self._journal if self._journal is not None else []
        self._journal = []
        return sealed

    # ------------------------------------------------------------ mutation

    def insert(self, desc: ObjectDescriptor, nbytes: int, logged: bool = False) -> IndexEntry:
        """Index one fragment; returns the entry created."""
        entry = IndexEntry(desc=desc, nbytes=nbytes, logged=logged)
        key = desc.key
        self._entries.setdefault(key, []).append(entry)
        self._versions.setdefault(desc.name, set()).add(desc.version)
        self._total_bytes += nbytes
        if logged:
            self._logged_bytes += nbytes
        self._count += 1
        self._volumes[key] = self._volumes.get(key, 0) + desc.bbox.volume
        if self._journal is not None:
            self._journal.append(("insert", entry))
        return entry

    def remove_version(self, name: str, version: int) -> int:
        """Drop all entries for (name, version); returns entries removed."""
        entries = self._entries.pop((name, version), None)
        if not entries:
            return 0
        versions = self._versions.get(name)
        if versions is not None:
            versions.discard(version)
            if not versions:
                del self._versions[name]
        for e in entries:
            self._total_bytes -= e.nbytes
            if e.logged:
                self._logged_bytes -= e.nbytes
        self._count -= len(entries)
        self._volumes.pop((name, version), None)
        if self._journal is not None:
            self._journal.append(("remove", name, version))
        return len(entries)

    def query(self, name: str, version: int, region: BBox | None = None) -> list[IndexEntry]:
        """Entries for (name, version) overlapping ``region`` (or all)."""
        entries = self._entries.get((name, version), ())
        if region is None:
            return list(entries)
        return [e for e in entries if e.desc.bbox.intersects(region)]

    def versions(self, name: str) -> list[int]:
        """Sorted versions indexed for ``name`` (per-name set, no key scan)."""
        return sorted(self._versions.get(name, ()))

    def names(self) -> list[str]:
        """Sorted distinct variable names indexed."""
        return sorted(self._versions)

    def covered(self, name: str, version: int, region: BBox) -> bool:
        """True when indexed fragments fully cover ``region``.

        Two fast paths before the O(entries × pieces) subtract walk: the
        summed fragment volume bounds the coverable volume from above, so a
        deficit proves non-coverage in O(1); and any single fragment
        containing the region proves coverage without subtraction.
        """
        key = (name, version)
        entries = self._entries.get(key)
        if not entries:
            return False
        if self._volumes.get(key, 0) < region.volume:
            return False
        if len(entries) == 1:
            return entries[0].desc.bbox.contains(region)
        uncovered = [region]
        for entry in entries:
            if entry.desc.bbox.contains(region):
                return True
            uncovered = [
                piece for box in uncovered for piece in box.subtract(entry.desc.bbox)
            ]
            if not uncovered:
                return True
        return not uncovered

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> dict:
        """Capture the index for coordinated checkpointing.

        Entries are immutable, so only the container structure is copied —
        the same in-place convention as :meth:`ObjectStore.snapshot`. The
        running aggregates travel with the snapshot so restore is O(keys)
        container copying, never an O(entries) rescan.
        """
        return {
            "entries": {k: list(v) for k, v in self._entries.items()},
            "aggregates": {
                "versions": {name: set(vs) for name, vs in self._versions.items()},
                "total_bytes": self._total_bytes,
                "logged_bytes": self._logged_bytes,
                "count": self._count,
                "volumes": dict(self._volumes),
            },
        }

    def restore(self, snap: dict) -> None:
        """Roll the index back to a previously captured snapshot.

        Aggregate-carrying snapshots restore without a rescan; legacy
        snapshots (entries only) fall back to :meth:`_recount`.
        """
        self._entries = {k: list(v) for k, v in snap["entries"].items()}
        agg = snap.get("aggregates")
        if agg is not None:
            self._versions = {name: set(vs) for name, vs in agg["versions"].items()}
            self._total_bytes = agg["total_bytes"]
            self._logged_bytes = agg["logged_bytes"]
            self._count = agg["count"]
            self._volumes = dict(agg["volumes"])
        else:
            self._recount()
        if self._journal is not None:
            self._journal = []

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()
        self._versions.clear()
        self._total_bytes = 0
        self._logged_bytes = 0
        self._count = 0
        self._volumes.clear()
        if self._journal is not None:
            self._journal.append(("clear",))

    def _recount(self) -> None:
        """Rebuild the incremental aggregates from ``_entries`` (restore path)."""
        self._versions = {}
        self._total_bytes = 0
        self._logged_bytes = 0
        self._count = 0
        self._volumes = {}
        for (name, version), entries in self._entries.items():
            self._versions.setdefault(name, set()).add(version)
            self._count += len(entries)
            for e in entries:
                self._total_bytes += e.nbytes
                if e.logged:
                    self._logged_bytes += e.nbytes
                self._volumes[(name, version)] = (
                    self._volumes.get((name, version), 0) + e.desc.bbox.volume
                )

    # ------------------------------------------------------------- metrics

    def nbytes(self, logged_only: bool = False) -> int:
        """Total indexed payload bytes (optionally only logged entries); O(1)."""
        return self._logged_bytes if logged_only else self._total_bytes

    def __len__(self) -> int:
        return self._count
