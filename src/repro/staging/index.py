"""Spatial metadata index for a staging server.

Tracks which (name, version) regions a server holds so queries can be
answered without touching payload bytes. This mirrors the DHT metadata layer
of DataSpaces: clients first query the index to learn which fragments exist,
then fetch payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.descriptors.odsc import ObjectDescriptor
from repro.geometry.bbox import BBox

__all__ = ["SpatialIndex", "IndexEntry"]


@dataclass(frozen=True)
class IndexEntry:
    """One indexed fragment: its descriptor plus bookkeeping."""

    desc: ObjectDescriptor
    nbytes: int
    logged: bool = False  # True when retained by the data-logging component


@dataclass
class SpatialIndex:
    """Per-server metadata index over fragment descriptors.

    A flat per-(name, version) list is sufficient here: server-local fragment
    counts are small (one per producer rank per step), and correctness — not
    asymptotics — is what the reproduction must preserve.
    """

    _entries: dict[tuple[str, int], list[IndexEntry]] = field(default_factory=dict)

    def insert(self, desc: ObjectDescriptor, nbytes: int, logged: bool = False) -> IndexEntry:
        """Index one fragment; returns the entry created."""
        entry = IndexEntry(desc=desc, nbytes=nbytes, logged=logged)
        self._entries.setdefault(desc.key, []).append(entry)
        return entry

    def remove_version(self, name: str, version: int) -> int:
        """Drop all entries for (name, version); returns entries removed."""
        entries = self._entries.pop((name, version), None)
        return len(entries) if entries else 0

    def query(self, name: str, version: int, region: BBox | None = None) -> list[IndexEntry]:
        """Entries for (name, version) overlapping ``region`` (or all)."""
        entries = self._entries.get((name, version), ())
        if region is None:
            return list(entries)
        return [e for e in entries if e.desc.bbox.intersects(region)]

    def versions(self, name: str) -> list[int]:
        """Sorted versions indexed for ``name``."""
        return sorted({v for (n, v) in self._entries if n == name})

    def names(self) -> list[str]:
        """Sorted distinct variable names indexed."""
        return sorted({n for (n, _v) in self._entries})

    def covered(self, name: str, version: int, region: BBox) -> bool:
        """True when indexed fragments fully cover ``region``."""
        uncovered = [region]
        for entry in self._entries.get((name, version), ()):
            uncovered = [
                piece for box in uncovered for piece in box.subtract(entry.desc.bbox)
            ]
            if not uncovered:
                return True
        return not uncovered

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> dict:
        """Capture the index for coordinated checkpointing.

        Entries are immutable, so only the container structure is copied —
        the same in-place convention as :meth:`ObjectStore.snapshot`.
        """
        return {"entries": {k: list(v) for k, v in self._entries.items()}}

    def restore(self, snap: dict) -> None:
        """Roll the index back to a previously captured snapshot."""
        self._entries = {k: list(v) for k, v in snap["entries"].items()}

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()

    # ------------------------------------------------------------- metrics

    def nbytes(self, logged_only: bool = False) -> int:
        """Total indexed payload bytes (optionally only logged entries)."""
        total = 0
        for entries in self._entries.values():
            for e in entries:
                if not logged_only or e.logged:
                    total += e.nbytes
        return total

    def __len__(self) -> int:
        return sum(len(v) for v in self._entries.values())
