"""Staging-area resilience: protection records, health, degraded reads.

This module makes the *live* staging data path survive server loss, the
property the paper delegates to CoREC ("data staging can contain data
resilience mechanism such as data replication or erasure coding"). The unit
of protection is one put's **shard group**: the per-server sub-payloads the
placement map scatters a write into. For a put that lands on ``k`` servers:

* ``rs`` mode treats the ``k`` per-server payloads (padded to a common
  length) as the data shards of a systematic RS(k, m) codeword and stores
  the ``m`` parity shards on ``m`` *other* servers;
* ``replication`` mode stores full copies of each per-server payload on
  other servers.

A :class:`PutRecord` remembers the geometry (which boxes each shard holds,
in which order), per-shard digests, and where parity/copies live, so a later
get can (a) verify every shard it reads against its digest (catching silent
corruption) and (b) reconstruct the shards of lost servers from survivors —
a **degraded read** returning byte-identical data with no workflow rollback,
as long as the number of lost servers does not exceed the protection level.
Beyond that level, reads raise :class:`~repro.errors.StagingDegradedError`.

Records live in the group's :class:`ProtectionIndex` and are snapshot/
restored alongside the servers by the synchronized service, and evicted
alongside fragments by the data log and retention paths — so the index never
points at payloads that rolled back or were collected.

Server health is tracked per group (:class:`GroupHealth`): a fail-stop
:class:`~repro.errors.ServerUnavailable` marks a server ``down``
immediately, repeated transient failures walk it through ``suspect`` to
``down``, and clients route around down servers instead of burning their
retry budget on them. :func:`rebuild_server` repopulates a replacement
server from survivors (reconstructing data shards, recomputing parity).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from repro.corec.reedsolomon import RSCode, Shard
from repro.descriptors.odsc import ObjectDescriptor
from repro.errors import (
    ConfigError,
    DecodingError,
    ObjectNotFound,
    ServerUnavailable,
    StagingDegradedError,
    TransientServerError,
)
from repro.geometry.bbox import BBox
from repro.obs import registry as _obs

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (client imports us)
    from repro.staging.client import StagingClient, StagingGroup

__all__ = [
    "ProtectionConfig",
    "RetryPolicy",
    "GroupHealth",
    "ShardInfo",
    "ParityInfo",
    "PutRecord",
    "ProtectionIndex",
    "rebuild_server",
]

_DEGRADED_READS = _obs.counter("staging.client.degraded_reads")
_DEGRADED_READ_SECONDS = _obs.histogram("staging.client.degraded_read.seconds")
_DEGRADED_PUTS = _obs.counter("staging.client.degraded_puts")
_VERIFY_FAILURES = _obs.counter("staging.client.verify_failures")
_PROTECTED_PUTS = _obs.counter("staging.protect.puts")
_PARITY_BYTES = _obs.counter("staging.protect.parity_bytes")
_HEALTH_TRANSITIONS = _obs.counter("staging.health.transitions")
_REBUILDS = _obs.counter("staging.rebuild.count")
_REBUILD_BYTES = _obs.counter("staging.rebuild.bytes")
_REBUILD_SECONDS = _obs.histogram("staging.rebuild.seconds")
_REBUILD_SKIPPED = _obs.counter("staging.rebuild.skipped_records")
_REBUILD_VERIFY_FAILURES = _obs.counter("staging.rebuild.verify_failures")
_REBUILD_BATCHES = _obs.counter("recovery.rebuild.batches")
_DECODE_BATCH_CODEWORDS = _obs.counter("recovery.decode.codewords")


def _digest(buf: np.ndarray | bytes) -> str:
    """Payload digest for shard verification (blake2b, 12-byte)."""
    if isinstance(buf, np.ndarray):
        buf = np.ascontiguousarray(buf)
    return hashlib.blake2b(buf, digest_size=12).hexdigest()


# ------------------------------------------------------------- configuration


@dataclass(frozen=True)
class ProtectionConfig:
    """How the client protects each put's shard group.

    Parameters
    ----------
    mode:
        ``"rs"`` — RS(k, ``parity``) erasure coding over the per-server
        shards; ``"replication"`` — ``replicas`` full copies of each shard.
    parity:
        Parity shard count m; the put tolerates losing any m of its servers.
    replicas:
        Extra full copies per shard in replication mode.
    verify_reads:
        Digest-check every shard read against the put-time digest. Catches
        silent corruption (a mismatching shard is treated as an erasure and
        reconstructed); reads are then served shard-aligned through the
        protection records rather than the raw geometric fast path.
    """

    mode: str = "rs"
    parity: int = 2
    replicas: int = 1
    verify_reads: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ("rs", "replication"):
            raise ConfigError(f"protection mode must be rs|replication, got {self.mode!r}")
        if self.mode == "rs" and self.parity < 1:
            raise ConfigError(f"rs protection needs parity >= 1, got {self.parity}")
        if self.mode == "replication" and self.replicas < 1:
            raise ConfigError(f"replication needs replicas >= 1, got {self.replicas}")


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter for transient server errors.

    ``deadline`` bounds one logical client call (all attempts plus backoff):
    no new attempt starts once it would overrun the deadline, so a flaky or
    slow server cannot stall a get indefinitely.
    """

    max_attempts: int = 4
    base_backoff: float = 0.005
    max_backoff: float = 0.1
    jitter: float = 0.5
    deadline: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff < 0 or self.max_backoff < self.base_backoff:
            raise ConfigError("need 0 <= base_backoff <= max_backoff")
        if not 0 <= self.jitter <= 1:
            raise ConfigError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline <= 0:
            raise ConfigError(f"deadline must be positive, got {self.deadline}")

    def backoff_for(self, attempt: int, rng: np.random.Generator | None = None) -> float:
        """Backoff before retry number ``attempt`` (1-based), with jitter."""
        raw = min(self.max_backoff, self.base_backoff * (2.0 ** (attempt - 1)))
        if rng is None or self.jitter <= 0:
            return raw
        return raw * (1.0 + self.jitter * float(rng.random()))


# ------------------------------------------------------------------- health

UP = "up"
SUSPECT = "suspect"
DOWN = "down"


class GroupHealth:
    """Per-server health state machine: up -> suspect -> down.

    A fail-stop :class:`ServerUnavailable` downs a server immediately;
    transient failures accumulate (``suspect`` after the first, ``down``
    after ``down_after`` consecutive ones); any success resets to ``up``.
    Down servers are routed around until :func:`rebuild_server` resets them.
    """

    def __init__(self, num_servers: int, down_after: int = 3) -> None:
        if down_after < 1:
            raise ConfigError(f"down_after must be >= 1, got {down_after}")
        self.down_after = down_after
        self._lock = threading.Lock()
        self._states = [UP] * num_servers
        self._failures = [0] * num_servers
        # Optional hook fired (outside the lock) when a server transitions
        # from suspect/down back to up — e.g. the data log drains that
        # server's pending-eviction queue on recovery.
        self.on_recovered: "callable | None" = None

    def state(self, server_id: int) -> str:
        return self._states[server_id]

    def is_down(self, server_id: int) -> bool:
        return self._states[server_id] == DOWN

    def mark_success(self, server_id: int) -> None:
        # Fast path: a healthy server stays healthy without taking the lock
        # (hot-path call; a racy read costs at most one redundant transition).
        if self._states[server_id] == UP and not self._failures[server_id]:
            return
        with self._lock:
            recovered = self._states[server_id] != UP
            if recovered:
                _HEALTH_TRANSITIONS.inc()
            self._states[server_id] = UP
            self._failures[server_id] = 0
        if recovered and self.on_recovered is not None:
            self.on_recovered(server_id)

    def mark_failure(self, server_id: int) -> None:
        """Record one transient failure; may demote to suspect or down."""
        with self._lock:
            self._failures[server_id] += 1
            if self._states[server_id] == DOWN:
                return
            nxt = DOWN if self._failures[server_id] >= self.down_after else SUSPECT
            if nxt != self._states[server_id]:
                _HEALTH_TRANSITIONS.inc()
                self._states[server_id] = nxt

    def mark_down(self, server_id: int) -> None:
        """Fail-stop: the server is gone until rebuilt."""
        with self._lock:
            if self._states[server_id] != DOWN:
                _HEALTH_TRANSITIONS.inc()
            self._states[server_id] = DOWN

    def reset(self, server_id: int) -> None:
        """A rebuilt/replaced server starts healthy."""
        with self._lock:
            recovered = self._states[server_id] != UP
            if recovered:
                _HEALTH_TRANSITIONS.inc()
            self._states[server_id] = UP
            self._failures[server_id] = 0
        if recovered and self.on_recovered is not None:
            self.on_recovered(server_id)

    def alive(self) -> list[int]:
        return [i for i, s in enumerate(self._states) if s != DOWN]

    def down_servers(self) -> list[int]:
        return [i for i, s in enumerate(self._states) if s == DOWN]

    def snapshot(self) -> dict:
        with self._lock:
            return {"states": list(self._states), "failures": list(self._failures)}

    def restore(self, snap: dict) -> None:
        with self._lock:
            self._states = list(snap["states"])
            self._failures = list(snap["failures"])


# ------------------------------------------------------------------ records


@dataclass(frozen=True)
class ShardInfo:
    """One data shard of a protected put: owner, geometry, size, digest."""

    server: int
    boxes: tuple[BBox, ...]
    nbytes: int
    digest: str


@dataclass(frozen=True)
class ParityInfo:
    """One placed parity shard: its codeword group, row j, and holder."""

    group: int
    j: int
    server: int
    digest: str


@dataclass(frozen=True)
class PutRecord:
    """Everything needed to verify and reconstruct one protected put.

    RS mode codes the data shards in *placement subgroups* (``groups``): a
    put spanning all servers leaves no distinct server for parity, so the
    shards are partitioned into runs of at most ``num_servers - m``, each an
    independent RS(len(run), m) codeword whose parity lives on servers
    *outside* the run. Losing any m servers then costs each codeword at most
    m shards — every subgroup stays decodable.
    """

    record_id: str
    desc: ObjectDescriptor
    mode: str  # "rs" | "replication"
    parity_count: int  # m each codeword was built with (rs mode)
    shard_len: int  # padded shard byte length
    shards: tuple[ShardInfo, ...]  # data shards, in placement order
    groups: tuple[tuple[int, ...], ...] = ()  # rs: shard indices per codeword
    parity: tuple[ParityInfo, ...] = ()  # rs: placed parity (may be < m per group)
    copies: tuple[tuple[int, ...], ...] = ()  # replication: per-shard copy holders

    @property
    def key(self) -> tuple[str, int]:
        return (self.desc.name, self.desc.version)

    def parity_blob_key(self, group: int, j: int) -> str:
        return f"{self.record_id}#g{group}p{j}"

    def copy_blob_key(self, i: int) -> str:
        return f"{self.record_id}#s{i}"

    def group_of(self, shard: int) -> int:
        for gi, members in enumerate(self.groups):
            if shard in members:
                return gi
        raise KeyError(shard)

    def readable_with(self, health: GroupHealth) -> bool:
        """Health-based estimate: can this record still be served?"""
        if self.mode == "rs":
            for gi, members in enumerate(self.groups):
                alive = sum(
                    1 for i in members if not health.is_down(self.shards[i].server)
                )
                alive += sum(
                    1
                    for p in self.parity
                    if p.group == gi and not health.is_down(p.server)
                )
                if alive < len(members):
                    return False
            return True
        return all(
            not health.is_down(s.server)
            or any(not health.is_down(c) for c in self.copies[i])
            for i, s in enumerate(self.shards)
        )


def record_id_for(desc: ObjectDescriptor) -> str:
    """Deterministic identity of one put's protection record."""
    return f"{desc.name}@v{desc.version}:{desc.bbox}"


class ProtectionIndex:
    """Thread-safe (name, version) -> {record_id: PutRecord} map."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: dict[tuple[str, int], dict[str, PutRecord]] = {}
        # Mutation journal for incremental checkpointing; None = off. Same
        # seal-in-O(1) contract as ObjectStore._journal.
        self._journal: list[tuple] | None = None

    # ----------------------------------------------------------- journaling

    def enable_journal(self) -> None:
        """Start recording mutations (idempotent)."""
        with self._lock:
            if self._journal is None:
                self._journal = []

    def disable_journal(self) -> None:
        """Stop recording mutations and drop any pending journal."""
        with self._lock:
            self._journal = None

    def journal_len(self) -> int:
        """Mutations recorded since the last seal."""
        with self._lock:
            return len(self._journal) if self._journal is not None else 0

    def seal_journal(self) -> list[tuple]:
        """Detach and return the mutations since the last seal; O(1)."""
        with self._lock:
            sealed = self._journal if self._journal is not None else []
            self._journal = []
            return sealed

    def add(self, rec: PutRecord) -> None:
        with self._lock:
            self._records.setdefault(rec.key, {})[rec.record_id] = rec
            if self._journal is not None:
                self._journal.append(("add", rec))

    def overlapping(self, desc: ObjectDescriptor) -> list[PutRecord]:
        """Records of (name, version) whose bbox intersects ``desc.bbox``."""
        with self._lock:
            recs = self._records.get(desc.key)
            if not recs:
                return []
            return [r for r in recs.values() if r.desc.bbox.intersects(desc.bbox)]

    def for_key(self, name: str, version: int) -> list[PutRecord]:
        with self._lock:
            return list(self._records.get((name, version), {}).values())

    def all_records(self) -> list[PutRecord]:
        with self._lock:
            return [r for recs in self._records.values() for r in recs.values()]

    def versions(self, name: str) -> list[int]:
        with self._lock:
            return sorted(v for (n, v) in self._records if n == name)

    def evict(self, name: str, version: int) -> int:
        """Drop all records of (name, version); returns the count dropped."""
        with self._lock:
            recs = self._records.pop((name, version), None)
            if recs and self._journal is not None:
                self._journal.append(("evict", (name, version)))
            return len(recs) if recs else 0

    def evict_older_than(self, name: str, version: int) -> int:
        """Drop records of ``name`` strictly below ``version``."""
        with self._lock:
            doomed = [(n, v) for (n, v) in self._records if n == name and v < version]
            dropped = 0
            for key in doomed:
                dropped += len(self._records.pop(key))
                if self._journal is not None:
                    self._journal.append(("evict", key))
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return sum(len(r) for r in self._records.values())

    def snapshot(self) -> dict:
        """Records are frozen; snapshotting copies only the containers."""
        with self._lock:
            return {"records": {k: dict(v) for k, v in self._records.items()}}

    def restore(self, snap: dict) -> None:
        with self._lock:
            self._records = {k: dict(v) for k, v in snap["records"].items()}
            if self._journal is not None:
                self._journal = []


# ------------------------------------------------------------ protected put


def _as_bytes(part: np.ndarray) -> np.ndarray:
    """Flatten one sub-box payload to a 1-D uint8 view (contiguous)."""
    return np.ascontiguousarray(part).reshape(-1).view(np.uint8)


def _shard_buffer(desc: ObjectDescriptor, data: np.ndarray, boxes) -> np.ndarray:
    """Concatenated bytes of one server's sub-boxes, in box order."""
    chunks = [_as_bytes(data[b.slices(desc.bbox)]) for b in boxes]
    return chunks[0] if len(chunks) == 1 else np.concatenate(chunks)


def _padded(buf: np.ndarray, shard_len: int) -> np.ndarray:
    if buf.size == shard_len:
        return buf
    out = np.zeros(shard_len, dtype=np.uint8)
    out[: buf.size] = buf
    return out


def _parity_candidates(
    group: "StagingGroup", data_servers: list[int]
) -> list[int]:
    """Non-owner servers in deterministic rotation order, healthy first."""
    n = len(group.servers)
    taken = set(data_servers)
    start = (max(data_servers) + 1) % n
    order = [(start + i) % n for i in range(n)]
    others = [s for s in order if s not in taken]
    return [s for s in others if not group.health.is_down(s)] + [
        s for s in others if group.health.is_down(s)
    ]


def protected_put(
    client: "StagingClient",
    desc: ObjectDescriptor,
    data: np.ndarray,
    by_server: dict[int, list[BBox]],
) -> None:
    """Scatter a put's data shards and place its parity/copies.

    Data shards go to their placement owners as ordinary fragments (so
    unprotected readers and coverage queries still work); parity/copies go
    to distinct non-owner servers as protection blobs. Owners that are down
    (or fail past the retry budget) are skipped — their shard then lives
    only in parity until the server is rebuilt — and the put fails with
    :class:`StagingDegradedError` only when more shards were lost than the
    placed protection can reconstruct.
    """
    group = client.group
    cfg = group.protection
    health = group.health
    data = np.ascontiguousarray(data, dtype=np.dtype(desc.dtype))
    data_servers = sorted(by_server)
    k = len(data_servers)

    infos: list[ShardInfo] = []
    bufs: list[np.ndarray] = []
    for s in data_servers:
        boxes = tuple(by_server[s])
        buf = _shard_buffer(desc, data, boxes)
        infos.append(
            ShardInfo(server=s, boxes=boxes, nbytes=int(buf.nbytes), digest=_digest(buf))
        )
        bufs.append(buf)
    shard_len = max((b.size for b in bufs), default=1) or 1

    failed: list[int] = []
    for i, (s, info) in enumerate(zip(data_servers, infos)):
        if health.is_down(s):
            failed.append(i)
            continue
        items = [(desc.with_bbox(b), data[b.slices(desc.bbox)]) for b in info.boxes]
        server = group.servers[s]
        try:
            client._server_op(s, lambda srv=server, it=items: srv.put_many(it))
        except (ServerUnavailable, TransientServerError):
            failed.append(i)

    record_id = record_id_for(desc)
    parity: list[ParityInfo] = []
    groups: tuple[tuple[int, ...], ...] = ()
    copies: tuple[tuple[int, ...], ...] = ()
    overloaded: list[str] = []
    if cfg.mode == "rs":
        g_max = max(1, len(group.servers) - cfg.parity)
        groups = tuple(
            tuple(range(lo, min(lo + g_max, k))) for lo in range(0, k, g_max)
        )
        for gi, members in enumerate(groups):
            gk = len(members)
            mat = np.zeros((gk, shard_len), dtype=np.uint8)
            for row, i in enumerate(members):
                mat[row, : bufs[i].size] = bufs[i]
            rows = RSCode(gk, cfg.parity).encode_parity(mat)
            candidates = _parity_candidates(group, [data_servers[i] for i in members])
            ci = 0
            for j in range(cfg.parity):
                placed = False
                while ci < len(candidates) and not placed:
                    s = candidates[ci]
                    ci += 1
                    if health.is_down(s):
                        continue
                    row = rows[j]
                    server = group.servers[s]
                    try:
                        client._server_op(
                            s,
                            lambda srv=server, r=row, g=gi, jj=j: srv.put_blob(
                                desc.name, desc.version, f"{record_id}#g{g}p{jj}", r
                            ),
                        )
                    except (ServerUnavailable, TransientServerError):
                        continue
                    parity.append(
                        ParityInfo(group=gi, j=j, server=s, digest=_digest(row))
                    )
                    _PARITY_BYTES.inc(shard_len)
                    placed = True
            lost = sum(1 for i in failed if i in members)
            placed_parity = sum(1 for p in parity if p.group == gi)
            if lost > placed_parity:
                overloaded.append(
                    f"group {gi}: {lost} shard(s) lost, {placed_parity} parity placed"
                )
    else:
        placed_copies: list[tuple[int, ...]] = []
        for i, (s, buf) in enumerate(zip(data_servers, bufs)):
            holders: list[int] = []
            candidates = _parity_candidates(group, [s])
            for c in candidates:
                if len(holders) >= cfg.replicas:
                    break
                if health.is_down(c):
                    continue
                server = group.servers[c]
                try:
                    client._server_op(
                        c,
                        lambda srv=server, b=buf, ii=i: srv.put_blob(
                            desc.name, desc.version, f"{record_id}#s{ii}", b
                        ),
                    )
                except (ServerUnavailable, TransientServerError):
                    continue
                holders.append(c)
                _PARITY_BYTES.inc(int(buf.nbytes))
            placed_copies.append(tuple(holders))
        copies = tuple(placed_copies)
        overloaded = [f"shard {i}: no copy placed" for i in failed if not copies[i]]

    record = PutRecord(
        record_id=record_id,
        desc=desc,
        mode=cfg.mode,
        parity_count=cfg.parity,
        shard_len=shard_len,
        shards=tuple(infos),
        groups=groups,
        parity=tuple(parity),
        copies=copies,
    )
    group.records.add(record)
    _PROTECTED_PUTS.inc()

    if failed:
        _DEGRADED_PUTS.inc()
        if overloaded:
            raise StagingDegradedError(
                f"put {desc}: {len(failed)} of {k} shard server(s) lost beyond "
                f"protection ({'; '.join(overloaded)})"
            )


# ------------------------------------------------------------ protected get


def _verify_reads(group: "StagingGroup") -> bool:
    """Digest-check reads? (Records can outlive a dropped protection config.)"""
    cfg = group.protection
    return cfg.verify_reads if cfg is not None else True


def _fetch_shard(client: "StagingClient", rec: PutRecord, i: int) -> np.ndarray:
    """One data shard's bytes, digest-verified. Raises ServerUnavailable /
    TransientServerError on loss or corruption, ObjectNotFound when a healthy
    server simply does not hold the fragments (absent ≠ lost).

    The digest check runs *inside* the retried callable so a transiently
    corrupted read burns a retry attempt (with backoff) instead of surfacing
    as an erasure: ``_server_op`` catches the TransientServerError, marks the
    failure, and re-reads. Only an exhausted retry budget escalates."""
    si = rec.shards[i]
    group = client.group
    if group.health.is_down(si.server):
        raise ServerUnavailable(si.server)
    descs = [rec.desc.with_bbox(b) for b in si.boxes]
    server = group.servers[si.server]

    def fetch_verified(srv=server, d=descs) -> np.ndarray:
        parts = srv.get_many(d)
        chunks = [_as_bytes(p) for p in parts]
        buf = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        if _verify_reads(group) and _digest(buf) != si.digest:
            _VERIFY_FAILURES.inc()
            raise TransientServerError(
                si.server, f"shard digest mismatch for {rec.desc}"
            )
        return buf

    return client._server_op(si.server, fetch_verified)


def _fetch_parity(client: "StagingClient", rec: PutRecord, p: ParityInfo) -> np.ndarray:
    group = client.group
    server = group.servers[p.server]
    key = rec.parity_blob_key(p.group, p.j)

    def fetch_verified(srv=server) -> np.ndarray:
        buf = _as_bytes(srv.get_blob(rec.desc.name, rec.desc.version, key))
        if _verify_reads(group) and _digest(buf) != p.digest:
            _VERIFY_FAILURES.inc()
            raise TransientServerError(p.server, "parity digest mismatch")
        return buf

    return client._server_op(p.server, fetch_verified)


@dataclass
class _DecodeJob:
    """One subgroup codeword ready to decode: survivors in, erasures out.

    Planning (survivor/parity fetches) is separated from decoding so callers
    can batch the matrix solves across many jobs — ``decode_batch`` groups
    codewords by erasure pattern, paying one inverse per pattern instead of
    one per record.
    """

    rec: PutRecord
    members: tuple[int, ...]  # record-level shard indices of this codeword
    survivors: list[Shard]
    erased: list[int]  # members to recover


def _plan_recovery(
    client: "StagingClient",
    rec: PutRecord,
    bufs: dict[int, np.ndarray],
    erased: set[int],
) -> tuple[list[_DecodeJob], dict[int, np.ndarray]]:
    """Fetch stage of a degraded read: gather survivors, build decode jobs.

    ``bufs`` holds already-fetched shards and is extended in place with any
    additional survivors fetched here. Replication recovery has no decode
    stage, so its shards come back in the second element directly; RS
    recovery returns one :class:`_DecodeJob` per affected codeword. Raises
    :class:`StagingDegradedError` when too few shards survive, or
    :class:`ObjectNotFound` when nothing was lost to server faults and the
    data is simply absent (e.g. rolled back).
    """
    group = client.group
    fault_losses = set(erased)
    absent = 0

    if rec.mode == "rs":
        # Decoding is per subgroup: fetch the surviving members of every
        # codeword that lost a shard (other subgroups are untouched).
        affected = {rec.group_of(i) for i in erased}
        needed = [i for gi in affected for i in rec.groups[gi]]
    else:
        needed = []
    for i in needed:
        if i in bufs or i in erased:
            continue
        try:
            bufs[i] = _fetch_shard(client, rec, i)
        except (ServerUnavailable, TransientServerError):
            erased.add(i)
            fault_losses.add(i)
        except ObjectNotFound:
            erased.add(i)
            absent += 1

    if rec.mode == "replication":
        recovered: dict[int, np.ndarray] = {}
        for i in sorted(erased):
            si = rec.shards[i]
            buf = None
            for c in rec.copies[i] if i < len(rec.copies) else ():
                if group.health.is_down(c):
                    continue
                server = group.servers[c]
                key = rec.copy_blob_key(i)

                def fetch_verified(srv=server, kk=key, want=si, holder=c) -> np.ndarray:
                    flat = _as_bytes(
                        srv.get_blob(rec.desc.name, rec.desc.version, kk)
                    )
                    if _verify_reads(group) and _digest(flat) != want.digest:
                        _VERIFY_FAILURES.inc()
                        raise TransientServerError(
                            holder, f"copy digest mismatch for {rec.desc}"
                        )
                    return flat

                try:
                    flat = client._server_op(c, fetch_verified)
                except (ServerUnavailable, TransientServerError, ObjectNotFound):
                    continue
                buf = flat[: si.nbytes]
                break
            if buf is None:
                if not fault_losses:
                    raise ObjectNotFound(f"{rec.desc}: shard {i} absent (not lost)")
                raise StagingDegradedError(
                    f"{rec.desc}: shard {i} and all its copies are unavailable"
                )
            recovered[i] = buf
        return [], recovered

    jobs: list[_DecodeJob] = []
    for gi in sorted({rec.group_of(i) for i in erased}):
        members = rec.groups[gi]
        gk = len(members)
        group_erased = [i for i in members if i in erased]
        survivors = [
            Shard(index=row, data=_padded(bufs[i], rec.shard_len))
            for row, i in enumerate(members)
            if i in bufs
        ]
        for p in rec.parity:
            if len(survivors) >= gk:
                break
            if p.group != gi or group.health.is_down(p.server):
                continue
            try:
                survivors.append(
                    Shard(index=gk + p.j, data=_fetch_parity(client, rec, p))
                )
            except (ServerUnavailable, TransientServerError, ObjectNotFound):
                continue
        if len(survivors) < gk:
            if not fault_losses and absent:
                raise ObjectNotFound(
                    f"{rec.desc}: {absent} shard(s) absent with no server faults"
                )
            raise StagingDegradedError(
                f"{rec.desc}: codeword {gi} lost {len(group_erased)} of {gk} data "
                f"shard(s), only {len(survivors)} codeword shard(s) survive (need {gk})"
            )
        jobs.append(_DecodeJob(rec=rec, members=members, survivors=survivors,
                               erased=group_erased))
    return jobs, {}


def _decode_jobs(jobs: list[_DecodeJob]) -> list["np.ndarray | DecodingError"]:
    """Decode many jobs with as few matrix solves as possible.

    Jobs sharing code parameters (gk, m) go through one ``decode_batch``
    call, which further groups them by erasure pattern internally. A
    :class:`DecodingError` anywhere in a batch falls back to per-job scalar
    decodes so one malformed record cannot poison its batch — the error is
    returned in that job's slot instead of raised (per-record isolation).
    """
    results: list[np.ndarray | DecodingError | None] = [None] * len(jobs)
    by_code: dict[tuple[int, int], list[int]] = {}
    for idx, job in enumerate(jobs):
        by_code.setdefault(
            (len(job.members), job.rec.parity_count), []
        ).append(idx)
    for (gk, m), idxs in by_code.items():
        code = RSCode(gk, m)
        batch = [jobs[i] for i in idxs]
        _DECODE_BATCH_CODEWORDS.inc(len(batch))
        try:
            flats = code.decode_batch(
                [j.survivors for j in batch],
                [gk * j.rec.shard_len for j in batch],
            )
        except DecodingError:
            flats = []
            for j in batch:
                try:
                    flats.append(code.decode(j.survivors, gk * j.rec.shard_len))
                except DecodingError as exc:
                    flats.append(exc)
        for i, flat in zip(idxs, flats):
            results[i] = (
                flat
                if isinstance(flat, DecodingError)
                else np.frombuffer(flat, dtype=np.uint8)
            )
    return results


def _apply_decoded(
    job: _DecodeJob, raw: np.ndarray, out: dict[int, np.ndarray]
) -> None:
    """Slice one decoded codeword's erased shards into ``out``."""
    shard_len = job.rec.shard_len
    for i in job.erased:
        row = job.members.index(i)
        out[i] = raw[row * shard_len : row * shard_len + job.rec.shards[i].nbytes]


def _reconstruct(
    client: "StagingClient",
    rec: PutRecord,
    bufs: dict[int, np.ndarray],
    erased: set[int],
) -> dict[int, np.ndarray]:
    """Recover the erased data shards of one record from survivors."""
    jobs, recovered = _plan_recovery(client, rec, bufs, erased)
    for job, raw in zip(jobs, _decode_jobs(jobs)):
        if isinstance(raw, DecodingError):
            raise StagingDegradedError(
                f"{rec.desc}: reconstruction failed: {raw}"
            ) from raw
        _apply_decoded(job, raw, recovered)
    return recovered


def _fill_from_shards(
    rec: PutRecord,
    bufs: dict[int, np.ndarray],
    indices: list[int],
    desc: ObjectDescriptor,
    out: np.ndarray,
    need: BBox,
) -> None:
    """Copy the needed region of each shard's boxes into ``out``."""
    dtype = np.dtype(rec.desc.dtype)
    for i in indices:
        si = rec.shards[i]
        buf = bufs[i]
        offset = 0
        for b in si.boxes:
            nb = b.volume * dtype.itemsize
            sub = b.intersect(need)
            if sub is not None:
                arr = buf[offset : offset + nb].view(dtype).reshape(b.shape)
                out[sub.slices(desc.bbox)] = arr[sub.slices(b)]
            offset += nb


def read_record(
    client: "StagingClient",
    rec: PutRecord,
    desc: ObjectDescriptor,
    out: np.ndarray,
) -> bool:
    """Serve ``rec.desc.bbox ∩ desc.bbox`` into ``out``; True if degraded."""
    need = rec.desc.bbox.intersect(desc.bbox)
    if need is None:
        return False
    k = len(rec.shards)
    needed = [
        i for i in range(k) if any(b.intersects(need) for b in rec.shards[i].boxes)
    ]
    bufs: dict[int, np.ndarray] = {}
    erased: set[int] = set()
    for i in needed:
        try:
            bufs[i] = _fetch_shard(client, rec, i)
        except (ServerUnavailable, TransientServerError):
            erased.add(i)
    if erased:
        t0 = perf_counter()
        bufs.update(_reconstruct(client, rec, bufs, erased))
        _DEGRADED_READS.inc()
        _DEGRADED_READ_SECONDS.record(perf_counter() - t0)
    _fill_from_shards(rec, bufs, needed, desc, out, need)
    return bool(erased)


def collect_shards(
    client: "StagingClient", rec: PutRecord, want: set[int] | None = None
) -> dict[int, np.ndarray]:
    """All (or ``want``) data shards of a record, reconstructing as needed."""
    k = len(rec.shards)
    indices = sorted(want) if want is not None else list(range(k))
    bufs: dict[int, np.ndarray] = {}
    erased: set[int] = set()
    for i in indices:
        try:
            bufs[i] = _fetch_shard(client, rec, i)
        except (ServerUnavailable, TransientServerError):
            erased.add(i)
    if erased:
        bufs.update(_reconstruct(client, rec, bufs, erased))
    return bufs


# ----------------------------------------------------------------- rebuild


REBUILD_BATCH_RECORDS = 32


@dataclass
class _RebuildPlan:
    """Everything fetched for one record's rebuild, decode still pending."""

    rec: PutRecord
    own_data: list[int]
    own_parity: list[ParityInfo]
    own_copies: list[int]
    bufs: dict[int, np.ndarray]
    jobs: list[_DecodeJob]


def rebuild_server(
    group: "StagingGroup",
    server_id: int,
    replacement=None,
    parallel: bool | None = None,
    batch_size: int = REBUILD_BATCH_RECORDS,
) -> int:
    """Repopulate a lost server from survivors and swap it into the group.

    Every protection record referencing ``server_id`` is replayed: its data
    shards are reconstructed (degraded-read machinery) and re-stored as
    ordinary fragments; its parity shards are recomputed from the data
    shards; replication copies are re-placed. Only *protected* data can be
    rebuilt — fragments that were written without protection died with the
    server. Records whose surviving shards are insufficient (or fail digest
    verification) are skipped and counted
    (``staging.rebuild.skipped_records``).

    With ``parallel`` (default: the group's ``parallel`` flag) records are
    processed in batches pipelined on the shared staging pool — batch N+1's
    survivor fetches run while batch N decodes and stores — and each batch's
    matrix solves are amortised through ``decode_batch``. ``parallel=False``
    preserves the serial record-at-a-time path. Either way every
    reconstructed shard is digest-verified before it is stored, and the
    server's health flips back up only after the whole rebuild — a replica
    is never marked healthy while holding unverified bytes.

    The replacement, when not supplied, is provisioned by the group's
    transport (:meth:`repro.net.transport.Transport.make_replacement`): a
    fresh in-process server on inproc, a fresh server *process* on TCP (the
    lost one's process is retired) — rebuild works unchanged over sockets.

    Returns the number of payload bytes rebuilt onto the new server.
    """
    from repro.staging.client import StagingClient

    t0 = perf_counter()
    fresh = (
        replacement
        if replacement is not None
        else group.transport.make_replacement(server_id)
    )
    client = StagingClient(group, client_id=f"rebuild-{server_id}")
    group.health.mark_down(server_id)  # route every fetch to survivors
    if parallel is None:
        parallel = group.parallel
    records = group.records.all_records()
    if parallel and records:
        rebuilt = _rebuild_pipelined(client, records, server_id, fresh, batch_size)
    else:
        rebuilt = 0
        for rec in records:
            try:
                rebuilt += _rebuild_record(client, rec, server_id, fresh)
            except (ObjectNotFound, StagingDegradedError):
                _REBUILD_SKIPPED.inc()
    group.servers[server_id] = fresh
    group.health.reset(server_id)
    _REBUILDS.inc()
    _REBUILD_BYTES.inc(rebuilt)
    _REBUILD_SECONDS.record(perf_counter() - t0)
    return rebuilt


def _plan_rebuild_record(
    client: "StagingClient", rec: PutRecord, server_id: int
) -> _RebuildPlan | None:
    """Fetch stage: gather every survivor this record's rebuild needs.

    Returns ``None`` when the record does not reference ``server_id``.
    Decode jobs are returned un-decoded so the caller can batch the solves
    across records.
    """
    own_data = [i for i, s in enumerate(rec.shards) if s.server == server_id]
    own_parity = [p for p in rec.parity if p.server == server_id]
    own_copies = [i for i, holders in enumerate(rec.copies) if server_id in holders]
    if not (own_data or own_parity or own_copies):
        return None

    want = set(own_data) | set(own_copies)
    for p in own_parity:  # parity recompute needs its codeword's shards
        want |= set(rec.groups[p.group])
    bufs: dict[int, np.ndarray] = {}
    erased: set[int] = set()
    for i in sorted(want) if want else range(len(rec.shards)):
        try:
            bufs[i] = _fetch_shard(client, rec, i)
        except (ServerUnavailable, TransientServerError):
            erased.add(i)
    jobs: list[_DecodeJob] = []
    if erased:
        jobs, recovered = _plan_recovery(client, rec, bufs, erased)
        bufs.update(recovered)
    return _RebuildPlan(rec, own_data, own_parity, own_copies, bufs, jobs)


def _store_rebuilt(plan: _RebuildPlan, fresh) -> int:
    """Verify one record's rebuilt bytes against put-time digests, then store.

    Verification is unconditional — independent of ``verify_reads`` — and
    covers reconstructed *and* directly-fetched shards plus recomputed
    parity, so a corrupt survivor or a bad decode can never be laundered
    onto the replacement. Nothing is stored until everything checks out
    (record-level all-or-nothing).
    """
    rec = plan.rec
    bufs = plan.bufs
    dtype = np.dtype(rec.desc.dtype)

    for i in sorted(set(plan.own_data) | set(plan.own_copies)):
        if _digest(bufs[i]) != rec.shards[i].digest:
            _REBUILD_VERIFY_FAILURES.inc()
            raise StagingDegradedError(
                f"{rec.desc}: rebuilt shard {i} fails digest verification"
            )
    parity_rows: dict[tuple[int, int], np.ndarray] = {}
    for p in plan.own_parity:
        members = rec.groups[p.group]
        gk = len(members)
        mat = np.zeros((gk, rec.shard_len), dtype=np.uint8)
        for row, i in enumerate(members):
            mat[row, : bufs[i].size] = bufs[i]
        rows = RSCode(gk, rec.parity_count).encode_parity(mat)
        if _digest(rows[p.j]) != p.digest:
            _REBUILD_VERIFY_FAILURES.inc()
            raise StagingDegradedError(
                f"{rec.desc}: recomputed parity g{p.group}p{p.j} fails digest "
                f"verification"
            )
        parity_rows[(p.group, p.j)] = rows[p.j]

    rebuilt = 0
    for i in plan.own_data:
        si = rec.shards[i]
        buf = bufs[i]
        offset = 0
        items = []
        for b in si.boxes:
            nb = b.volume * dtype.itemsize
            arr = buf[offset : offset + nb].view(dtype).reshape(b.shape)
            items.append((rec.desc.with_bbox(b), arr))
            offset += nb
        fresh.put_many(items)
        rebuilt += si.nbytes

    for p in plan.own_parity:
        fresh.put_blob(
            rec.desc.name,
            rec.desc.version,
            rec.parity_blob_key(p.group, p.j),
            parity_rows[(p.group, p.j)],
        )
        rebuilt += rec.shard_len

    for i in plan.own_copies:
        fresh.put_blob(
            rec.desc.name, rec.desc.version, rec.copy_blob_key(i), bufs[i]
        )
        rebuilt += rec.shards[i].nbytes

    return rebuilt


def _rebuild_record(
    client: "StagingClient", rec: PutRecord, server_id: int, fresh
) -> int:
    """Serial path: plan, decode, verify, and store one record."""
    plan = _plan_rebuild_record(client, rec, server_id)
    if plan is None:
        return 0
    for job, raw in zip(plan.jobs, _decode_jobs(plan.jobs)):
        if isinstance(raw, DecodingError):
            raise StagingDegradedError(
                f"{rec.desc}: reconstruction failed: {raw}"
            ) from raw
        _apply_decoded(job, raw, plan.bufs)
    return _store_rebuilt(plan, fresh)


def _apply_rebuild_batch(plans: list, fresh) -> int:
    """Decode + verify + store one fetched batch; skips failed records."""
    jobs = [
        job
        for plan in plans
        if isinstance(plan, _RebuildPlan)
        for job in plan.jobs
    ]
    raw_by_job = dict(zip(map(id, jobs), _decode_jobs(jobs)))
    rebuilt = 0
    for plan in plans:
        if plan is None:
            continue
        if isinstance(plan, Exception):
            _REBUILD_SKIPPED.inc()
            continue
        try:
            for job in plan.jobs:
                raw = raw_by_job[id(job)]
                if isinstance(raw, DecodingError):
                    raise StagingDegradedError(
                        f"{plan.rec.desc}: reconstruction failed: {raw}"
                    ) from raw
                _apply_decoded(job, raw, plan.bufs)
            rebuilt += _store_rebuilt(plan, fresh)
        except (ObjectNotFound, StagingDegradedError):
            _REBUILD_SKIPPED.inc()
    return rebuilt


def _rebuild_pipelined(
    client: "StagingClient",
    records: list[PutRecord],
    server_id: int,
    fresh,
    batch_size: int,
) -> int:
    """Pipelined rebuild: fetch batch N+1 while decoding/storing batch N.

    The fetch stage (survivor reads, retry loops, digest checks) runs on the
    shared staging pool one batch ahead of the decode/store stage, so
    network-ish latency overlaps field arithmetic. Per-record failures are
    confined to their record: a fetch failure parks the exception in the
    plan slot, a decode/verify failure skips that record at store time.
    """
    pool = client.group.executor

    def fetch_batch(batch: list[PutRecord]) -> list:
        plans: list = []
        for rec in batch:
            try:
                plans.append(_plan_rebuild_record(client, rec, server_id))
            except (ObjectNotFound, StagingDegradedError) as exc:
                plans.append(exc)
        return plans

    batches = [
        records[lo : lo + batch_size] for lo in range(0, len(records), batch_size)
    ]
    rebuilt = 0
    future = pool.submit(fetch_batch, batches[0])
    for bi in range(len(batches)):
        plans = future.result()
        if bi + 1 < len(batches):
            future = pool.submit(fetch_batch, batches[bi + 1])
        _REBUILD_BATCHES.inc()
        rebuilt += _apply_rebuild_batch(plans, fresh)
    return rebuilt
