"""A staging server: versioned store + metadata index.

This is the synchronous in-memory core shared by both execution substrates:
the threaded runtime wraps it in a service loop, and the performance
simulator attaches service-time models to the same operations.
"""

from __future__ import annotations

import numpy as np

from repro.descriptors.odsc import ObjectDescriptor
from repro.geometry.bbox import BBox
from repro.staging.index import SpatialIndex
from repro.staging.store import ObjectStore, StoredObject

__all__ = ["StagingServer"]


class StagingServer:
    """One staging server holding a shard of the global domain.

    The server does not know the placement map; clients are responsible for
    sending each server only the shards it owns (exactly as in DataSpaces,
    where the client library computes DHT placement).
    """

    def __init__(self, server_id: int) -> None:
        self.server_id = server_id
        self.store = ObjectStore()
        self.index = SpatialIndex()

    # ------------------------------------------------------------------ ops

    def put(self, desc: ObjectDescriptor, data: np.ndarray) -> StoredObject:
        """Store one fragment and index it."""
        before = self.store.nbytes
        obj = self.store.put(desc, data)
        added = self.store.nbytes - before
        if added:
            self.index.insert(desc, added)
        return obj

    def get(self, desc: ObjectDescriptor) -> np.ndarray:
        """Assemble and return the requested region."""
        return self.store.get(desc)

    def covers(self, desc: ObjectDescriptor) -> bool:
        """True when this server can fully serve ``desc``."""
        return self.store.covers(desc)

    def query_versions(self, name: str) -> list[int]:
        """Versions of ``name`` (possibly partial) on this server."""
        return self.store.versions(name)

    def evict(self, name: str, version: int) -> int:
        """Drop (name, version); returns bytes freed."""
        self.index.remove_version(name, version)
        return self.store.evict(name, version)

    def evict_older_than_version(self, name: str, version: int) -> int:
        """Drop versions of ``name`` strictly below ``version``; returns bytes."""
        freed = 0
        for v in list(self.store.versions(name)):
            if v < version:
                freed += self.evict(name, v)
        return freed

    def keep_only_latest(self, name: str) -> int:
        """Original-DataSpaces retention: keep only the newest version.

        Returns bytes freed. This is the behaviour the paper's *original data
        staging* baseline (``Ds``) exhibits; the logging store deliberately
        retains more (Figure 9(c)/(d) measures exactly that difference).
        """
        latest = self.store.latest_version(name)
        if latest is None:
            return 0
        freed = 0
        for v in self.store.versions(name):
            if v != latest:
                freed += self.evict(name, v)
        return freed

    # -------------------------------------------------------------- metrics

    @property
    def nbytes(self) -> int:
        """Payload bytes resident on this server."""
        return self.store.nbytes

    def summary(self) -> dict:
        """Small diagnostic snapshot for logging and tests."""
        return {
            "server_id": self.server_id,
            "nbytes": self.nbytes,
            "fragments": self.store.object_count,
            "names": self.index.names(),
        }
