"""A staging server: versioned store + metadata index.

This is the synchronous in-memory core shared by both execution substrates:
the threaded runtime wraps it in a service loop, and the performance
simulator attaches service-time models to the same operations.

The store and the index are updated in lockstep — every fragment the store
accepts gains exactly one index entry of the same byte size, and every
eviction and snapshot/restore touches both — so ``index.versions(name) ==
store.versions(name)`` and ``index.nbytes() == store.nbytes`` hold at every
operation boundary (property-tested in tests/staging).
"""

from __future__ import annotations

import threading
from time import perf_counter

import numpy as np

from repro.descriptors.odsc import ObjectDescriptor
from repro.errors import ObjectNotFound
from repro.obs import registry as _obs
from repro.staging.index import SpatialIndex
from repro.staging.store import ObjectStore, StoredObject

__all__ = ["StagingServer"]

# Instrument-site handles, resolved once at import (see repro.obs.metrics).
_PUT_COUNT = _obs.counter("staging.server.put.count")
_PUT_BYTES = _obs.counter("staging.server.put.bytes")
_PUT_SECONDS = _obs.histogram("staging.server.put.seconds")
_GET_COUNT = _obs.counter("staging.server.get.count")
_GET_SECONDS = _obs.histogram("staging.server.get.seconds")
_EVICT_COUNT = _obs.counter("staging.server.evict.count")
_EVICT_BYTES = _obs.counter("staging.server.evict.bytes")


class StagingServer:
    """One staging server holding a shard of the global domain.

    The server does not know the placement map; clients are responsible for
    sending each server only the shards it owns (exactly as in DataSpaces,
    where the client library computes DHT placement).

    Each server owns one reentrant lock guarding its store and index, so
    requests for *different* servers proceed in parallel while requests for
    the same server serialize — the paper's one-service-thread-per-server
    model. The lock is the innermost tier of the lock hierarchy (see
    DESIGN.md, performance architecture): holders never acquire any other
    lock, so lock ordering is trivially acyclic.
    """

    def __init__(self, server_id: int) -> None:
        self.server_id = server_id
        self.store = ObjectStore()
        self.index = SpatialIndex()
        self.lock = threading.RLock()
        # Protection side-store: opaque uint8 blobs (parity shards, shard
        # copies) keyed by (name, version) -> {blob key: bytes}. Kept outside
        # the ObjectStore so the store/index lockstep invariant stays exact;
        # evicting a (name, version) drops its blobs with it.
        self._blobs: dict[tuple[str, int], dict[str, np.ndarray]] = {}
        self._blob_bytes = 0
        # Blob mutation journal for incremental checkpointing; None = off.
        # Journaled blob-put bytes are accumulated alongside so sealing a
        # delta never re-walks the journal (same contract as the store's).
        self._blob_journal: list[tuple] | None = None
        self._blob_journal_bytes = 0

    # ----------------------------------------------------------- journaling

    def enable_journal(self) -> None:
        """Start journaling store/index/blob mutations (idempotent)."""
        with self.lock:
            self.store.enable_journal()
            self.index.enable_journal()
            if self._blob_journal is None:
                self._blob_journal = []

    def disable_journal(self) -> None:
        """Stop journaling and drop pending journals."""
        with self.lock:
            self.store.disable_journal()
            self.index.disable_journal()
            self._blob_journal = None
            self._blob_journal_bytes = 0

    def journal_mutation_count(self) -> int:
        """Mutations journaled since the last seal, across all layers; O(1)."""
        with self.lock:
            blobs = len(self._blob_journal) if self._blob_journal is not None else 0
            return self.store.journal_len + self.index.journal_len + blobs

    def seal_delta(self) -> dict:
        """Detach this epoch's journals in O(1) and start the next epoch.

        Called under the service's quiescence gate, so the three journals
        are sealed at one consistent cut. The returned dict is raw journal
        lists plus the running totals (``nbytes``, ``mutations``) kept at
        record time — packaging into a checkpoint delta happens outside any
        lock and in O(1) (see :mod:`repro.staging.cow`).
        """
        with self.lock:
            blobs = self._blob_journal if self._blob_journal is not None else []
            nbytes = self.store.journal_put_bytes + self._blob_journal_bytes
            mutations = (
                self.store.journal_len + self.index.journal_len + len(blobs)
            )
            self._blob_journal = []
            self._blob_journal_bytes = 0
            return {
                "store": self.store.seal_journal(),
                "index": self.index.seal_journal(),
                "blobs": blobs,
                "nbytes": nbytes,
                "mutations": mutations,
            }

    # ------------------------------------------------------------------ ops

    def put(self, desc: ObjectDescriptor, data: np.ndarray) -> StoredObject:
        """Store one fragment and index it.

        A fragment is indexed exactly when the store accepted it as a *new*
        fragment — detected by fragment count, not byte delta, so zero-byte
        payloads are indexed too and fully-redundant re-puts (which the
        store drops) are not double-counted.
        """
        t0 = perf_counter()
        with self.lock:
            obj = self._put_locked(desc, data)
        _PUT_COUNT.inc()
        _PUT_BYTES.inc(obj.nbytes)
        _PUT_SECONDS.record(perf_counter() - t0)
        return obj

    def _put_locked(self, desc: ObjectDescriptor, data: np.ndarray) -> StoredObject:
        before = self.store.fragment_count(desc.name, desc.version)
        obj = self.store.put(desc, data)
        if self.store.fragment_count(desc.name, desc.version) > before:
            self.index.insert(desc, obj.nbytes)
        return obj

    def put_many(
        self, items: list[tuple[ObjectDescriptor, np.ndarray]]
    ) -> list[StoredObject]:
        """Store a batch of fragments under one lock acquisition.

        One request often lands several sub-boxes on the same server (a box
        overlapping many of that server's distribution blocks); batching
        amortises the lock round-trip and the metric updates across them.
        """
        t0 = perf_counter()
        with self.lock:
            objs = [self._put_locked(desc, data) for desc, data in items]
        _PUT_COUNT.inc(len(items))
        _PUT_BYTES.inc(sum(o.nbytes for o in objs))
        _PUT_SECONDS.record(perf_counter() - t0)
        return objs

    def get(
        self, desc: ObjectDescriptor, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Assemble and return the requested region (into ``out`` if given)."""
        t0 = perf_counter()
        try:
            with self.lock:
                return self.store.get(desc, out=out)
        finally:
            _GET_COUNT.inc()
            _GET_SECONDS.record(perf_counter() - t0)

    def get_many(
        self,
        descs: list[ObjectDescriptor],
        outs: list[np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """Assemble a batch of regions under one lock acquisition.

        ``outs``, when given, supplies one destination array per descriptor
        (the shm transport's granted response segment).
        """
        t0 = perf_counter()
        try:
            with self.lock:
                if outs is None:
                    return [self.store.get(desc) for desc in descs]
                return [
                    self.store.get(desc, out=out) for desc, out in zip(descs, outs)
                ]
        finally:
            _GET_COUNT.inc(len(descs))
            _GET_SECONDS.record(perf_counter() - t0)

    # ------------------------------------------------------------------ blobs

    def put_blob(self, name: str, version: int, key: str, data: np.ndarray) -> None:
        """Store one opaque protection blob under (name, version, key).

        Re-puts overwrite (protection records are idempotent per record id);
        the payload is copied so the caller's buffer stays private.
        """
        arr = np.ascontiguousarray(data, dtype=np.uint8).reshape(-1).copy()
        with self.lock:
            bucket = self._blobs.setdefault((name, version), {})
            old = bucket.get(key)
            if old is not None:
                self._blob_bytes -= int(old.nbytes)
            bucket[key] = arr
            self._blob_bytes += int(arr.nbytes)
            if self._blob_journal is not None:
                self._blob_journal.append(("blob_put", (name, version), key, arr))
                self._blob_journal_bytes += int(arr.nbytes)

    def get_blob(self, name: str, version: int, key: str) -> np.ndarray:
        """Fetch one protection blob (served by reference; treat as immutable)."""
        with self.lock:
            bucket = self._blobs.get((name, version))
            if bucket is None or key not in bucket:
                raise ObjectNotFound(f"no blob {key!r} for {name!r} v{version}")
            return bucket[key]

    def blob_keys(self, name: str, version: int) -> list[str]:
        """Keys of blobs held for (name, version)."""
        with self.lock:
            return sorted(self._blobs.get((name, version), ()))

    def covers(self, desc: ObjectDescriptor) -> bool:
        """True when this server can fully serve ``desc``."""
        with self.lock:
            return self.store.covers(desc)

    def covers_all(self, descs: list[ObjectDescriptor]) -> bool:
        """True when every region in the batch is fully servable."""
        with self.lock:
            return all(self.store.covers(desc) for desc in descs)

    def query_versions(self, name: str) -> list[int]:
        """Versions of ``name`` (possibly partial) on this server."""
        with self.lock:
            return self.store.versions(name)

    def evict(self, name: str, version: int) -> int:
        """Drop (name, version) — fragments *and* protection blobs; returns
        bytes freed."""
        with self.lock:
            self.index.remove_version(name, version)
            freed = self.store.evict(name, version)
            blobs = self._blobs.pop((name, version), None)
            if blobs:
                blob_bytes = sum(int(b.nbytes) for b in blobs.values())
                self._blob_bytes -= blob_bytes
                freed += blob_bytes
                if self._blob_journal is not None:
                    self._blob_journal.append(("blob_evict", (name, version)))
        _EVICT_COUNT.inc()
        _EVICT_BYTES.inc(freed)
        return freed

    def evict_older_than_version(self, name: str, version: int) -> int:
        """Drop versions of ``name`` strictly below ``version``; returns bytes."""
        with self.lock:
            freed = 0
            for v in list(self.store.versions(name)):
                if v < version:
                    freed += self.evict(name, v)
            return freed

    def keep_only_latest(self, name: str) -> int:
        """Original-DataSpaces retention: keep only the newest version.

        Returns bytes freed. This is the behaviour the paper's *original data
        staging* baseline (``Ds``) exhibits; the logging store deliberately
        retains more (Figure 9(c)/(d) measures exactly that difference).
        """
        with self.lock:
            latest = self.store.latest_version(name)
            if latest is None:
                return 0
            freed = 0
            for v in self.store.versions(name):
                if v != latest:
                    freed += self.evict(name, v)
            return freed

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> dict:
        """Capture store, index, *and* protection blobs for coordinated
        checkpointing (blob payloads are immutable; only containers copy)."""
        with self.lock:
            return {
                "store": self.store.snapshot(),
                "index": self.index.snapshot(),
                "blobs": {k: dict(v) for k, v in self._blobs.items()},
            }

    @staticmethod
    def empty_snapshot() -> dict:
        """The snapshot of a server that never stored anything."""
        return {
            "store": {"objects": {}, "bytes": 0},
            "index": {"entries": {}},
            "blobs": {},
        }

    def restore(self, snap: dict) -> None:
        """Roll store, index, and blobs back together (coordinated rollback).

        Also accepts a legacy store-only snapshot (no ``"index"`` key); the
        index is then rebuilt from the restored fragments so a rollback can
        never leave the metadata layer pointing at rolled-back versions.
        Snapshots predating the protection side-store restore to empty blobs.
        """
        with self.lock:
            if "store" in snap:
                self.store.restore(snap["store"])
                self.index.restore(snap["index"])
            else:
                self.store.restore(snap)
                self.rebuild_index()
            self._blobs = {k: dict(v) for k, v in snap.get("blobs", {}).items()}
            self._blob_bytes = sum(
                int(b.nbytes) for bucket in self._blobs.values() for b in bucket.values()
            )
            if self._blob_journal is not None:
                self._blob_journal = []
                self._blob_journal_bytes = 0

    def rebuild_index(self) -> None:
        """Regenerate the index from the store's fragments."""
        with self.lock:
            self.index.clear()
            for name, version in self.store.keys():
                for frag in self.store.fragments(name, version):
                    self.index.insert(frag.desc, frag.nbytes)

    # -------------------------------------------------------------- metrics

    @property
    def nbytes(self) -> int:
        """Payload bytes resident on this server (excludes protection blobs)."""
        return self.store.nbytes

    @property
    def protection_nbytes(self) -> int:
        """Bytes held in protection blobs (parity shards, shard copies)."""
        return self._blob_bytes

    def summary(self) -> dict:
        """Small diagnostic snapshot for logging and tests."""
        return {
            "server_id": self.server_id,
            "nbytes": self.nbytes,
            "protection_nbytes": self.protection_nbytes,
            "fragments": self.store.object_count,
            "names": self.index.names(),
        }
