"""DHT-style placement of domain regions onto staging servers.

DataSpaces shards the global domain into fixed distribution blocks and maps
each block to a server through a space-filling curve, giving spatial locality
(neighbouring blocks usually live on the same server) and balanced load
(contiguous SFC ranges are split evenly across servers).

Lookups are grid arithmetic, not scans: the blocks form a regular grid, so
``server_of_point`` inverts the remainder-aware cut in O(ndim) and
``shards`` visits only the O(overlapping) grid cells a box touches. Repeated
queries for the same box (the norm in coupled workflows, which write the
same decomposition every step) hit a bounded memo — the same trick as
DataSpaces clients caching DHT query results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, GeometryError
from repro.geometry.bbox import BBox
from repro.geometry.domain import Domain, grid_decompose
from repro.geometry.sfc import bits_for_extent, hilbert_encode, morton_encode

__all__ = ["PlacementMap"]

# Bounded memo of shards() results per PlacementMap (FIFO eviction). Coupled
# workflows query a handful of distinct boxes over and over.
_SHARD_CACHE_MAX = 4096


@dataclass(frozen=True)
class _Block:
    bbox: BBox
    sfc_code: int
    server: int


class PlacementMap:
    """Maps regions of a :class:`Domain` to staging-server indices.

    Parameters
    ----------
    domain:
        The global index space being staged.
    num_servers:
        Number of staging servers to spread data across.
    blocks_per_server:
        Average number of distribution blocks per server; more blocks give
        finer load balance at higher metadata cost. DataSpaces uses a
        comparable constant factor.
    curve:
        ``"hilbert"`` (default, better locality) or ``"morton"``.
    """

    def __init__(
        self,
        domain: Domain,
        num_servers: int,
        blocks_per_server: int = 4,
        curve: str = "hilbert",
    ) -> None:
        if num_servers <= 0:
            raise ConfigError(f"num_servers must be positive, got {num_servers}")
        if blocks_per_server <= 0:
            raise ConfigError(
                f"blocks_per_server must be positive, got {blocks_per_server}"
            )
        if curve not in ("hilbert", "morton"):
            raise ConfigError(f"unknown curve {curve!r}")
        self.domain = domain
        self.num_servers = num_servers
        self.curve = curve

        # Choose a near-cubic grid with at least num_servers * blocks_per_server
        # blocks, but never exceeding the domain extent in any dimension.
        target = num_servers * blocks_per_server
        per_dim = max(1, round(target ** (1.0 / domain.ndim)))
        grid = tuple(min(per_dim, s) for s in domain.shape)
        self.grid = grid
        blocks = grid_decompose(domain.bbox, grid)

        # Per-dimension split geometry (remainder-aware: the first `rem`
        # blocks along a dimension are one cell wider).
        self._splits = tuple(
            divmod(domain.shape[d], grid[d]) for d in range(domain.ndim)
        )

        bits = max(bits_for_extent(g) for g in grid)
        encode = hilbert_encode if curve == "hilbert" else morton_encode

        coded = sorted(
            (encode(self._coord_of_point(b.lo), bits), b) for b in blocks
        )
        n = len(coded)
        self._blocks: list[_Block] = []
        for i, (code, bbox) in enumerate(coded):
            server = min(i * num_servers // n, num_servers - 1)
            self._blocks.append(_Block(bbox=bbox, sfc_code=code, server=server))

        # Grid-coordinate index over the same blocks: _grid_index[flat] is
        # the block at grid coordinate c, flat = sum(c[d] * stride[d]).
        strides = [1] * domain.ndim
        for d in range(domain.ndim - 2, -1, -1):
            strides[d] = strides[d + 1] * grid[d + 1]
        self._strides = tuple(strides)
        self._grid_index: list[_Block | None] = [None] * (strides[0] * grid[0])
        for blk in self._blocks:
            coord = self._coord_of_point(blk.bbox.lo)
            flat = sum(c * s for c, s in zip(coord, strides))
            self._grid_index[flat] = blk
        self._shard_cache: dict[BBox, list[tuple[int, BBox]]] = {}

    # ------------------------------------------------------------ grid math

    def _coord_of_point(self, point: tuple[int, ...]) -> tuple[int, ...]:
        """Grid coordinate of the block containing ``point`` (O(ndim))."""
        coord = []
        for d, (size, rem) in enumerate(self._splits):
            # Invert the remainder-aware cut: first `rem` blocks are size+1.
            p = point[d]
            wide = (size + 1) * rem
            if p < wide:
                coord.append(p // (size + 1))
            else:
                coord.append(rem + (p - wide) // size if size else rem)
        return tuple(coord)

    def _block_at(self, coord: tuple[int, ...]) -> _Block:
        flat = sum(c * s for c, s in zip(coord, self._strides))
        blk = self._grid_index[flat]
        assert blk is not None, f"grid cell {coord} has no block"
        return blk

    # ----------------------------------------------------------------- api

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    def server_of_point(self, point: tuple[int, ...]) -> int:
        """Server owning the block containing ``point`` (O(1) grid lookup)."""
        if not self.domain.bbox.contains_point(point):
            raise GeometryError(f"point {point} outside domain {self.domain.shape}")
        return self._block_at(self._coord_of_point(point)).server

    def shards(self, bbox: BBox) -> list[tuple[int, BBox]]:
        """Split ``bbox`` into per-server shards.

        Returns ``(server, sub-box)`` pairs covering exactly the intersection
        of ``bbox`` with the domain; sub-boxes are disjoint. Visits only the
        grid cells the box overlaps and memoises the result per box.
        """
        cached = self._shard_cache.get(bbox)
        if cached is not None:
            return list(cached)
        clipped = self.domain.bbox.intersect(bbox)
        if clipped is None:
            return []
        lo_coord = self._coord_of_point(clipped.lo)
        hi_coord = self._coord_of_point(tuple(h - 1 for h in clipped.hi))
        out: list[tuple[int, BBox]] = []
        coord = list(lo_coord)
        ndim = len(coord)
        while True:
            blk = self._block_at(tuple(coord))
            overlap = blk.bbox.intersect(bbox)
            if overlap is not None:
                out.append((blk.server, overlap))
            # Odometer increment over [lo_coord, hi_coord].
            d = ndim - 1
            while d >= 0:
                if coord[d] < hi_coord[d]:
                    coord[d] += 1
                    break
                coord[d] = lo_coord[d]
                d -= 1
            if d < 0:
                break
        if len(self._shard_cache) >= _SHARD_CACHE_MAX:
            # FIFO eviction: drop the oldest insertion (dicts keep order).
            self._shard_cache.pop(next(iter(self._shard_cache)))
        self._shard_cache[bbox] = out
        return list(out)

    def servers_of(self, bbox: BBox) -> list[int]:
        """Sorted distinct servers touched by ``bbox``."""
        return sorted({srv for srv, _ in self.shards(bbox)})

    def load_histogram(self) -> list[int]:
        """Number of distribution blocks assigned to each server."""
        hist = [0] * self.num_servers
        for blk in self._blocks:
            hist[blk.server] += 1
        return hist
