"""DHT-style placement of domain regions onto staging servers.

DataSpaces shards the global domain into fixed distribution blocks and maps
each block to a server through a space-filling curve, giving spatial locality
(neighbouring blocks usually live on the same server) and balanced load
(contiguous SFC ranges are split evenly across servers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, GeometryError
from repro.geometry.bbox import BBox
from repro.geometry.domain import Domain, grid_decompose
from repro.geometry.sfc import bits_for_extent, hilbert_encode, morton_encode

__all__ = ["PlacementMap"]


@dataclass(frozen=True)
class _Block:
    bbox: BBox
    sfc_code: int
    server: int


class PlacementMap:
    """Maps regions of a :class:`Domain` to staging-server indices.

    Parameters
    ----------
    domain:
        The global index space being staged.
    num_servers:
        Number of staging servers to spread data across.
    blocks_per_server:
        Average number of distribution blocks per server; more blocks give
        finer load balance at higher metadata cost. DataSpaces uses a
        comparable constant factor.
    curve:
        ``"hilbert"`` (default, better locality) or ``"morton"``.
    """

    def __init__(
        self,
        domain: Domain,
        num_servers: int,
        blocks_per_server: int = 4,
        curve: str = "hilbert",
    ) -> None:
        if num_servers <= 0:
            raise ConfigError(f"num_servers must be positive, got {num_servers}")
        if blocks_per_server <= 0:
            raise ConfigError(
                f"blocks_per_server must be positive, got {blocks_per_server}"
            )
        if curve not in ("hilbert", "morton"):
            raise ConfigError(f"unknown curve {curve!r}")
        self.domain = domain
        self.num_servers = num_servers
        self.curve = curve

        # Choose a near-cubic grid with at least num_servers * blocks_per_server
        # blocks, but never exceeding the domain extent in any dimension.
        target = num_servers * blocks_per_server
        per_dim = max(1, round(target ** (1.0 / domain.ndim)))
        grid = tuple(min(per_dim, s) for s in domain.shape)
        self.grid = grid
        blocks = grid_decompose(domain.bbox, grid)

        bits = max(bits_for_extent(g) for g in grid)
        encode = hilbert_encode if curve == "hilbert" else morton_encode

        def block_coord(b: BBox) -> tuple[int, ...]:
            # Grid coordinate of the block from its low corner.
            coord = []
            for d in range(domain.ndim):
                size, rem = divmod(domain.shape[d], grid[d])
                # Invert the remainder-aware cut: first `rem` blocks are size+1.
                lo = b.lo[d]
                wide = (size + 1) * rem
                if lo < wide:
                    coord.append(lo // (size + 1))
                else:
                    coord.append(rem + (lo - wide) // size if size else rem)
            return tuple(coord)

        coded = sorted(
            (encode(block_coord(b), bits), b) for b in blocks
        )
        n = len(coded)
        self._blocks: list[_Block] = []
        for i, (code, bbox) in enumerate(coded):
            server = min(i * num_servers // n, num_servers - 1)
            self._blocks.append(_Block(bbox=bbox, sfc_code=code, server=server))

    # ----------------------------------------------------------------- api

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    def server_of_point(self, point: tuple[int, ...]) -> int:
        """Server owning the block containing ``point``."""
        for blk in self._blocks:
            if blk.bbox.contains_point(point):
                return blk.server
        raise GeometryError(f"point {point} outside domain {self.domain.shape}")

    def shards(self, bbox: BBox) -> list[tuple[int, BBox]]:
        """Split ``bbox`` into per-server shards.

        Returns ``(server, sub-box)`` pairs covering exactly the intersection
        of ``bbox`` with the domain; sub-boxes are disjoint.
        """
        out: list[tuple[int, BBox]] = []
        for blk in self._blocks:
            overlap = blk.bbox.intersect(bbox)
            if overlap is not None:
                out.append((blk.server, overlap))
        return out

    def servers_of(self, bbox: BBox) -> list[int]:
        """Sorted distinct servers touched by ``bbox``."""
        return sorted({srv for srv, _ in self.shards(bbox)})

    def load_histogram(self) -> list[int]:
        """Number of distribution blocks assigned to each server."""
        hist = [0] * self.num_servers
        for blk in self._blocks:
            hist[blk.server] += 1
        return hist
