"""Versioned object store (one staging server's local storage).

Stores immutable payload fragments keyed by their descriptors. The store
tracks exact byte occupancy (the quantity behind the paper's Figure 9(c)/(d)
memory plots) and exposes assembly of a requested region from the fragments
that cover it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.descriptors.odsc import ObjectDescriptor
from repro.errors import ObjectNotFound, StagingError, VersionConflict
from repro.geometry.bbox import BBox

__all__ = ["StoredObject", "ObjectStore"]


@dataclass(frozen=True)
class StoredObject:
    """One immutable payload fragment with its descriptor."""

    desc: ObjectDescriptor
    data: np.ndarray = field(compare=False)

    def __post_init__(self) -> None:
        if tuple(self.data.shape) != self.desc.bbox.shape:
            raise StagingError(
                f"payload shape {self.data.shape} != descriptor box "
                f"shape {self.desc.bbox.shape}"
            )
        if self.data.dtype != np.dtype(self.desc.dtype):
            raise StagingError(
                f"payload dtype {self.data.dtype} != descriptor dtype {self.desc.dtype}"
            )

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)


class ObjectStore:
    """Fragments of named, versioned variables with exact byte accounting.

    Multiple fragments of the same (name, version) may coexist when different
    producer ranks wrote different sub-regions; overlapping re-puts of the
    same region must carry identical bytes (write-idempotence) or they raise
    :class:`VersionConflict`.
    """

    def __init__(self) -> None:
        # (name, version) -> list of fragments.
        self._objects: dict[tuple[str, int], list[StoredObject]] = {}
        self._bytes = 0
        self._count = 0
        # name -> set of versions with at least one fragment. Read on every
        # blocking-get poll (latest_version) and non-logged retention pass,
        # so it must not be recomputed by scanning every (name, version) key.
        self._versions: dict[str, set[int]] = {}
        # Mutation journal for incremental (copy-on-write) checkpointing.
        # None = journaling off (seed behaviour, no per-put overhead). When
        # enabled, every *effective* mutation appends one tuple; sealing an
        # epoch swaps the list out in O(1). Fragments are immutable, so a
        # journaled ("put", obj) shares the payload with the live store.
        # Payload bytes of journaled puts are accumulated alongside, so
        # packaging a sealed delta never has to re-walk the journal.
        self._journal: list[tuple] | None = None
        self._journal_put_bytes = 0

    # ----------------------------------------------------------- journaling

    def enable_journal(self) -> None:
        """Start recording mutations (idempotent; keeps an open journal)."""
        if self._journal is None:
            self._journal = []

    def disable_journal(self) -> None:
        """Stop recording mutations and drop any pending journal."""
        self._journal = None
        self._journal_put_bytes = 0

    @property
    def journal_len(self) -> int:
        """Mutations recorded since the last seal; O(1)."""
        return len(self._journal) if self._journal is not None else 0

    @property
    def journal_put_bytes(self) -> int:
        """Payload bytes of journaled puts since the last seal; O(1)."""
        return self._journal_put_bytes

    def seal_journal(self) -> list[tuple]:
        """Detach and return the mutations since the last seal; O(1).

        Journaling stays enabled: a fresh epoch starts immediately.
        """
        sealed = self._journal if self._journal is not None else []
        self._journal = []
        self._journal_put_bytes = 0
        return sealed

    # ------------------------------------------------------------------ put

    def put(self, desc: ObjectDescriptor, data: np.ndarray) -> StoredObject:
        """Store one fragment; returns the stored (copied) object.

        The payload is copied so later mutation by the producer cannot alter
        staged state — matching RDMA semantics where the staging server owns
        its buffer. Exactly one copy is made: when ``ascontiguousarray``
        already copied (non-contiguous or dtype-converted input), that
        private buffer is kept instead of being copied a second time.
        """
        arr = np.ascontiguousarray(data, dtype=np.dtype(desc.dtype))
        if arr is data or arr.base is not None:
            arr = arr.copy()
        obj = StoredObject(desc, arr)
        frags = self._objects.setdefault(desc.key, [])
        for existing in frags:
            overlap = existing.desc.bbox.intersect(desc.bbox)
            if overlap is None:
                continue
            mine = obj.data[overlap.slices(desc.bbox)]
            theirs = existing.data[overlap.slices(existing.desc.bbox)]
            if not np.array_equal(mine, theirs):
                raise VersionConflict(
                    f"conflicting re-put of {desc}: overlap {overlap} differs "
                    f"from fragment {existing.desc}"
                )
            if existing.desc.bbox.contains(desc.bbox):
                # Fully redundant write; keep the store unchanged.
                return existing
        frags.append(obj)
        self._bytes += obj.nbytes
        self._count += 1
        self._versions.setdefault(desc.name, set()).add(desc.version)
        if self._journal is not None:
            self._journal.append(("put", obj))
            self._journal_put_bytes += obj.nbytes
        return obj

    # ------------------------------------------------------------------ get

    def get(self, desc: ObjectDescriptor, out: np.ndarray | None = None) -> np.ndarray:
        """Assemble the requested region from stored fragments.

        Raises :class:`ObjectNotFound` unless stored fragments fully cover
        ``desc.bbox`` at ``desc.version``. With ``out`` (a writable
        ``desc``-shaped array), fragments are gathered directly into it and
        it is returned — the shm transport passes a shared-segment view
        here so the assembled region never exists anywhere else.
        """
        frags = self._objects.get(desc.key)
        if not frags:
            raise ObjectNotFound(f"no data for {desc.name!r} v{desc.version}")
        # Fast path: one fragment already holds the whole region — the
        # common case in coupled workflows, where readers request the same
        # decomposition writers produced. Skips the cover-tracking walk.
        for frag in frags:
            if frag.desc.bbox.contains(desc.bbox):
                src = frag.data[desc.bbox.slices(frag.desc.bbox)]
                if out is None:
                    return src.copy()
                np.copyto(out, src)
                return out
        if out is None:
            out = np.empty(desc.bbox.shape, dtype=np.dtype(desc.dtype))
        # Track uncovered regions as a list of boxes, carving out each fragment.
        uncovered: list[BBox] = [desc.bbox]
        for frag in frags:
            overlap = frag.desc.bbox.intersect(desc.bbox)
            if overlap is None:
                continue
            out[overlap.slices(desc.bbox)] = frag.data[overlap.slices(frag.desc.bbox)]
            uncovered = [
                piece for box in uncovered for piece in box.subtract(frag.desc.bbox)
            ]
            if not uncovered:
                break
        if uncovered:
            raise ObjectNotFound(
                f"{desc} only partially covered; missing {len(uncovered)} "
                f"region(s), e.g. {uncovered[0]}"
            )
        return out

    def covers(self, desc: ObjectDescriptor) -> bool:
        """True if :meth:`get` for ``desc`` would succeed."""
        frags = self._objects.get(desc.key)
        if not frags:
            return False
        for frag in frags:
            if frag.desc.bbox.contains(desc.bbox):
                return True
        uncovered: list[BBox] = [desc.bbox]
        for frag in frags:
            uncovered = [
                piece for box in uncovered for piece in box.subtract(frag.desc.bbox)
            ]
            if not uncovered:
                return True
        return not uncovered

    # ---------------------------------------------------------------- query

    def versions(self, name: str) -> list[int]:
        """Sorted versions present (possibly partially) for ``name``."""
        return sorted(self._versions.get(name, ()))

    def latest_version(self, name: str) -> int | None:
        """Highest version present for ``name``, or None; O(versions-of-name)."""
        versions = self._versions.get(name)
        return max(versions) if versions else None

    def fragments(self, name: str, version: int) -> list[StoredObject]:
        """All fragments stored for (name, version)."""
        return list(self._objects.get((name, version), ()))

    def fragment_count(self, name: str, version: int) -> int:
        """Number of fragments stored for (name, version); O(1)."""
        frags = self._objects.get((name, version))
        return len(frags) if frags else 0

    def keys(self) -> list[tuple[str, int]]:
        """All (name, version) pairs with at least one fragment."""
        return list(self._objects)

    # ------------------------------------------------------------- eviction

    def evict(self, name: str, version: int) -> int:
        """Drop every fragment of (name, version); returns bytes freed."""
        frags = self._objects.pop((name, version), None)
        if not frags:
            return 0
        freed = sum(f.nbytes for f in frags)
        self._bytes -= freed
        self._count -= len(frags)
        versions = self._versions.get(name)
        if versions is not None:
            versions.discard(version)
            if not versions:
                del self._versions[name]
        if self._journal is not None:
            self._journal.append(("evict", name, version))
        return freed

    def evict_older_than(self, name: str, version: int) -> int:
        """Drop all versions of ``name`` strictly below ``version``."""
        freed = 0
        for v in self.versions(name):
            if v < version:
                freed += self.evict(name, v)
        return freed

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> dict:
        """Capture the store's state for global coordinated checkpointing.

        Fragment payloads are immutable once stored, so the snapshot only
        copies the container structure, not the bytes — matching how a real
        coordinated protocol would checkpoint staging servers in place.
        The running aggregates travel with the snapshot so restore never
        rescans the containers to rebuild them.
        """
        return {
            "objects": {k: list(v) for k, v in self._objects.items()},
            "bytes": self._bytes,
            "count": self._count,
            "versions": {name: set(vs) for name, vs in self._versions.items()},
        }

    def restore(self, snap: dict) -> None:
        """Roll the store back to a previously captured snapshot.

        Snapshots carry the running aggregates; legacy snapshots (pre
        aggregate-carrying format) fall back to rebuilding them by scanning.
        Any open mutation journal restarts empty: the restored state is the
        new epoch base.
        """
        self._objects = {k: list(v) for k, v in snap["objects"].items()}
        self._bytes = snap["bytes"]
        if "count" in snap and "versions" in snap:
            self._count = snap["count"]
            self._versions = {name: set(vs) for name, vs in snap["versions"].items()}
        else:
            self._count = sum(len(v) for v in self._objects.values())
            self._versions = {}
            for name, version in self._objects:
                self._versions.setdefault(name, set()).add(version)
        if self._journal is not None:
            self._journal = []
            self._journal_put_bytes = 0

    # ------------------------------------------------------------- metrics

    @property
    def nbytes(self) -> int:
        """Exact bytes of payload currently held."""
        return self._bytes

    @property
    def object_count(self) -> int:
        """Number of fragments currently held; O(1) running counter."""
        return self._count

    def clear(self) -> None:
        """Drop everything."""
        self._objects.clear()
        self._bytes = 0
        self._count = 0
        self._versions.clear()
        if self._journal is not None:
            self._journal.append(("clear",))
