"""Size and time unit helpers.

All byte quantities in the library are plain ``int`` bytes and all times are
``float`` seconds; these helpers exist so configuration code can say
``40 * GIB`` or ``fmt_bytes(n)`` instead of sprinkling magic constants.
"""

from __future__ import annotations

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "KB",
    "MB",
    "GB",
    "US",
    "MS",
    "MINUTE",
    "HOUR",
    "fmt_bytes",
    "fmt_time",
]

# Binary byte units (the paper's "GB" figures are treated as GiB).
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

# Decimal byte units, for link bandwidths quoted in vendor GB/s.
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

# Time units, in seconds.
US = 1e-6
MS = 1e-3
MINUTE = 60.0
HOUR = 3600.0


def fmt_bytes(n: int | float) -> str:
    """Render a byte count with a binary suffix, e.g. ``20.0 GiB``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit, suffix in ((TIB, "TiB"), (GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if n >= unit:
            return f"{sign}{n / unit:.2f} {suffix}"
    return f"{sign}{n:.0f} B"


def fmt_time(seconds: float) -> str:
    """Render a duration with an adaptive unit, e.g. ``3.2 ms`` or ``2.1 h``."""
    s = abs(seconds)
    sign = "-" if seconds < 0 else ""
    if s >= HOUR:
        return f"{sign}{s / HOUR:.2f} h"
    if s >= MINUTE:
        return f"{sign}{s / MINUTE:.2f} min"
    if s >= 1.0:
        return f"{sign}{s:.3f} s"
    if s >= MS:
        return f"{sign}{s / MS:.3f} ms"
    return f"{sign}{s / US:.3f} us"
