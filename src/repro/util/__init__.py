"""Shared utilities: seeded RNG streams, units, and metric timelines."""

from repro.util.rng import RngRegistry, stream_seed
from repro.util.timeline import Counter, Timeline
from repro.util.units import (
    GB,
    GIB,
    HOUR,
    KB,
    KIB,
    MB,
    MIB,
    MINUTE,
    MS,
    TIB,
    US,
    fmt_bytes,
    fmt_time,
)

__all__ = [
    "RngRegistry",
    "stream_seed",
    "Counter",
    "Timeline",
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "KB",
    "MB",
    "GB",
    "US",
    "MS",
    "MINUTE",
    "HOUR",
    "fmt_bytes",
    "fmt_time",
]
