"""Deterministic random-number streams.

Every stochastic element of the reproduction (failure injection, workload
jitter, data payload generation) draws from a named child stream of a single
root seed so that experiments are exactly repeatable and independent
subsystems never perturb each other's draws.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RngRegistry", "stream_seed"]


def stream_seed(root_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 so that child streams are statistically independent and the
    mapping is stable across Python/NumPy versions (``hash()`` is salted per
    process and must not be used here).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


@dataclass
class RngRegistry:
    """A registry of named, independently-seeded NumPy generators.

    Parameters
    ----------
    root_seed:
        The experiment-level seed. Two registries with the same root seed
        hand out identical streams for identical names, regardless of the
        order in which streams are requested.
    """

    root_seed: int = 0
    _streams: dict[str, np.random.Generator] = field(default_factory=dict, repr=False)

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(stream_seed(self.root_seed, name))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """Return a child registry rooted at this registry's stream ``name``.

        Useful to give a subsystem its own namespace of streams.
        """
        return RngRegistry(root_seed=stream_seed(self.root_seed, name))

    def exponential(self, name: str, mean: float) -> float:
        """Draw one exponential variate with the given mean from a stream."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return float(self.get(name).exponential(mean))

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw one uniform variate on [low, high) from a stream."""
        if high < low:
            raise ValueError(f"empty interval [{low}, {high})")
        return float(self.get(name).uniform(low, high))

    def integers(self, name: str, low: int, high: int) -> int:
        """Draw one integer in [low, high) from a stream."""
        return int(self.get(name).integers(low, high))
