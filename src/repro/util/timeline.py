"""Time-series collection for simulation metrics.

A :class:`Timeline` records (time, value) samples for a named quantity
(e.g. staging memory in bytes) and supports the aggregations the paper's
figures need: peaks, means, and time-weighted averages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Timeline", "Counter"]


@dataclass
class Timeline:
    """An append-only series of (time, value) samples.

    Samples must be appended in non-decreasing time order; this is asserted
    because a mis-ordered metric almost always indicates a simulator bug.
    """

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        """Append one sample at ``time``."""
        if self.times and time < self.times[-1] - 1e-12:
            raise ValueError(
                f"timeline {self.name!r}: sample at t={time} precedes last "
                f"sample at t={self.times[-1]}"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    @property
    def last(self) -> float:
        """The most recent value (0.0 if empty)."""
        return self.values[-1] if self.values else 0.0

    @property
    def peak(self) -> float:
        """The maximum value observed (0.0 if empty)."""
        return max(self.values) if self.values else 0.0

    def mean(self) -> float:
        """Arithmetic mean of the sampled values (0.0 if empty)."""
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def time_weighted_mean(self) -> float:
        """Mean value weighted by how long each sample was in effect.

        The final sample is given zero weight since its holding interval is
        unknown; with a single sample this degrades to that sample's value.
        """
        if not self.values:
            return 0.0
        if len(self.values) == 1:
            return self.values[0]
        total = 0.0
        span = self.times[-1] - self.times[0]
        if span <= 0:
            return self.values[-1]
        for i in range(len(self.values) - 1):
            total += self.values[i] * (self.times[i + 1] - self.times[i])
        return total / span


@dataclass
class Counter:
    """A monotonically accumulating scalar with an event count."""

    name: str
    total: float = 0.0
    count: int = 0

    def add(self, amount: float) -> None:
        """Accumulate ``amount`` and bump the event count."""
        self.total += float(amount)
        self.count += 1

    def mean(self) -> float:
        """Average contribution per event (0.0 if no events)."""
        return self.total / self.count if self.count else 0.0
