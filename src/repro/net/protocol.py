"""RPC message shapes and the wire error taxonomy.

Three message kinds ride the frames, all encoded with the codec
(:mod:`repro.net.codec`):

* request:   ``("req", op, args)`` — ``op`` is the method name on
  :class:`~repro.staging.server.StagingServer` (or an ``admin:``-prefixed
  control op handled by the server process itself); ``args`` is a tuple.
* response:  ``("ok", value)`` on success.
* error:     ``("err", kind, server_id, message)`` — a *staging-level*
  failure re-raised on the client verbatim. ``kind`` indexes
  :data:`WIRE_ERRORS`; only those types cross the wire typed, anything else
  arrives as ``("err", "staging", ...)`` → :class:`~repro.errors.StagingError`.

Batched requests (the pipelining path) wrap N requests in one frame::

    ("batch", [("req", op, args), ...])  →  ("batch_ok", [response, ...])

The shared-memory transport (:mod:`repro.net.shm`) uses *doorbell* variants
that differ only in carrying segment context: ``("sreq", op, args, grant)``
and ``("sbatch", [("req", op, args), ...], grant)``, where ``grant`` is
either ``None`` or ``("grant", segment_name, generation, capacity)`` — a
client-owned response segment the server may scatter bulk reply payloads
into. Values inside ``args`` / responses may themselves be
:class:`~repro.net.codec.SegRef` tags pointing into shared segments; the
reply shapes are the plain ``("ok", ...)`` / ``("batch_ok", ...)`` tuples.

where each inner response is itself an ``("ok", ...)`` or ``("err", ...)``
tuple — one slow/faulty op in a batch doesn't poison its neighbours; the
client unpacks per-op results and raises per-op errors exactly as if each
had been its own round trip.

Staging-level errors are distinct from *wire-level* failures: the latter
(connect refused, reset, timeout, short read) never appear as ``("err", ...)``
messages — they surface as socket exceptions and the transport maps them to
:class:`~repro.errors.ServerUnavailable` / :class:`~repro.errors.TransientServerError`
(the mapping table lives in :mod:`repro.net.tcp`; rationale in DESIGN.md §13).
"""

from __future__ import annotations

from repro.errors import (
    DeadlineExceeded,
    DecodingError,
    ObjectNotFound,
    ServerBusy,
    ServerUnavailable,
    StagingDegradedError,
    StagingError,
    TransientServerError,
    VersionConflict,
)
from repro.net.codec import decode, encode, encode_iov
from repro.net.frames import ProtocolError
from repro.obs import registry as _obs

__all__ = [
    "WIRE_ERRORS",
    "encode_request",
    "encode_request_iov",
    "encode_batch",
    "encode_batch_iov",
    "encode_response",
    "encode_response_iov",
    "encode_error",
    "decode_message",
    "error_kind_for",
    "peek_request_kind",
    "raise_wire_error",
]

_BUSY_SEEN = _obs.counter("net.mux.server_busy")
_DEADLINE_SEEN = _obs.counter("net.mux.deadline_exceeded")

# kind string ↔ exception type for staging-level errors that must arrive on
# the client as their original type (retry policy and degraded reads branch
# on these). Listed leaf-first so error_kind_for picks the most specific.
WIRE_ERRORS: dict[str, type[StagingError]] = {
    "not_found": ObjectNotFound,
    "version_conflict": VersionConflict,
    "unavailable": ServerUnavailable,
    "deadline": DeadlineExceeded,
    "busy": ServerBusy,
    "transient": TransientServerError,
    "degraded": StagingDegradedError,
    "decoding": DecodingError,
    "staging": StagingError,
}

_KIND_BY_TYPE = {cls: kind for kind, cls in WIRE_ERRORS.items()}

# Exceptions that carry a server_id constructor argument.
_SERVER_SCOPED = (ServerUnavailable, TransientServerError)


def error_kind_for(exc: BaseException) -> str:
    """Most specific wire kind for a staging exception."""
    kind = _KIND_BY_TYPE.get(type(exc))
    if kind is not None:
        return kind
    for cls, k in _KIND_BY_TYPE.items():  # walk leaf-first insertion order
        if isinstance(exc, cls):
            return k
    return "staging"


def encode_request(op: str, args: tuple) -> bytes:
    return encode(("req", op, args))


def encode_request_iov(op: str, args: tuple, *, grant=None, array_sink=None) -> list:
    """Request as an iovec; with ``grant``/``array_sink`` it becomes the shm
    doorbell form ``("sreq", op, args, grant)``."""
    if grant is None and array_sink is None:
        return encode_iov(("req", op, args))
    return encode_iov(("sreq", op, args, grant), array_sink=array_sink)


def encode_batch(requests: list) -> bytes:
    """Encode N ``("req", op, args)`` tuples into one pipelined frame."""
    return encode(("batch", requests))


def encode_batch_iov(requests: list, *, array_sink=None) -> list:
    """Pipelined batch as an iovec; with a sink it becomes ``("sbatch", ...)``."""
    if array_sink is None:
        return encode_iov(("batch", requests))
    return encode_iov(("sbatch", requests, None), array_sink=array_sink)


def encode_response(value) -> bytes:
    return encode(("ok", value))


def encode_response_iov(value, *, array_sink=None) -> list:
    return encode_iov(("ok", value), array_sink=array_sink)


def encode_error(exc: BaseException, server_id: int) -> bytes:
    return encode(_error_tuple(exc, server_id))


def _error_tuple(exc: BaseException, server_id: int) -> tuple:
    if isinstance(exc, _SERVER_SCOPED):
        server_id = exc.server_id
    return ("err", error_kind_for(exc), server_id, str(exc))


def batch_item_result(value=None, exc: BaseException | None = None, server_id: int = -1):
    """One slot of a ``("batch_ok", [...])`` response."""
    if exc is not None:
        return _error_tuple(exc, server_id)
    return ("ok", value)


def raise_wire_error(kind: str, server_id: int, message: str):
    """Re-raise a wire error tuple as its original exception type."""
    cls = WIRE_ERRORS.get(kind, StagingError)
    if cls is ServerBusy:
        _BUSY_SEEN.inc()
    elif cls is DeadlineExceeded:
        _DEADLINE_SEEN.inc()
    if issubclass(cls, _SERVER_SCOPED):
        raise cls(server_id, message)
    raise cls(message)


# Byte-level peek constants (mirror repro.net.codec's tag bytes): a request
# payload always opens with _TUPLE, an item count, then a _STR message tag.
_TAG_TUPLE = 0x08
_TAG_STR = 0x05


def _peek_str(view, offset: int) -> tuple[str | None, int]:
    if len(view) < offset + 5 or view[offset] != _TAG_STR:
        return None, offset
    n = int.from_bytes(view[offset + 1 : offset + 5], "big")
    end = offset + 5 + n
    if n > 256 or len(view) < end:
        return None, offset
    try:
        return bytes(view[offset + 5 : end]).decode("utf-8"), end
    except UnicodeDecodeError:
        return None, offset



def peek_request_kind(payload) -> tuple[str | None, str | None]:
    """Cheaply read a request frame's ``(message tag, op name)`` without
    decoding the payload.

    The event-loop server uses this to route *before* paying the decode:
    admin (``admin:``-prefixed) ops bypass admission control and run inline
    on the loop thread, everything else goes through the bounded queue to
    the worker pool. Reads a handful of header bytes; any shape it does not
    recognise (batches report ``op=None``, responses and malformed bytes
    report ``(None, None)``) — callers must treat that as "not admin", never
    as an error, and let the real decoder rule on validity.
    """
    view = memoryview(payload)
    if len(view) < 5 or view[0] != _TAG_TUPLE:
        return None, None
    tag, end = _peek_str(view, 5)
    if tag is None:
        return None, None
    if tag in ("req", "sreq"):
        op, _ = _peek_str(view, end)
        return tag, op
    if tag in ("batch", "sbatch"):
        return tag, None
    return None, None


def decode_message(payload, *, array_source=None, copy_arrays: bool = True) -> tuple:
    """Decode one frame payload; validates the message envelope shape.

    ``array_source``/``copy_arrays`` pass through to the codec: the shm
    path resolves :class:`~repro.net.codec.SegRef` payloads through the
    peer's segment registry, and both wire transports decode with
    ``copy_arrays=False`` on paths whose consumers copy for themselves.
    """
    msg = decode(payload, array_source=array_source, copy_arrays=copy_arrays)
    if not isinstance(msg, tuple) or not msg:
        raise ProtocolError(f"message is not a tagged tuple: {type(msg).__name__}")
    tag = msg[0]
    if tag == "req":
        if len(msg) != 3 or not isinstance(msg[1], str) or not isinstance(msg[2], tuple):
            raise ProtocolError("malformed request message")
    elif tag == "sreq":
        if len(msg) != 4 or not isinstance(msg[1], str) or not isinstance(msg[2], tuple):
            raise ProtocolError("malformed shm request message")
    elif tag == "sbatch":
        if len(msg) != 3 or not isinstance(msg[1], list):
            raise ProtocolError("malformed shm batch request")
    elif tag == "ok":
        if len(msg) != 2:
            raise ProtocolError("malformed ok response")
    elif tag == "err":
        if len(msg) != 4 or not isinstance(msg[1], str) or not isinstance(msg[2], int):
            raise ProtocolError("malformed error response")
    elif tag == "batch":
        if len(msg) != 2 or not isinstance(msg[1], list):
            raise ProtocolError("malformed batch request")
    elif tag == "batch_ok":
        if len(msg) != 2 or not isinstance(msg[1], list):
            raise ProtocolError("malformed batch response")
    else:
        raise ProtocolError(f"unknown message tag {tag!r}")
    return msg
