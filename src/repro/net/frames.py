"""Length-prefixed message framing over byte streams.

Every message on the wire is one *frame*::

    +----------+----------------------+
    | !I length| payload (length B)   |
    +----------+----------------------+

The 4-byte big-endian length counts payload bytes only. A frame larger than
:data:`MAX_FRAME_BYTES` is rejected before any payload is read — a corrupted
or misaligned length prefix must not turn into a multi-gigabyte allocation.

Two consumption styles:

* :func:`send_frame` / :func:`recv_frame` — blocking socket I/O for the
  client side and the per-connection server loop. ``recv_frame`` reads into
  one preallocated buffer (``recv_into``), so a frame is never reassembled
  from chunks, and returns a *writable* bytearray — zero-copy decode views
  over it (:func:`repro.net.codec.decode` with ``copy_arrays=False``) are
  mutable, matching in-process array semantics.
* :func:`send_frame_iov` — scatter-gather variant: sends an iovec (as
  produced by :func:`repro.net.codec.encode_iov`) with ``socket.sendmsg``,
  so header, control bytes, and payload views hit the socket without ever
  being concatenated into one buffer.
* :class:`FrameDecoder` — incremental push-style decoder (``feed`` bytes in,
  pop complete frames out) for tests and any future non-blocking loop; this
  is what the torn-frame tests drive byte-by-byte.

Error taxonomy (all subclass :class:`WireError`):

* :class:`WireClosed` — the peer closed the stream at a frame boundary.
  Between requests this is a clean shutdown; mid-conversation the transport
  maps it to fail-stop (``ServerUnavailable``).
* :class:`ShortRead` — the stream ended *inside* a frame (torn write, peer
  killed mid-send). Always fail-stop: the connection state is unknowable.
* :class:`FrameTooLarge` / :class:`ProtocolError` — the byte stream itself
  is malformed; the connection must be dropped.
"""

from __future__ import annotations

import socket
import struct

__all__ = [
    "MAX_FRAME_BYTES",
    "WireError",
    "WireClosed",
    "ShortRead",
    "FrameTooLarge",
    "ProtocolError",
    "send_frame",
    "send_frame_iov",
    "recv_frame",
    "FrameDecoder",
]

# sendmsg vector ceiling per call (UIO_MAXIOV is 1024 on Linux; stay under).
_SENDMSG_MAX_VECS = 512

# Generous ceiling: the largest legitimate frame is a batched put of one
# put_many call (a few hundred MB would already be an absurd single batch).
MAX_FRAME_BYTES = 1 << 31  # 2 GiB

_LEN = struct.Struct("!I")


class WireError(Exception):
    """Base for all framing-level failures."""


class WireClosed(WireError):
    """Peer closed the stream at a frame boundary (clean EOF)."""


class ShortRead(WireError):
    """Stream ended mid-frame: the peer died or tore a write."""


class FrameTooLarge(WireError):
    """Declared frame length exceeds MAX_FRAME_BYTES."""


class ProtocolError(WireError):
    """Byte stream or payload is malformed."""


def send_frame(sock: socket.socket, payload) -> None:
    """Write one frame. ``payload`` is bytes-like (bytes/bytearray/memoryview)."""
    n = len(payload)
    if n > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"frame of {n} bytes exceeds cap {MAX_FRAME_BYTES}")
    # Single sendall for header+payload halves the syscalls on small frames;
    # for large payloads concatenation would double peak memory, so send the
    # header separately past a threshold.
    if n <= 1 << 16:
        sock.sendall(_LEN.pack(n) + bytes(payload))
    else:
        sock.sendall(_LEN.pack(n))
        sock.sendall(payload)


def send_frame_iov(sock: socket.socket, parts) -> int:
    """Write one frame from an iovec without concatenating it.

    ``parts`` is a sequence of bytes-like buffers (the output of
    ``encode_iov``); the length prefix plus every part goes out through
    ``sendmsg``, handling partial sends and the kernel's vector-count
    ceiling. Returns payload bytes sent (excluding the 4-byte header).
    """
    n = sum(len(p) for p in parts)
    if n > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"frame of {n} bytes exceeds cap {MAX_FRAME_BYTES}")
    vecs = [memoryview(_LEN.pack(n))]
    vecs += [memoryview(p).cast("B") for p in parts if len(p)]
    while vecs:
        sent = sock.sendmsg(vecs[:_SENDMSG_MAX_VECS])
        while sent:
            head = vecs[0]
            if sent >= len(head):
                sent -= len(head)
                vecs.pop(0)
            else:
                vecs[0] = head[sent:]
                sent = 0
    return n


def _recv_exact_into(sock: socket.socket, view: memoryview, *, header: bool) -> None:
    total = len(view)
    got = 0
    while got < total:
        n = sock.recv_into(view[got:])
        if n == 0:
            if header and got == 0:
                raise WireClosed("connection closed at frame boundary")
            raise ShortRead(
                f"connection closed with {total - got} of {total} bytes outstanding"
            )
        got += n


def recv_frame(sock: socket.socket) -> bytearray:
    """Read one complete frame payload, blocking.

    The payload lands in a single preallocated buffer via ``recv_into`` —
    no chunk list, no join copy — and is returned as a writable bytearray
    so zero-copy decode views over it behave like owned arrays.
    """
    header = bytearray(_LEN.size)
    _recv_exact_into(sock, memoryview(header), header=True)
    (n,) = _LEN.unpack(header)
    if n > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"peer declared {n}-byte frame, cap {MAX_FRAME_BYTES}")
    payload = bytearray(n)
    if n:
        _recv_exact_into(sock, memoryview(payload), header=False)
    return payload


class FrameDecoder:
    """Incremental frame decoder: feed arbitrary byte chunks, pop frames.

    ``feed`` never blocks and tolerates any split of the stream — one byte at
    a time, header torn across chunks, many frames in one chunk. ``close``
    signals EOF: clean at a boundary, :class:`ShortRead` mid-frame.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._frames: list[bytes] = []
        self._closed = False

    def feed(self, data) -> None:
        if self._closed:
            raise ProtocolError("feed() after close()")
        self._buf += data
        while True:
            if len(self._buf) < _LEN.size:
                return
            (n,) = _LEN.unpack_from(self._buf)
            if n > MAX_FRAME_BYTES:
                raise FrameTooLarge(
                    f"peer declared {n}-byte frame, cap {MAX_FRAME_BYTES}"
                )
            total = _LEN.size + n
            if len(self._buf) < total:
                return
            self._frames.append(bytes(self._buf[_LEN.size : total]))
            del self._buf[:total]

    def close(self) -> None:
        """Signal end-of-stream. Raises ShortRead if a frame is in flight."""
        self._closed = True
        if self._buf:
            raise ShortRead(
                f"stream ended with {len(self._buf)} buffered byte(s) mid-frame"
            )

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)

    def frames(self) -> list[bytes]:
        """Pop all completed frames (in arrival order)."""
        out = self._frames
        self._frames = []
        return out

    def __iter__(self):
        while self._frames:
            yield self._frames.pop(0)
