"""Length-prefixed message framing over byte streams.

Every message on the wire is one *frame*::

    +----------+----------------------+
    | !I length| payload (length B)   |
    +----------+----------------------+

The 4-byte big-endian length counts payload bytes only. A frame larger than
:data:`MAX_FRAME_BYTES` is rejected before any payload is read — a corrupted
or misaligned length prefix must not turn into a multi-gigabyte allocation.

Two consumption styles:

* :func:`send_frame` / :func:`recv_frame` — blocking socket I/O for the
  client side and the per-connection server loop.
* :class:`FrameDecoder` — incremental push-style decoder (``feed`` bytes in,
  pop complete frames out) for tests and any future non-blocking loop; this
  is what the torn-frame tests drive byte-by-byte.

Error taxonomy (all subclass :class:`WireError`):

* :class:`WireClosed` — the peer closed the stream at a frame boundary.
  Between requests this is a clean shutdown; mid-conversation the transport
  maps it to fail-stop (``ServerUnavailable``).
* :class:`ShortRead` — the stream ended *inside* a frame (torn write, peer
  killed mid-send). Always fail-stop: the connection state is unknowable.
* :class:`FrameTooLarge` / :class:`ProtocolError` — the byte stream itself
  is malformed; the connection must be dropped.
"""

from __future__ import annotations

import socket
import struct

__all__ = [
    "MAX_FRAME_BYTES",
    "WireError",
    "WireClosed",
    "ShortRead",
    "FrameTooLarge",
    "ProtocolError",
    "send_frame",
    "recv_frame",
    "FrameDecoder",
]

# Generous ceiling: the largest legitimate frame is a batched put of one
# put_many call (a few hundred MB would already be an absurd single batch).
MAX_FRAME_BYTES = 1 << 31  # 2 GiB

_LEN = struct.Struct("!I")


class WireError(Exception):
    """Base for all framing-level failures."""


class WireClosed(WireError):
    """Peer closed the stream at a frame boundary (clean EOF)."""


class ShortRead(WireError):
    """Stream ended mid-frame: the peer died or tore a write."""


class FrameTooLarge(WireError):
    """Declared frame length exceeds MAX_FRAME_BYTES."""


class ProtocolError(WireError):
    """Byte stream or payload is malformed."""


def send_frame(sock: socket.socket, payload) -> None:
    """Write one frame. ``payload`` is bytes-like (bytes/bytearray/memoryview)."""
    n = len(payload)
    if n > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"frame of {n} bytes exceeds cap {MAX_FRAME_BYTES}")
    # Single sendall for header+payload halves the syscalls on small frames;
    # for large payloads concatenation would double peak memory, so send the
    # header separately past a threshold.
    if n <= 1 << 16:
        sock.sendall(_LEN.pack(n) + bytes(payload))
    else:
        sock.sendall(_LEN.pack(n))
        sock.sendall(payload)


def _recv_exact(sock: socket.socket, n: int, *, header: bool) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if header and remaining == n:
                raise WireClosed("connection closed at frame boundary")
            raise ShortRead(
                f"connection closed with {remaining} of {n} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return chunks[0] if len(chunks) == 1 else b"".join(chunks)


def recv_frame(sock: socket.socket) -> bytes:
    """Read one complete frame payload, blocking."""
    header = _recv_exact(sock, _LEN.size, header=True)
    (n,) = _LEN.unpack(header)
    if n > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"peer declared {n}-byte frame, cap {MAX_FRAME_BYTES}")
    if n == 0:
        return b""
    return _recv_exact(sock, n, header=False)


class FrameDecoder:
    """Incremental frame decoder: feed arbitrary byte chunks, pop frames.

    ``feed`` never blocks and tolerates any split of the stream — one byte at
    a time, header torn across chunks, many frames in one chunk. ``close``
    signals EOF: clean at a boundary, :class:`ShortRead` mid-frame.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._frames: list[bytes] = []
        self._closed = False

    def feed(self, data) -> None:
        if self._closed:
            raise ProtocolError("feed() after close()")
        self._buf += data
        while True:
            if len(self._buf) < _LEN.size:
                return
            (n,) = _LEN.unpack_from(self._buf)
            if n > MAX_FRAME_BYTES:
                raise FrameTooLarge(
                    f"peer declared {n}-byte frame, cap {MAX_FRAME_BYTES}"
                )
            total = _LEN.size + n
            if len(self._buf) < total:
                return
            self._frames.append(bytes(self._buf[_LEN.size : total]))
            del self._buf[:total]

    def close(self) -> None:
        """Signal end-of-stream. Raises ShortRead if a frame is in flight."""
        self._closed = True
        if self._buf:
            raise ShortRead(
                f"stream ended with {len(self._buf)} buffered byte(s) mid-frame"
            )

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)

    def frames(self) -> list[bytes]:
        """Pop all completed frames (in arrival order)."""
        out = self._frames
        self._frames = []
        return out

    def __iter__(self):
        while self._frames:
            yield self._frames.pop(0)
