"""Length-prefixed message framing over byte streams.

Two frame layouts share the stream. A *v1* frame is the original layout::

    +----------+----------------------+
    | !I length| payload (length B)   |
    +----------+----------------------+

The 4-byte big-endian length counts payload bytes only. A frame larger than
:data:`MAX_FRAME_BYTES` is rejected before any payload is read — a corrupted
or misaligned length prefix must not turn into a multi-gigabyte allocation.

A *v2* frame carries the multiplexing header the async RPC core rides on —
a u64 request id (replies are matched to requests by id, never by arrival
order) and an absolute wall-clock deadline (0.0 = none; both peers share the
host clock, the transports are strictly local)::

    +--------------+----------+----------------+------------+---------------+
    | !I 0xFFFFFFFF| !I length| !Q request id  | !d deadline| payload       |
    +--------------+----------+----------------+------------+---------------+

The sentinel word (:data:`V2_MAGIC`) is unambiguous: it exceeds
:data:`MAX_FRAME_BYTES`, so no v1 length can collide with it, and a pure-v1
decoder that meets a v2 frame fails loudly (``FrameTooLarge``) instead of
misparsing. V1 frames remain fully accepted everywhere — old tests, golden
byte streams, and lockstep clients keep decoding unchanged.

Consumption styles:

* :func:`send_frame` / :func:`recv_frame` — blocking v1 socket I/O.
  ``recv_frame`` reads into one preallocated buffer (``recv_into``), so a
  frame is never reassembled from chunks, and returns a *writable*
  bytearray — zero-copy decode views over it (:func:`repro.net.codec.decode`
  with ``copy_arrays=False``) are mutable, matching in-process semantics.
* :func:`send_frame_v2` / :func:`send_frame_iov_v2` / :func:`recv_frame_any`
  — the mux forms. ``recv_frame_any`` accepts both layouts and returns a
  :class:`Frame` (``request_id is None`` marks a v1 frame).
* :func:`send_frame_iov` — scatter-gather variant: sends an iovec (as
  produced by :func:`repro.net.codec.encode_iov`) with ``socket.sendmsg``,
  so header, control bytes, and payload views hit the socket without ever
  being concatenated into one buffer.
* :class:`FrameDecoder` — incremental push-style v1 decoder (``feed`` bytes
  in, pop complete frames out), kept byte-for-byte compatible for the torn
  frame tests and golden streams.
* :class:`MuxFrameDecoder` — incremental decoder for the event-loop server:
  accepts v1 and v2 frames interleaved on one stream and pops
  :class:`Frame` objects; payloads land in one preallocated writable
  bytearray each (no chunk-list reassembly).

Error taxonomy (all subclass :class:`WireError`):

* :class:`WireClosed` — the peer closed the stream at a frame boundary.
  Between requests this is a clean shutdown; mid-conversation the transport
  maps it to fail-stop (``ServerUnavailable``).
* :class:`ShortRead` — the stream ended *inside* a frame (torn write, peer
  killed mid-send). Always fail-stop: the connection state is unknowable.
* :class:`FrameTooLarge` / :class:`ProtocolError` — the byte stream itself
  is malformed; the connection must be dropped.
"""

from __future__ import annotations

import socket
import struct

__all__ = [
    "MAX_FRAME_BYTES",
    "V2_MAGIC",
    "WireError",
    "WireClosed",
    "ShortRead",
    "FrameTooLarge",
    "ProtocolError",
    "Frame",
    "send_frame",
    "send_frame_iov",
    "send_frame_v2",
    "send_frame_iov_v2",
    "recv_frame",
    "recv_frame_any",
    "FrameDecoder",
    "MuxFrameDecoder",
]

# sendmsg vector ceiling per call (UIO_MAXIOV is 1024 on Linux; stay under).
_SENDMSG_MAX_VECS = 512

# Generous ceiling: the largest legitimate frame is a batched put of one
# put_many call (a few hundred MB would already be an absurd single batch).
MAX_FRAME_BYTES = 1 << 31  # 2 GiB

_LEN = struct.Struct("!I")

#: Sentinel length word announcing a v2 (multiplexed) frame. Greater than
#: MAX_FRAME_BYTES, so it can never be a valid v1 length.
V2_MAGIC = 0xFFFFFFFF
#: The v2 header fields after the sentinel: payload length, request id,
#: absolute wall-clock deadline (time.time() seconds; 0.0 = no deadline).
_V2_REST = struct.Struct("!IQd")
_V2_HEAD = struct.Struct("!IIQd")  # sentinel + the three fields, for senders


class WireError(Exception):
    """Base for all framing-level failures."""


class WireClosed(WireError):
    """Peer closed the stream at a frame boundary (clean EOF)."""


class ShortRead(WireError):
    """Stream ended mid-frame: the peer died or tore a write."""


class FrameTooLarge(WireError):
    """Declared frame length exceeds MAX_FRAME_BYTES."""


class ProtocolError(WireError):
    """Byte stream or payload is malformed."""


def send_frame(sock: socket.socket, payload) -> None:
    """Write one frame. ``payload`` is bytes-like (bytes/bytearray/memoryview)."""
    n = len(payload)
    if n > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"frame of {n} bytes exceeds cap {MAX_FRAME_BYTES}")
    # Single sendall for header+payload halves the syscalls on small frames;
    # for large payloads concatenation would double peak memory, so send the
    # header separately past a threshold.
    if n <= 1 << 16:
        sock.sendall(_LEN.pack(n) + bytes(payload))
    else:
        sock.sendall(_LEN.pack(n))
        sock.sendall(payload)


def send_frame_iov(sock: socket.socket, parts) -> int:
    """Write one frame from an iovec without concatenating it.

    ``parts`` is a sequence of bytes-like buffers (the output of
    ``encode_iov``); the length prefix plus every part goes out through
    ``sendmsg``, handling partial sends and the kernel's vector-count
    ceiling. Returns payload bytes sent (excluding the 4-byte header).
    """
    n = sum(len(p) for p in parts)
    if n > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"frame of {n} bytes exceeds cap {MAX_FRAME_BYTES}")
    vecs = [memoryview(_LEN.pack(n))]
    vecs += [memoryview(p).cast("B") for p in parts if len(p)]
    while vecs:
        sent = sock.sendmsg(vecs[:_SENDMSG_MAX_VECS])
        while sent:
            head = vecs[0]
            if sent >= len(head):
                sent -= len(head)
                vecs.pop(0)
            else:
                vecs[0] = head[sent:]
                sent = 0
    return n


def _recv_exact_into(sock: socket.socket, view: memoryview, *, header: bool) -> None:
    total = len(view)
    got = 0
    while got < total:
        n = sock.recv_into(view[got:])
        if n == 0:
            if header and got == 0:
                raise WireClosed("connection closed at frame boundary")
            raise ShortRead(
                f"connection closed with {total - got} of {total} bytes outstanding"
            )
        got += n


def recv_frame(sock: socket.socket) -> bytearray:
    """Read one complete frame payload, blocking.

    The payload lands in a single preallocated buffer via ``recv_into`` —
    no chunk list, no join copy — and is returned as a writable bytearray
    so zero-copy decode views over it behave like owned arrays.
    """
    header = bytearray(_LEN.size)
    _recv_exact_into(sock, memoryview(header), header=True)
    (n,) = _LEN.unpack(header)
    if n > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"peer declared {n}-byte frame, cap {MAX_FRAME_BYTES}")
    payload = bytearray(n)
    if n:
        _recv_exact_into(sock, memoryview(payload), header=False)
    return payload


class Frame:
    """One decoded frame: payload plus the v2 mux header (if present).

    ``request_id is None`` marks a v1 frame — the peer is a lockstep
    request/response client and replies must preserve arrival order.
    ``deadline`` is an absolute ``time.time()`` instant (0.0 = none).
    """

    __slots__ = ("request_id", "deadline", "payload")

    def __init__(self, payload, request_id: int | None = None, deadline: float = 0.0):
        self.payload = payload
        self.request_id = request_id
        self.deadline = deadline

    @property
    def is_v2(self) -> bool:
        return self.request_id is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Frame(id={self.request_id}, deadline={self.deadline},"
            f" {len(self.payload)}B)"
        )


def frame_header_v2(payload_len: int, request_id: int, deadline: float = 0.0) -> bytes:
    """The 24-byte v2 header for a ``payload_len``-byte frame."""
    if payload_len > MAX_FRAME_BYTES:
        raise FrameTooLarge(
            f"frame of {payload_len} bytes exceeds cap {MAX_FRAME_BYTES}"
        )
    return _V2_HEAD.pack(V2_MAGIC, payload_len, request_id, deadline)


def send_frame_v2(
    sock: socket.socket, payload, request_id: int, deadline: float = 0.0
) -> None:
    """Write one v2 frame (blocking)."""
    head = frame_header_v2(len(payload), request_id, deadline)
    n = len(payload)
    if n <= 1 << 16:
        sock.sendall(head + bytes(payload))
    else:
        sock.sendall(head)
        sock.sendall(payload)


def send_frame_iov_v2(
    sock: socket.socket, parts, request_id: int, deadline: float = 0.0
) -> int:
    """Scatter-gather send of one v2 frame; returns payload bytes sent."""
    n = sum(len(p) for p in parts)
    head = frame_header_v2(n, request_id, deadline)
    vecs = [memoryview(head)]
    vecs += [memoryview(p).cast("B") for p in parts if len(p)]
    while vecs:
        sent = sock.sendmsg(vecs[:_SENDMSG_MAX_VECS])
        while sent:
            first = vecs[0]
            if sent >= len(first):
                sent -= len(first)
                vecs.pop(0)
            else:
                vecs[0] = first[sent:]
                sent = 0
    return n


def recv_frame_any(sock: socket.socket) -> Frame:
    """Read one frame of either version, blocking; payload is a writable
    bytearray (see :func:`recv_frame`)."""
    header = bytearray(_LEN.size)
    _recv_exact_into(sock, memoryview(header), header=True)
    (word,) = _LEN.unpack(header)
    if word == V2_MAGIC:
        rest = bytearray(_V2_REST.size)
        _recv_exact_into(sock, memoryview(rest), header=False)
        n, request_id, deadline = _V2_REST.unpack(rest)
        if n > MAX_FRAME_BYTES:
            raise FrameTooLarge(f"peer declared {n}-byte frame, cap {MAX_FRAME_BYTES}")
        payload = bytearray(n)
        if n:
            _recv_exact_into(sock, memoryview(payload), header=False)
        return Frame(payload, request_id, deadline)
    n = word
    if n > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"peer declared {n}-byte frame, cap {MAX_FRAME_BYTES}")
    payload = bytearray(n)
    if n:
        _recv_exact_into(sock, memoryview(payload), header=False)
    return Frame(payload)


class MuxFrameDecoder:
    """Incremental decoder accepting v1 and v2 frames on one stream.

    Push-style like :class:`FrameDecoder`, but pops :class:`Frame` objects
    and assembles each payload into one preallocated *writable* bytearray
    (zero-copy decode views over popped payloads stay mutable). This is the
    read path of the event-loop server: ``feed`` whatever ``recv`` returned,
    pop frames, never block.
    """

    __slots__ = ("_head", "_need_head", "_payload", "_filled", "_pending_frame", "_frames", "_closed")

    def __init__(self) -> None:
        self._head = bytearray()
        self._need_head = _LEN.size
        self._payload: bytearray | None = None
        self._filled = 0
        self._pending_frame: Frame | None = None
        self._frames: list[Frame] = []
        self._closed = False

    def feed(self, data) -> None:
        if self._closed:
            raise ProtocolError("feed() after close()")
        view = memoryview(data)
        while len(view):
            if self._payload is None:
                take = min(self._need_head - len(self._head), len(view))
                self._head += view[:take]
                view = view[take:]
                if len(self._head) < self._need_head:
                    return
                if self._need_head == _LEN.size:
                    (word,) = _LEN.unpack(self._head)
                    if word == V2_MAGIC:
                        # A v2 frame: wait for the 16 remaining header bytes.
                        self._need_head = _LEN.size + _V2_REST.size
                        continue
                    if word > MAX_FRAME_BYTES:
                        raise FrameTooLarge(
                            f"peer declared {word}-byte frame, cap {MAX_FRAME_BYTES}"
                        )
                    self._begin_payload(Frame(None), word)
                else:
                    n, request_id, deadline = _V2_REST.unpack_from(
                        self._head, _LEN.size
                    )
                    if n > MAX_FRAME_BYTES:
                        raise FrameTooLarge(
                            f"peer declared {n}-byte frame, cap {MAX_FRAME_BYTES}"
                        )
                    self._begin_payload(Frame(None, request_id, deadline), n)
                continue
            take = min(len(self._payload) - self._filled, len(view))
            self._payload[self._filled : self._filled + take] = view[:take]
            self._filled += take
            view = view[take:]
            if self._filled == len(self._payload):
                frame = self._pending_frame
                frame.payload = self._payload
                self._frames.append(frame)
                self._payload = None
                self._pending_frame = None

    def _begin_payload(self, frame: Frame, n: int) -> None:
        self._head.clear()
        self._need_head = _LEN.size
        self._payload = bytearray(n)
        self._filled = 0
        self._pending_frame = frame
        if n == 0:
            frame.payload = self._payload
            self._frames.append(frame)
            self._payload = None
            self._pending_frame = None

    def close(self) -> None:
        """Signal end-of-stream. Raises ShortRead if a frame is in flight."""
        self._closed = True
        if self._head or self._payload is not None:
            raise ShortRead("stream ended mid-frame")

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        n = len(self._head)
        if self._payload is not None:
            n += self._filled
        return n

    def frames(self) -> list[Frame]:
        """Pop all completed frames (in arrival order)."""
        out = self._frames
        self._frames = []
        return out


class FrameDecoder:
    """Incremental frame decoder: feed arbitrary byte chunks, pop frames.

    ``feed`` never blocks and tolerates any split of the stream — one byte at
    a time, header torn across chunks, many frames in one chunk. ``close``
    signals EOF: clean at a boundary, :class:`ShortRead` mid-frame.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._frames: list[bytes] = []
        self._closed = False

    def feed(self, data) -> None:
        if self._closed:
            raise ProtocolError("feed() after close()")
        self._buf += data
        while True:
            if len(self._buf) < _LEN.size:
                return
            (n,) = _LEN.unpack_from(self._buf)
            if n > MAX_FRAME_BYTES:
                raise FrameTooLarge(
                    f"peer declared {n}-byte frame, cap {MAX_FRAME_BYTES}"
                )
            total = _LEN.size + n
            if len(self._buf) < total:
                return
            self._frames.append(bytes(self._buf[_LEN.size : total]))
            del self._buf[:total]

    def close(self) -> None:
        """Signal end-of-stream. Raises ShortRead if a frame is in flight."""
        self._closed = True
        if self._buf:
            raise ShortRead(
                f"stream ended with {len(self._buf)} buffered byte(s) mid-frame"
            )

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)

    def frames(self) -> list[bytes]:
        """Pop all completed frames (in arrival order)."""
        out = self._frames
        self._frames = []
        return out

    def __iter__(self):
        while self._frames:
            yield self._frames.pop(0)
