"""TCP transport: server processes, connection pool, remote server proxies.

The parent spawns one OS process per staging server
(:mod:`repro.net.tcpserver` is the process body) and talks to each over
pooled TCP connections with length-prefixed frames. ``group.servers`` is
populated with :class:`RemoteServer` proxies exposing the exact
:class:`~repro.staging.server.StagingServer` method surface, so the client,
resilience, checkpoint, and runtime layers run unmodified.

Wire-failure → staging-error mapping (the contract that keeps ``_server_op``
retries, ``GroupHealth`` mark-down, degraded reads, and ``rebuild_server``
working unchanged over sockets; table reproduced in DESIGN.md §13):

    ==============================  ==============================  =========
    wire failure                    mapped exception                retried?
    ==============================  ==============================  =========
    connect refused                 ServerUnavailable               no
    connect/recv timeout            TransientServerError            yes
    connection reset / broken pipe  ServerUnavailable               no
    clean EOF mid-conversation      ServerUnavailable               no
    short read (torn frame)         ServerUnavailable               no
    malformed frame / oversize      ServerUnavailable               no
    ==============================  ==============================  =========

Refused and reset are fail-stop (the process is gone — retrying cannot
help; rebuild can); timeouts are transient (the server may just be slow or
the packet lost). Any failed connection is discarded, never returned to the
pool: its stream position is unknowable after an error.

``put``/``put_many`` are acknowledged with ``None`` over the wire rather
than echoing the stored objects back (no group-level caller consumes them;
the inproc return values exist for direct server use). ``put_many`` and
``get_many`` are single ops — a whole multi-shard scatter/gather rides one
round trip — and :meth:`RemoteServer.pipeline` additionally packs arbitrary
op sequences into one frame (one round trip for N ops).

Connections. By default every endpoint *multiplexes*: all caller threads
share ~1 socket (``REPRO_MUX_CONNECTIONS``) through
:class:`~repro.net.mux.MuxConnection` — v2 frames with request ids, replies
demuxed by a reader thread, the calling thread's
:func:`~repro.net.mux.deadline_scope` deadline stamped into every header.
``REPRO_MUX=0`` falls back to the v1 pooled path (one lockstep socket per
concurrent caller), whose idle pool is capped (``REPRO_TCP_POOL_IDLE``,
``net.tcp.pool_idle`` gauge) instead of growing with the historical maximum
of thread concurrency. On a mux connection a *timeout* fails only its own
request; any other wire failure retires the connection for everyone sharing
it (stream position unknowable — same rule as the pool, applied once).
"""

from __future__ import annotations

import contextlib
import os
import socket
import sys
import threading
import weakref
from time import perf_counter

from repro.errors import (
    ServerUnavailable,
    TransientServerError,
)
from repro.net.frames import WireClosed, WireError, recv_frame, send_frame, send_frame_iov
from repro.net.mux import (
    MuxConnection,
    current_deadline,
    mux_connections_per_endpoint,
    mux_enabled,
)
from repro.net.protocol import (
    decode_message,
    encode_batch_iov,
    encode_request,
    encode_request_iov,
    raise_wire_error,
)
from repro.net.tcpserver import SERVER_OPS, run_server, server_config
from repro.net.transport import Transport
from repro.obs import registry as _obs

__all__ = ["TcpTransport", "RemoteServer", "RemoteFaultHandle", "shutdown_all"]

_REQUESTS = _obs.counter("net.tcp.requests")
_REQ_SECONDS = _obs.histogram("net.tcp.request.seconds")
_BYTES_SENT = _obs.counter("net.tcp.bytes_sent")
_BYTES_RECEIVED = _obs.counter("net.tcp.bytes_received")
_CONNECTS = _obs.counter("net.tcp.connects")
_WIRE_ERRORS = _obs.counter("net.tcp.wire_errors")
_BATCH_SIZE = _obs.histogram("net.tcp.batch.size")
_SPAWNS = _obs.counter("net.tcp.server_spawns")
_SPAWN_SECONDS = _obs.histogram("net.tcp.spawn.seconds")

#: Seconds to wait for a response before declaring the request transient.
#: Generous: a slow-faulted server must look *slow*, not failed, exactly as
#: it does in-process (where the caller simply blocks).
REQUEST_TIMEOUT = float(os.environ.get("REPRO_TCP_TIMEOUT", "") or 30.0)
CONNECT_TIMEOUT = float(os.environ.get("REPRO_TCP_CONNECT_TIMEOUT", "") or 5.0)
SPAWN_TIMEOUT = 60.0
#: Max idle sockets an endpoint's v1 pool retains; overflow is closed on
#: return. Before the cap the pool grew to the historical max of concurrent
#: callers and never shrank.
POOL_MAX_IDLE = int(os.environ.get("REPRO_TCP_POOL_IDLE", "") or 8)
#: Hard ceiling on concurrently checked-out v1 sockets per endpoint
#: (0 = unlimited). At the cap, borrowers block until a socket comes back —
#: the lockstep path's socket count becomes a real budget (fd limits,
#: equal-socket comparisons against the one-socket mux path) instead of
#: scaling with caller concurrency.
POOL_CAP_ENV = "REPRO_TCP_POOL_CAP"

_POOL_IDLE = _obs.gauge("net.tcp.pool_idle")

_mp_lock = threading.Lock()
_mp_ctx = None

# Every live transport, so test harnesses can reap leaked server processes
# (fixtures create hundreds of short-lived groups and never close them).
_live_transports: weakref.WeakSet = weakref.WeakSet()


def _context():
    """The multiprocessing context, created once per process.

    forkserver + preloading the server module makes each spawn a cheap fork
    of an already-warm interpreter (numpy and the staging stack imported
    once) while staying safe in this thread-heavy parent. Falls back to
    spawn where forkserver is unsupported.
    """
    global _mp_ctx
    if _mp_ctx is None:
        with _mp_lock:
            if _mp_ctx is None:
                import multiprocessing

                try:
                    ctx = multiprocessing.get_context("forkserver")
                    ctx.set_forkserver_preload(["repro.net.tcpserver"])
                except ValueError:
                    ctx = multiprocessing.get_context("spawn")
                _mp_ctx = ctx
    return _mp_ctx


def _map_wire_error(exc: BaseException, server_id: int):
    """Translate a socket/framing failure into the staging error taxonomy."""
    _WIRE_ERRORS.inc()
    if isinstance(exc, (socket.timeout, TimeoutError)):
        return TransientServerError(server_id, f"tcp timeout: {exc}")
    # Refused, reset, broken pipe, clean EOF, torn frame, malformed stream:
    # the server process (or its stream) is gone — fail-stop.
    return ServerUnavailable(server_id, f"tcp failure: {type(exc).__name__}: {exc}")


class _Endpoint:
    """One server process + a pool of connections to it."""

    def __init__(self, server_id: int, process, port: int) -> None:
        self.server_id = server_id
        self.process = process
        self.port = port
        self._idle: list[socket.socket] = []
        self._lock = threading.Lock()
        self._closed = False
        cap = int(os.environ.get(POOL_CAP_ENV, "") or 0)
        self._pool_sem = threading.BoundedSemaphore(cap) if cap > 0 else None
        # Mux mode (the default): every caller thread shares these few
        # connections; the v1 pool above stays empty. Resolved per endpoint
        # so tests/benchmarks can flip REPRO_MUX between groups.
        self._mux = mux_enabled()
        self._mux_target = mux_connections_per_endpoint()
        self._mux_conns: list[MuxConnection] = []
        self._mux_rr = 0

    # ------------------------------------------------------------- sockets

    def _dial(self) -> socket.socket:
        sock = socket.create_connection(
            ("127.0.0.1", self.port), timeout=CONNECT_TIMEOUT
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(REQUEST_TIMEOUT)
        _CONNECTS.inc()
        return sock

    def _borrow(self) -> socket.socket:
        if self._pool_sem is not None:
            self._pool_sem.acquire()
        try:
            with self._lock:
                if self._closed:
                    raise ServerUnavailable(self.server_id, "transport closed")
                if self._idle:
                    sock = self._idle.pop()
                    _POOL_IDLE.add(-1)
                    return sock
            return self._dial()
        except BaseException:
            if self._pool_sem is not None:
                self._pool_sem.release()
            raise

    def _give_back(self, sock: socket.socket) -> None:
        self._discard(sock, reuse=True)

    def _discard(self, sock: socket.socket, reuse: bool) -> None:
        """Finish a borrow: pool the socket (idle cap) or close it.

        ``reuse=False`` marks a stream whose state is unknowable (any wire
        failure) — closed, never pooled. Either way the borrow accounted
        against ``REPRO_TCP_POOL_CAP`` is released.
        """
        try:
            if reuse:
                with self._lock:
                    if not self._closed and len(self._idle) < POOL_MAX_IDLE:
                        self._idle.append(sock)
                        _POOL_IDLE.add(1)
                        return
            sock.close()
        finally:
            if self._pool_sem is not None:
                self._pool_sem.release()

    def _mux_conn(self) -> MuxConnection:
        """A live shared connection (round-robin over ``_mux_target``)."""
        with self._lock:
            if self._closed:
                raise ServerUnavailable(self.server_id, "transport closed")
            live = [c for c in self._mux_conns if not c.dead]
            if len(live) < self._mux_target:
                self._mux_conns = live  # drop dead ones
            else:
                self._mux_rr = (self._mux_rr + 1) % len(live)
                return live[self._mux_rr]
        # Dial outside the lock (connect can block); concurrent first
        # callers may race here, so re-check before keeping the new conn.
        conn = MuxConnection(self._dial(), self.server_id)
        with self._lock:
            if self._closed:
                conn.close()
                raise ServerUnavailable(self.server_id, "transport closed")
            live = [c for c in self._mux_conns if not c.dead]
            if len(live) < self._mux_target:
                live.append(conn)
                self._mux_conns = live
                return conn
            self._mux_conns = live
            winner = live[self._mux_rr % len(live)]
        conn.close()  # lost the race: someone else filled the slot
        return winner

    def _retire_mux_conn(self, conn: MuxConnection) -> None:
        with self._lock:
            if conn in self._mux_conns:
                self._mux_conns.remove(conn)
        conn.close()

    # ------------------------------------------------------------- requests

    def _round_trip(self, parts: list, array_source=None) -> tuple:
        """Send one iovec frame, receive and decode the reply.

        Raises only *wire-mapped* staging errors; a decoded reply — success
        or a typed ``("err", ...)`` — is returned as-is, so subclasses can
        distinguish "the server answered" (segment safely recyclable) from
        "the wire failed" (segment state unknowable) before unpacking.
        Replies decode with ``copy_arrays=False``: arrays are views over the
        private, writable reply buffer (or, via ``array_source``, over a
        granted shared segment) — every consumer either copies into its own
        destination or may treat the buffer as owned.
        """
        t0 = perf_counter()
        if self._mux:
            return self._round_trip_mux(parts, array_source, t0)
        try:
            sock = self._borrow()
        except (OSError, WireError) as exc:
            raise _map_wire_error(exc, self.server_id) from exc
        try:
            sent = send_frame_iov(sock, parts)
            reply = recv_frame(sock)
        except (OSError, WireError) as exc:
            self._discard(sock, reuse=False)
            raise _map_wire_error(exc, self.server_id) from exc
        try:
            msg = decode_message(
                reply, array_source=array_source, copy_arrays=False
            )
        except WireError as exc:
            self._discard(sock, reuse=False)
            raise _map_wire_error(exc, self.server_id) from exc
        self._give_back(sock)
        _REQUESTS.inc()
        _BYTES_SENT.inc(sent + 4)
        _BYTES_RECEIVED.inc(len(reply) + 4)
        _REQ_SECONDS.record(perf_counter() - t0)
        return msg

    def _round_trip_mux(self, parts: list, array_source, t0: float) -> tuple:
        """The multiplexed round trip: v2 frame, per-request future.

        The reply payload is decoded *here*, on the caller's thread — never
        in the reader — because decoding may resolve SegRefs through a
        per-request ``array_source``. A timeout keeps the connection (only
        this request is abandoned; its late reply is dropped by id); every
        other wire failure retires the shared connection.
        """
        from time import time as _now

        deadline = current_deadline()
        timeout = REQUEST_TIMEOUT
        if deadline:
            timeout = max(0.05, min(timeout, deadline - _now()))
        conn = None
        sent = sum(len(p) for p in parts)
        try:
            conn = self._mux_conn()
            reply = conn.call(parts, deadline=deadline, timeout=timeout)
        except (OSError, WireError) as exc:
            if conn is not None and not isinstance(exc, (socket.timeout, TimeoutError)):
                self._retire_mux_conn(conn)
            raise _map_wire_error(exc, self.server_id) from exc
        try:
            msg = decode_message(reply, array_source=array_source, copy_arrays=False)
        except WireError as exc:
            self._retire_mux_conn(conn)
            raise _map_wire_error(exc, self.server_id) from exc
        _REQUESTS.inc()
        _BYTES_SENT.inc(sent + 20)
        _BYTES_RECEIVED.inc(len(reply) + 20)
        _REQ_SECONDS.record(perf_counter() - t0)
        return msg

    def _unpack_response(self, msg: tuple):
        if msg[0] == "ok":
            return msg[1]
        if msg[0] == "err":
            raise_wire_error(msg[1], msg[2], msg[3])
        raise _map_wire_error(
            WireClosed(f"unexpected reply tag {msg[0]!r}"), self.server_id
        )

    def request(self, op: str, args: tuple):
        return self._unpack_response(self._round_trip(encode_request_iov(op, args)))

    def request_batch(self, requests: list[tuple[str, tuple]]) -> list:
        """Pipeline N ops in one frame; returns per-op values in order.

        The first failed op's error is raised (after the whole batch ran
        server-side — batches are not transactions, matching the semantics
        of issuing the ops back-to-back on one connection).
        """
        _BATCH_SIZE.record(len(requests))
        parts = encode_batch_iov([("req", op, args) for op, args in requests])
        return self._unpack_batch(self._round_trip(parts))

    def _unpack_batch(self, msg: tuple) -> list:
        if msg[0] != "batch_ok":
            if msg[0] == "err":
                raise_wire_error(msg[1], msg[2], msg[3])
            raise _map_wire_error(
                WireClosed(f"unexpected reply tag {msg[0]!r}"), self.server_id
            )
        values = []
        error = None
        for item in msg[1]:
            if item[0] == "ok":
                values.append(item[1])
            elif error is None:
                values.append(None)
                error = item
            else:
                values.append(None)
        if error is not None:
            raise_wire_error(error[1], error[2], error[3])
        return values

    # ------------------------------------------------------------ lifecycle

    def close(self, *, shutdown_op: bool = True) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
            mux_conns, self._mux_conns = self._mux_conns, []
        _POOL_IDLE.add(-len(idle))
        if shutdown_op:
            try:
                sock = idle.pop() if idle else self._dial()
                sock.settimeout(1.0)
                send_frame(sock, encode_request("admin:shutdown", ()))
                recv_frame(sock)
                sock.close()
            except (OSError, WireError):
                pass
        # The server drains admitted requests before exiting; wait for their
        # replies to land so concurrent callers finish cleanly instead of
        # seeing the socket die under them.
        for conn in mux_conns:
            conn.drain(timeout=5.0)
            conn.close()
        for sock in idle:
            sock.close()
        proc = self.process
        if proc is not None:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            self.process = None


class _RemoteStore:
    """Control-plane facade over the server process's ObjectStore.

    Mirrors the store attributes tests and the checkpointer read on local
    servers (``object_count``, ``fragments``, ``clear``, ...); all calls
    dispatch against the *unwrapped* server, matching ``FaultyServer``'s
    control-plane passthrough.
    """

    def __init__(self, endpoint: _Endpoint) -> None:
        self._endpoint = endpoint

    @property
    def object_count(self) -> int:
        return self._endpoint.request("admin:store", ("object_count", ()))

    @property
    def nbytes(self) -> int:
        return self._endpoint.request("admin:store", ("nbytes", ()))

    def fragments(self, name: str, version: int):
        return self._endpoint.request("admin:store", ("fragments", (name, version)))

    def fragment_count(self, name: str, version: int) -> int:
        return self._endpoint.request(
            "admin:store", ("fragment_count", (name, version))
        )

    def versions(self, name: str):
        return self._endpoint.request("admin:store", ("versions", (name,)))

    def keys(self):
        return self._endpoint.request("admin:store", ("keys", ()))

    def latest_version(self, name: str):
        return self._endpoint.request("admin:store", ("latest_version", (name,)))

    def clear(self) -> None:
        return self._endpoint.request("admin:store", ("clear", ()))


class RemoteServer:
    """Client-side proxy for one staging-server process.

    Drop-in for :class:`~repro.staging.server.StagingServer` inside
    ``StagingGroup.servers``: the full method surface plus the control-plane
    attributes the runtime and tests touch (``store`` facade, ``inner``
    — itself, faults live server-side — and ``heal``).
    """

    def __init__(self, endpoint: _Endpoint) -> None:
        self._endpoint = endpoint
        self.server_id = endpoint.server_id
        self.lock = threading.RLock()  # parity with StagingServer.lock
        self.store = _RemoteStore(endpoint)
        # Set by the transport's fault hook (shared RemoteFaultHandle),
        # mirroring FaultyServer.injector.
        self.injector = None

    @property
    def inner(self) -> "RemoteServer":
        # Fault state lives in the server process; the proxy is its own
        # control-plane view (``server.inner.store...`` in tests).
        return self

    def heal(self) -> None:
        self._endpoint.request("admin:heal", ())

    @property
    def crashed(self) -> bool:
        """Whether a crash fault is active in the server process (parity
        with ``FaultyServer.crashed``; False when no faults are installed)."""
        status = self._endpoint.request("admin:fault_status", ())
        return bool(status and status["crashed"])

    @property
    def op_count(self) -> int:
        """Data-path ops the server-side fault wrapper has counted."""
        status = self._endpoint.request("admin:fault_status", ())
        return status["op_count"] if status else 0

    def ping(self) -> bool:
        return self._endpoint.request("admin:ping", ()) == "pong"

    def pipeline(self, requests: list[tuple[str, tuple]]) -> list:
        """Run N ops in one round trip (see ``_Endpoint.request_batch``)."""
        return self._endpoint.request_batch(requests)

    @property
    def nbytes(self) -> int:
        return self._endpoint.request("nbytes", ())

    @property
    def protection_nbytes(self) -> int:
        return self._endpoint.request("protection_nbytes", ())

    def __repr__(self) -> str:
        return f"RemoteServer(id={self.server_id}, port={self._endpoint.port})"


def _make_op(op: str):
    def call(self, *args):
        return self._endpoint.request(op, args)

    call.__name__ = op
    call.__qualname__ = f"RemoteServer.{op}"
    call.__doc__ = f"Remote `StagingServer.{op}` (one round trip)."
    return call


for _op in sorted(SERVER_OPS):
    setattr(RemoteServer, _op, _make_op(_op))
del _op


class RemoteFaultHandle:
    """Client-side view of fault injectors living in the server processes.

    Mirrors the :class:`~repro.faults.plan.FaultInjector` read API
    (``fired``, ``pending_count``, ``pending_for``) by querying each server
    process, so callers like the recovery soak's ``injector.fired`` check
    work identically over TCP.
    """

    def __init__(self, transport: "TcpTransport") -> None:
        self._transport = transport

    def _statuses(self) -> list[dict]:
        out = []
        for endpoint in self._transport.endpoints():
            try:
                status = endpoint.request("admin:fault_status", ())
            except (ServerUnavailable, TransientServerError):
                continue  # a crashed *process* has no faults left to report
            if status is not None:
                out.append(status)
        return out

    @property
    def fired(self) -> list:
        return [plan for s in self._statuses() for plan in s["fired"]]

    @property
    def pending_count(self) -> int:
        return sum(len(s["pending"]) for s in self._statuses())

    def pending_for(self, server: int) -> list:
        return [
            p for s in self._statuses() for p in s["pending"] if p.server == server
        ]


class TcpTransport(Transport):
    """One server process per staging server, reached over pooled TCP."""

    name = "tcp"
    remote = True

    def __init__(self) -> None:
        self._endpoints: dict[int, _Endpoint] = {}
        self._lock = threading.Lock()
        self._closed = False
        _live_transports.add(self)
        # Last-resort reaper if the transport is dropped without close();
        # holds only the endpoint dict, never the transport itself.
        self._finalizer = weakref.finalize(self, _close_endpoints, self._endpoints)

    # -------------------------------------------------------------- spawning

    @staticmethod
    @contextlib.contextmanager
    def _spawnable_main():
        """Hide ``__main__`` from multiprocessing's child bootstrap.

        Spawn-family start methods re-import the parent's main module in
        every child — pointless here (the server body is the importable
        :func:`repro.net.tcpserver.run_server`, and no argument references
        main-module state) and actively harmful for unguarded scripts and
        stdin/REPL sessions, where the re-import re-creates the staging
        group recursively. Swapping in an anonymous main for the duration
        of ``Process.start()`` makes the bootstrap skip main fixup.
        """
        import types

        with _mp_lock:
            real_main = sys.modules.get("__main__")
            sys.modules["__main__"] = types.ModuleType("__main__")
            try:
                yield
            finally:
                if real_main is not None:
                    sys.modules["__main__"] = real_main

    def _spawn(self, server_id: int) -> _Endpoint:
        t0 = perf_counter()
        ctx = _context()
        port_rx, port_tx = ctx.Pipe(duplex=False)
        # Event-loop sizing is resolved *here*, in the parent: forkserver
        # children snapshot the forkserver's environment at its creation, so
        # REPRO_SERVER_QUEUE set after import would never reach the child as
        # an env var. Shipping it as an argument always works.
        proc = ctx.Process(
            target=run_server,
            args=(server_id, port_tx, server_config()),
            daemon=True,
            name=f"staging-server-{server_id}",
        )
        with self._spawnable_main():
            proc.start()
        port_tx.close()
        if not port_rx.poll(SPAWN_TIMEOUT):
            proc.terminate()
            raise ServerUnavailable(server_id, "server process never reported a port")
        port = port_rx.recv()
        port_rx.close()
        _SPAWNS.inc()
        _SPAWN_SECONDS.record(perf_counter() - t0)
        return self._make_endpoint(server_id, proc, port)

    def _make_endpoint(self, server_id: int, process, port: int) -> _Endpoint:
        """Endpoint factory — the shm transport swaps in its pooled variant."""
        return _Endpoint(server_id, process, port)

    # ------------------------------------------------------------- Transport

    def make_servers(self, num_servers: int) -> list[RemoteServer]:
        with self._lock:
            if self._closed:
                raise ServerUnavailable(-1, "transport closed")
            servers = []
            for i in range(num_servers):
                endpoint = self._spawn(i)
                self._endpoints[i] = endpoint
                servers.append(RemoteServer(endpoint))
            return servers

    def make_replacement(self, server_id: int) -> RemoteServer:
        """A fresh, empty server process for ``server_id``.

        The lost server's process is retired (killed if still running): a
        rebuild models replacing dead hardware, and a truly wedged process
        must not linger holding its port.
        """
        with self._lock:
            if self._closed:
                raise ServerUnavailable(server_id, "transport closed")
            old = self._endpoints.pop(server_id, None)
            if old is not None:
                old.close()
            endpoint = self._spawn(server_id)
            self._endpoints[server_id] = endpoint
            return RemoteServer(endpoint)

    def inject_faults(self, plans, rng=None):
        """Ship each server's plans into its process; return the shared handle."""
        for endpoint in self.endpoints():
            server_plans = [p for p in plans if p.server == endpoint.server_id]
            gen = (
                rng.get(f"faults.corrupt.{endpoint.server_id}")
                if rng is not None
                else None
            )
            endpoint.request("admin:install_faults", (server_plans, gen))
        return RemoteFaultHandle(self)

    def endpoints(self) -> list[_Endpoint]:
        with self._lock:
            return list(self._endpoints.values())

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            endpoints, self._endpoints = dict(self._endpoints), {}
        for endpoint in endpoints.values():
            endpoint.close()
        self._finalizer.detach()


def _close_endpoints(endpoints: dict) -> None:
    for endpoint in list(endpoints.values()):
        try:
            endpoint.close(shutdown_op=False)
        except Exception:
            pass


def shutdown_all() -> None:
    """Close every live TcpTransport (test-harness reaper)."""
    for transport in list(_live_transports):
        transport.close()
