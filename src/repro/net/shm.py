"""Shared-memory transport: zero-copy bulk data plane, doorbell control plane.

One OS process per staging server, exactly like :class:`~repro.net.tcp.
TcpTransport` (whose spawn, admin-op, pooling, and error-mapping machinery
this module reuses wholesale) — but bulk ndarray payloads move through
``multiprocessing.shared_memory`` segments instead of TCP frames. Only small
control messages cross the socket, which degrades into a *doorbell*:

* **put path** — the client acquires a slab from its per-endpoint
  :class:`SegmentPool`, writes each shard **once** (one strided copy from
  the caller's array straight into the segment), and sends a doorbell frame
  carrying :class:`~repro.net.codec.SegRef` tags. The server maps the
  segment and reads the shards **zero-copy** via ``np.ndarray(buffer=...)``
  views; ``ObjectStore.put`` then makes its usual single ownership copy.
* **get path** — the client grants the server a response slab sized from
  the request's descriptors. The server gathers fragments *directly into
  the slab* (``store.get(out=...)``), so the reply is one strided copy
  server-side and zero-copy views client-side; the caller's own assembly
  (``out[region] = part``) is the only other copy.

Segment lifecycle (all segments are client-owned):

* A slab is **granted** to exactly one in-flight request; the allocator
  never double-grants (property-tested under hypothesis).
* Every recycle bumps the slab's **generation**, stamped in the segment
  header; the server validates the stamp against each ref, so a stale ref
  (or a crashed peer resurrecting an old grant) is rejected instead of
  silently reading recycled bytes.
* A slab whose request failed at the *wire* level is **retired** (unlinked,
  never reused): the server may still hold a mapping and write into it, and
  orphaned memory is strictly safer than recycled memory.
* Pool exhaustion falls back to plain wire frames — shm is an optimisation,
  never a correctness dependency.
* ``close()`` unlinks every slab; an ``atexit`` guard reaps pools that were
  never closed, and the server process closes its attach cache at exit.
  ``scripts/check.sh`` additionally removes leaked ``/dev/shm/repro-shm-*``
  files after an interrupted run.

Because the doorbell is the same framed TCP channel, the whole fault
surface — admin fault injection, kill → ``ServerUnavailable``, health
mark-down, degraded reads, ``rebuild_server`` — works unchanged; see
DESIGN.md §14.
"""

from __future__ import annotations

import atexit
import itertools
import mmap
import os
import secrets
import struct
import threading
import weakref
from collections import deque
from multiprocessing import shared_memory

try:  # CPython's POSIX shared-memory primitive (Linux/macOS)
    import _posixshmem
except ImportError:  # pragma: no cover - non-posix
    _posixshmem = None

import numpy as np

from repro.net.codec import SegRef
from repro.net.frames import ProtocolError
from repro.net.protocol import (
    encode_batch_iov,
    encode_request_iov,
)
from repro.net.tcp import TcpTransport, _Endpoint
from repro.obs import registry as _obs
from repro.staging.store import StoredObject

__all__ = [
    "SHM_PREFIX",
    "SegmentPool",
    "ServerSegments",
    "ShmTransport",
    "leaked_segment_names",
    "unlink_leaked_segments",
]

#: Every segment name this transport creates starts with this prefix, so
#: external reapers (scripts/check.sh, the soak leak checks) can find leaks
#: without knowing anything else about the run.
SHM_PREFIX = "repro-shm-"

#: Segment header: magic + generation stamp, then payload (64B-aligned).
_HEADER = struct.Struct("!IQ")
_MAGIC = 0x52_53_48_4D  # "RSHM"
HEADER_BYTES = 64
_ALIGN = 64

#: Arrays below this many bytes stay inline on the doorbell frame — a tiny
#: memcpy beats segment bookkeeping.
MIN_ARRAY_BYTES = int(os.environ.get("REPRO_SHM_MIN_ARRAY", "") or 4096)
#: Per-endpoint ceiling on live segment bytes; past it, requests fall back
#: to wire frames instead of growing /dev/shm without bound.
POOL_CAPACITY_BYTES = int(
    os.environ.get("REPRO_SHM_POOL_BYTES", "") or 256 * 1024 * 1024
)
#: Smallest slab ever created (allocations round up to powers of two).
MIN_SLAB_BYTES = int(os.environ.get("REPRO_SHM_MIN_SLAB", "") or 1 << 20)

_SEGMENTS_CREATED = _obs.counter("net.shm.segments_created")
_SEGMENT_REUSES = _obs.counter("net.shm.segment_reuses")
_OOB_BYTES = _obs.counter("net.shm.oob_bytes")
_GRANT_BYTES = _obs.counter("net.shm.grant_bytes")
_WIRE_FALLBACKS = _obs.counter("net.shm.wire_fallbacks")
_STALE_REFS = _obs.counter("net.shm.stale_refs")
_RETIRED = _obs.counter("net.shm.segments_retired")

#: Ops whose *request* payloads may ride segments. Deliberately a whitelist:
#: these ops consume their arrays before replying (``store.put``/``put_blob``
#: copy), so the slab is safe to recycle the moment the reply arrives.
#: Everything else — notably ``restore``, which retains decoded arrays in
#: the store — stays on the wire, where retained views pin only the request
#: frame's own buffer.
SHM_REQUEST_OPS = frozenset({"put", "put_many", "put_blob"})
#: Ops whose response size is computable from the request, enabling a
#: response-slab grant the server gathers directly into.
GRANT_OPS = frozenset({"get", "get_many"})

_name_seq = itertools.count()

# Pools that were never explicitly closed still unlink their segments at
# interpreter exit (daemon server processes die with us; the segments would
# otherwise outlive everyone in /dev/shm).
_live_pools: weakref.WeakSet = weakref.WeakSet()


class _Attachment:
    """Read-write mapping of an existing segment, opened with raw
    ``shm_open`` + ``mmap`` rather than :class:`SharedMemory`.

    Attaching through ``SharedMemory`` would register the segment with
    multiprocessing's resource tracker — which, under forkserver, is the
    *same tracker process the client uses*: any (un)registration from the
    server side corrupts the owner's accounting (double-unregister noise,
    or worse, early unlink of client-owned segments on Python < 3.13).
    A raw mapping never touches the tracker; ownership stays strictly
    client-side.
    """

    __slots__ = ("name", "size", "buf", "_mmap")

    def __init__(self, name: str) -> None:
        if _posixshmem is None:  # pragma: no cover - non-posix
            raise FileNotFoundError(name)
        fd = _posixshmem.shm_open("/" + name, os.O_RDWR, 0o600)
        try:
            self.size = os.fstat(fd).st_size
            self._mmap = mmap.mmap(fd, self.size)
        finally:
            os.close(fd)
        self.name = name
        self.buf = memoryview(self._mmap)

    def close(self) -> None:
        buf, self.buf = self.buf, None
        if buf is None:
            return
        buf.release()
        try:
            self._mmap.close()
        except BufferError:  # pragma: no cover - live numpy views
            pass


def _segment_name() -> str:
    # Short (macOS caps POSIX shm names at ~31 chars), unique per process
    # and per allocation — names are never reused, so a crashed peer cannot
    # alias a new segment with a cached old name.
    return f"{SHM_PREFIX}{os.getpid():x}-{next(_name_seq):x}{secrets.token_hex(2)}"


def leaked_segment_names() -> list[str]:
    """Names of repro shm segments currently present on this host."""
    base = "/dev/shm"
    if not os.path.isdir(base):  # pragma: no cover - non-Linux
        return []
    return sorted(n for n in os.listdir(base) if n.startswith(SHM_PREFIX))


def unlink_leaked_segments() -> int:
    """Unlink every leaked repro segment; returns how many were removed."""
    removed = 0
    for name in leaked_segment_names():
        try:
            if _posixshmem is not None:
                _posixshmem.shm_unlink("/" + name)
            else:  # pragma: no cover - non-posix
                seg = shared_memory.SharedMemory(name=name)
                seg.close()
                seg.unlink()
            removed += 1
        except (FileNotFoundError, OSError):
            continue
    return removed


def _round_slab(nbytes: int, min_slab: int) -> int:
    size = min_slab
    while size < nbytes:
        size *= 2
    return size


class _Slab:
    """One shared segment plus its grant/generation bookkeeping."""

    __slots__ = (
        "name",
        "mem",
        "capacity",
        "generation",
        "busy",
        "outstanding",
        "draining",
        "retired",
    )

    def __init__(self, capacity: int) -> None:
        self.name = _segment_name()
        self.mem = shared_memory.SharedMemory(
            create=True, name=self.name, size=HEADER_BYTES + capacity
        )
        self.capacity = capacity
        self.generation = 0
        self.busy = False
        self.outstanding = 0  # zero-copy views handed to the caller
        self.draining = False  # released while views were still live
        self.retired = False  # never recycle (wire fault mid-grant)
        self.stamp()

    def stamp(self) -> None:
        _HEADER.pack_into(self.mem.buf, 0, _MAGIC, self.generation)

    def payload(self) -> memoryview:
        return self.mem.buf[HEADER_BYTES : HEADER_BYTES + self.capacity]

    def destroy(self) -> bool:
        """Unlink the segment; True the first time, False after (idempotent)."""
        mem, self.mem = self.mem, None
        if mem is None:
            return False
        try:
            mem.close()
        except BufferError:
            # Live views still point into the mapping: leave it mapped (the
            # memory is reclaimed when the last view dies) and drop the
            # handle so the object's __del__ doesn't retry the close and
            # raise the same error as an unraisable warning.
            mem._mmap = None
        try:
            mem.unlink()
        except FileNotFoundError:
            pass
        return True


class _Lease:
    """Keeps a slab checked out while a zero-copy view of it is alive.

    Attached to each ndarray view handed out of the pool; its destruction
    (deterministic under CPython refcounting) queues the slab for return.
    The queue — not a lock — is deliberate: ``__del__`` may run at any
    allocation point, including while the pool lock is held.
    """

    __slots__ = ("_pending", "_slab")

    def __init__(self, pending: deque, slab: _Slab) -> None:
        self._pending = pending
        self._slab = slab

    def __del__(self) -> None:
        self._pending.append(self._slab)


class _LeasedArray(np.ndarray):
    """ndarray view whose lifetime extends a slab lease (see _Lease)."""


class SegmentPool:
    """Client-side slab allocator for one endpoint. Thread-safe.

    ``acquire`` hands out each slab to exactly one owner at a time;
    ``release`` recycles (generation bump + restamp), ``retire`` destroys.
    Exhaustion returns ``None`` — callers fall back to wire frames.
    """

    def __init__(
        self,
        capacity_bytes: int = POOL_CAPACITY_BYTES,
        min_slab: int = MIN_SLAB_BYTES,
    ) -> None:
        self.capacity_bytes = capacity_bytes
        self.min_slab = min_slab
        self._lock = threading.Lock()
        self._free: list[_Slab] = []
        self._busy: set[_Slab] = set()
        self._draining: set[_Slab] = set()
        self._bytes = 0
        self._closed = False
        self._pending: deque = deque()
        _live_pools.add(self)

    # ------------------------------------------------------------- internals

    def _drain_pending_locked(self) -> None:
        while True:
            try:
                slab = self._pending.popleft()
            except IndexError:
                return
            slab.outstanding -= 1
            if slab.outstanding == 0 and slab.draining:
                slab.draining = False
                self._draining.discard(slab)
                if self._closed or slab.retired:
                    self._destroy_locked(slab)
                else:
                    self._recycle_locked(slab)

    def _recycle_locked(self, slab: _Slab) -> None:
        slab.generation += 1
        slab.stamp()
        self._free.append(slab)

    def _destroy_locked(self, slab: _Slab) -> None:
        if slab.destroy():
            self._bytes -= slab.capacity

    # ------------------------------------------------------------------ API

    def acquire(self, nbytes: int) -> _Slab | None:
        """Check out a slab with ≥ ``nbytes`` payload capacity, or None."""
        if nbytes <= 0:
            return None
        with self._lock:
            if self._closed:
                return None
            self._drain_pending_locked()
            best = None
            for slab in self._free:
                if slab.capacity >= nbytes and (
                    best is None or slab.capacity < best.capacity
                ):
                    best = slab
            if best is not None:
                self._free.remove(best)
                self._busy.add(best)
                best.busy = True
                _SEGMENT_REUSES.inc()
                return best
            size = _round_slab(nbytes, self.min_slab)
            if self._bytes + size > self.capacity_bytes:
                _WIRE_FALLBACKS.inc()
                return None
            try:
                slab = _Slab(size)
            except OSError:
                _WIRE_FALLBACKS.inc()
                return None
            self._bytes += size
            self._busy.add(slab)
            slab.busy = True
            _SEGMENTS_CREATED.inc()
            return slab

    def release(self, slab: _Slab) -> None:
        """Return a slab after a *clean* round trip (reply received): the
        server is done with it, so it can be recycled — unless zero-copy
        views are still checked out, in which case recycling waits for the
        last lease to die."""
        with self._lock:
            self._drain_pending_locked()
            if slab not in self._busy:
                raise RuntimeError(f"release of non-granted slab {slab.name}")
            self._busy.discard(slab)
            slab.busy = False
            if slab.outstanding > 0:
                slab.draining = True
                self._draining.add(slab)
            elif self._closed:
                self._destroy_locked(slab)
            else:
                self._recycle_locked(slab)

    def retire(self, slab: _Slab) -> None:
        """Destroy a slab after a *wire-level* failure: the server's fate —
        and whether it still writes into its mapping — is unknowable, so
        the segment is unlinked and never reused."""
        with self._lock:
            self._drain_pending_locked()
            self._busy.discard(slab)
            slab.busy = False
            if slab in self._draining or slab.outstanding > 0:
                slab.draining = True
                self._draining.add(slab)
                slab.retired = True  # destroyed when the last lease dies
                _RETIRED.inc()
                return
            _RETIRED.inc()
            self._destroy_locked(slab)

    def lease_view(self, slab: _Slab, ref: SegRef) -> np.ndarray:
        """Zero-copy ndarray over ``ref``'s bytes, keeping ``slab`` checked
        out until the returned array (and anything based on it) dies."""
        dtype = np.dtype(ref.dtype)
        end = ref.offset + ref.nbytes
        if end > slab.capacity:
            raise ProtocolError(f"segment ref beyond slab: {ref.describe()}")
        raw = np.frombuffer(slab.payload()[ref.offset : end], dtype=np.uint8)
        view = raw.view(dtype).reshape(ref.shape).view(_LeasedArray)
        with self._lock:
            slab.outstanding += 1
        view._lease = _Lease(self._pending, slab)
        return view

    def lookup(self, name: str) -> _Slab | None:
        with self._lock:
            for slab in self._busy:
                if slab.name == name:
                    return slab
        return None

    @property
    def live_bytes(self) -> int:
        with self._lock:
            return self._bytes

    @property
    def segment_names(self) -> list[str]:
        with self._lock:
            slabs = list(self._free) + list(self._busy) + list(self._draining)
            return sorted(s.name for s in slabs if s.mem is not None)

    def close(self) -> None:
        """Unlink every slab (idempotent). Live leases keep their memory
        mapped until they die; the names are gone immediately."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._drain_pending_locked()
            for slab in list(self._free) + list(self._busy) + list(self._draining):
                self._destroy_locked(slab)
            self._free.clear()
            self._busy.clear()
            self._draining.clear()


@atexit.register
def _reap_live_pools() -> None:  # pragma: no cover - exit path
    for pool in list(_live_pools):
        try:
            pool.close()
        except Exception:
            pass


# --------------------------------------------------------------------------
# codec hooks: request writer (client), response sink + resolver (server)
# --------------------------------------------------------------------------


def _eligible(arr: np.ndarray) -> bool:
    return (
        arr.nbytes >= MIN_ARRAY_BYTES
        and not arr.dtype.hasobject
        and len(arr.shape) <= 255
        and len(arr.dtype.str) <= 255
    )


def _align(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


def oob_payload_bytes(obj) -> int:
    """Aligned bytes of every segment-eligible ndarray inside ``obj`` —
    the request-slab size estimate. Mirrors the codec's traversal; an
    under-estimate is safe (the writer falls back to inline placement)."""
    t = type(obj)
    if t is np.ndarray:
        return _align(int(obj.nbytes)) if _eligible(obj) else 0
    if t is list or t is tuple or t is set or t is frozenset:
        return sum(oob_payload_bytes(item) for item in obj)
    if t is dict:
        return sum(
            oob_payload_bytes(k) + oob_payload_bytes(v) for k, v in obj.items()
        )
    if t is StoredObject:
        return oob_payload_bytes(obj.data)
    return 0


def expected_response_bytes(op: str, args: tuple) -> int:
    """Upper-ish bound on an op's bulk response payload, from its request.

    Only ops whose response geometry is fully determined by the request
    (``get``/``get_many``: bbox shape × dtype itemsize) are sized; anything
    else returns 0 → no grant → the reply rides the wire.
    """
    try:
        if op == "get":
            (desc,) = args
            return _desc_nbytes(desc) + _ALIGN
        if op == "get_many":
            (descs,) = args
            return sum(_desc_nbytes(d) + _ALIGN for d in descs)
    except Exception:
        return 0
    return 0


def _desc_nbytes(desc) -> int:
    n = 1
    for dim in desc.bbox.shape:
        n *= int(dim)
    return n * np.dtype(desc.dtype).itemsize


class _SegmentWriter:
    """``array_sink`` for requests: bump-pointer copies eligible arrays
    into one slab (a single strided copy, straight from the caller's —
    possibly non-contiguous — array) and returns their SegRefs."""

    __slots__ = ("slab", "payload", "cursor", "placed_bytes")

    def __init__(self, slab: _Slab) -> None:
        self.slab = slab
        self.payload = slab.payload()
        self.cursor = 0
        self.placed_bytes = 0

    def __call__(self, arr: np.ndarray) -> SegRef | None:
        if not _eligible(arr):
            return None
        offset = _align(self.cursor)
        nbytes = int(arr.nbytes)
        if offset + nbytes > self.slab.capacity:
            return None  # slab full: this array rides the wire
        dest = np.ndarray(
            arr.shape, arr.dtype, buffer=self.payload[offset : offset + nbytes]
        )
        np.copyto(dest, arr)
        self.cursor = offset + nbytes
        self.placed_bytes += nbytes
        return SegRef(
            self.slab.name,
            self.slab.generation,
            offset,
            nbytes,
            arr.dtype.str,
            tuple(arr.shape),
        )


class _ResponseResolver:
    """``array_source`` for replies: resolves SegRefs against the slab this
    client granted, handing out leased zero-copy views."""

    __slots__ = ("pool", "slab")

    def __init__(self, pool: SegmentPool, slab: _Slab | None) -> None:
        self.pool = pool
        self.slab = slab

    def __call__(self, ref: SegRef) -> np.ndarray:
        slab = self.slab
        if slab is None or slab.name != ref.segment:
            _STALE_REFS.inc()
            raise ProtocolError(f"reply ref to ungranted segment {ref.describe()}")
        if ref.generation != slab.generation:
            _STALE_REFS.inc()
            raise ProtocolError(f"stale reply ref {ref.describe()}")
        return self.pool.lease_view(slab, ref)


class ResponseSink:
    """Server-side ``array_sink`` over one granted response slab.

    ``reserve`` pre-allocates destination views so ``store.get(out=...)``
    gathers fragments *directly into shared memory*; encoding then emits
    the matching SegRef without touching the payload again. Unreserved
    arrays that fit are copied in; anything else inlines on the doorbell.
    ``mark``/``rollback`` make an all-or-nothing multi-array reservation
    (get_many) possible: either every destination lands in the slab or the
    whole response takes the ordinary path.
    """

    __slots__ = ("name", "payload", "generation", "capacity", "cursor", "_reserved")

    def __init__(self, name: str, segment, generation: int, capacity: int) -> None:
        self.name = name
        self.payload = segment.buf[HEADER_BYTES : HEADER_BYTES + capacity]
        self.generation = generation
        self.capacity = capacity
        self.cursor = 0
        self._reserved: dict[int, SegRef] = {}

    def _place(self, shape: tuple, dtype: np.dtype):
        nbytes = dtype.itemsize
        for dim in shape:
            nbytes *= int(dim)
        offset = _align(self.cursor)
        if offset + nbytes > self.capacity:
            return None
        self.cursor = offset + nbytes
        return offset, nbytes

    def _ref(self, offset: int, nbytes: int, dtype: np.dtype, shape: tuple) -> SegRef:
        return SegRef(self.name, self.generation, offset, nbytes, dtype.str, shape)

    def reserve(self, shape, dtype) -> np.ndarray | None:
        """A writable slab view for a response array the server has not
        produced yet, or None when it doesn't fit."""
        shape = tuple(int(d) for d in shape)
        dtype = np.dtype(dtype)
        if dtype.hasobject or dtype.itemsize == 0:
            return None
        spot = self._place(shape, dtype)
        if spot is None:
            return None
        offset, nbytes = spot
        dest = np.ndarray(shape, dtype, buffer=self.payload[offset : offset + nbytes])
        self._reserved[id(dest)] = self._ref(offset, nbytes, dtype, shape)
        return dest

    def mark(self) -> int:
        return self.cursor

    def rollback(self, mark: int) -> None:
        self.cursor = mark
        self._reserved.clear()

    def __call__(self, arr: np.ndarray) -> SegRef | None:
        ref = self._reserved.get(id(arr))
        if ref is not None:
            return ref
        if not _eligible(arr):
            return None
        spot = self._place(arr.shape, arr.dtype)
        if spot is None:
            return None
        offset, nbytes = spot
        dest = np.ndarray(
            arr.shape, arr.dtype, buffer=self.payload[offset : offset + nbytes]
        )
        np.copyto(dest, arr)
        return self._ref(offset, nbytes, arr.dtype, tuple(arr.shape))


class ServerSegments:
    """Server-process segment registry: attach cache + ref validation.

    Attachments are cached by name (names are never reused) and mapped
    raw (see :class:`_Attachment`) — segments are client-owned; the server
    must never unlink or tracker-register them. The dispatcher registers
    ``close`` with ``atexit`` when it creates the registry, so a cleanly
    shut-down server process drops its mappings (a killed one is reaped by
    the kernel).
    """

    def __init__(self) -> None:
        self._attached: dict[str, _Attachment] = {}
        self._lock = threading.Lock()

    def _attach(self, name: str) -> _Attachment:
        with self._lock:
            seg = self._attached.get(name)
            if seg is None:
                seg = _Attachment(name)
                self._attached[name] = seg
            return seg

    def _validated(self, name: str, generation: int) -> _Attachment:
        try:
            seg = self._attach(name)
        except (FileNotFoundError, OSError) as exc:
            _STALE_REFS.inc()
            raise ProtocolError(f"segment {name!r} is gone: {exc}") from exc
        magic, stamp = _HEADER.unpack_from(seg.buf, 0)
        if magic != _MAGIC:
            _STALE_REFS.inc()
            raise ProtocolError(f"segment {name!r} has no valid header")
        if stamp != generation:
            _STALE_REFS.inc()
            raise ProtocolError(
                f"stale segment ref: {name!r} gen {generation} != stamped {stamp}"
            )
        return seg

    def resolve(self, ref: SegRef) -> np.ndarray:
        """Zero-copy view over a request ref (validating the generation)."""
        seg = self._validated(ref.segment, ref.generation)
        end = HEADER_BYTES + ref.offset + ref.nbytes
        if end > seg.size:
            _STALE_REFS.inc()
            raise ProtocolError(f"segment ref beyond mapping: {ref.describe()}")
        raw = seg.buf[HEADER_BYTES + ref.offset : end]
        return np.frombuffer(raw, dtype=np.uint8).view(np.dtype(ref.dtype)).reshape(
            ref.shape
        )

    def response_sink(self, grant) -> ResponseSink | None:
        """Build a sink over a ``("grant", name, gen, capacity)`` tuple;
        an invalid/stale grant yields None (reply rides the wire)."""
        if not (isinstance(grant, tuple) and len(grant) == 4 and grant[0] == "grant"):
            return None
        _tag, name, generation, capacity = grant
        try:
            seg = self._validated(name, generation)
        except ProtocolError:
            return None
        capacity = min(int(capacity), seg.size - HEADER_BYTES)
        return ResponseSink(name, seg, generation, capacity)

    def close(self) -> None:
        with self._lock:
            attached, self._attached = dict(self._attached), {}
        for seg in attached.values():
            try:
                seg.close()
            except (BufferError, OSError):  # pragma: no cover - exit path
                pass


# --------------------------------------------------------------------------
# client endpoint + transport
# --------------------------------------------------------------------------


class _ShmEndpoint(_Endpoint):
    """TCP doorbell endpoint with a per-endpoint segment pool."""

    def __init__(self, server_id: int, process, port: int) -> None:
        super().__init__(server_id, process, port)
        self.pool = SegmentPool()

    def _grant_for(self, slab: _Slab | None):
        if slab is None:
            return None
        return ("grant", slab.name, slab.generation, slab.capacity)

    def request(self, op: str, args: tuple):
        if op.startswith("admin:"):
            return super().request(op, args)
        pool = self.pool
        req_slab = resp_slab = None
        sink = None
        if op in SHM_REQUEST_OPS:
            need = oob_payload_bytes(args)
            if need:
                req_slab = pool.acquire(need)
                if req_slab is not None:
                    sink = _SegmentWriter(req_slab)
        grant = None
        if op in GRANT_OPS:
            expected = expected_response_bytes(op, args)
            if expected >= MIN_ARRAY_BYTES:
                resp_slab = pool.acquire(expected)
                grant = self._grant_for(resp_slab)
                if resp_slab is not None:
                    _GRANT_BYTES.inc(expected)
        if sink is None and grant is None:
            return super().request(op, args)
        clean = False
        try:
            parts = encode_request_iov(op, args, grant=grant, array_sink=sink)
            if sink is not None:
                _OOB_BYTES.inc(sink.placed_bytes)
            resolver = _ResponseResolver(pool, resp_slab)
            msg = self._round_trip(parts, array_source=resolver)
            # A decoded reply — ok *or* typed staging error — means the
            # server finished the op and is done with the slabs. A wire
            # failure means its fate (and any in-flight write into the
            # grant) is unknowable: retire, never recycle.
            clean = True
            return self._unpack_response(msg)
        finally:
            for slab in (req_slab, resp_slab):
                if slab is not None:
                    (pool.release if clean else pool.retire)(slab)

    def request_batch(self, requests):
        pool = self.pool
        # Segments only when every op in the batch consumes its payload
        # before replying (see SHM_REQUEST_OPS); mixed batches with ops
        # that retain arrays (restore) stay on the wire.
        placeable = bool(requests) and all(op in SHM_REQUEST_OPS for op, _ in requests)
        req_slab = None
        sink = None
        if placeable:
            need = sum(oob_payload_bytes(args) for _, args in requests)
            if need:
                req_slab = pool.acquire(need)
                if req_slab is not None:
                    sink = _SegmentWriter(req_slab)
        if sink is None:
            return super().request_batch(requests)
        clean = False
        try:
            parts = encode_batch_iov(
                [("req", op, args) for op, args in requests], array_sink=sink
            )
            _OOB_BYTES.inc(sink.placed_bytes)
            msg = self._round_trip(parts)
            clean = True
            return self._unpack_batch(msg)
        finally:
            (pool.release if clean else pool.retire)(req_slab)

    def close(self, *, shutdown_op: bool = True) -> None:
        super().close(shutdown_op=shutdown_op)
        self.pool.close()


class ShmTransport(TcpTransport):
    """One server process per staging server; TCP doorbell, shm data plane.

    Everything observable — admin ops, fault injection, failure mapping,
    rebuild provisioning — is inherited from :class:`TcpTransport`; only
    how bulk payload bytes travel differs.
    """

    name = "shm"

    def _make_endpoint(self, server_id: int, process, port: int) -> _ShmEndpoint:
        return _ShmEndpoint(server_id, process, port)

    def segment_names(self) -> list[str]:
        """Names of every live segment across this transport's pools."""
        names: list[str] = []
        for endpoint in self.endpoints():
            names.extend(endpoint.pool.segment_names)
        return sorted(names)
