"""The staging server process: event-loop frame I/O + RPC dispatcher.

One process per staging server (DataSpaces-style). The process hosts a plain
:class:`~repro.staging.server.StagingServer` and serves the same method
surface clients use in-process, so client/resilience/runtime code is
byte-identical across transports. Faults are injected *here* — the parent
ships :class:`~repro.faults.plan.FaultPlan` lists over an admin op and the
process wraps its server in the same
:class:`~repro.faults.proxy.FaultyServer` the inproc path uses — so crash
refusals, flaky errors, slow service, and corrupt reads all cross a real
socket before the client sees them.

Concurrency model (DESIGN.md §15): a single ``selectors``-based event loop
owns every socket. The loop thread does all reads and writes non-blockingly
— frames are reassembled per connection by
:class:`~repro.net.frames.MuxFrameDecoder` and replies are queued iovecs
flushed with ``sendmsg`` — while decoded requests execute on a bounded
worker pool and complete **out of order by request id**. A wakeup pipe
carries worker-completion and shutdown signals into the selector, replacing
the old 0.2 s accept-poll timeout (the listener is just another readable
key). The former thread-per-connection model coupled concurrency to
connection count; here a multiplexed client interleaves hundreds of
requests over one socket and a stalled (``slow``-faulted) request occupies
one worker, not the whole connection.

Admission control: the loop admits at most ``queue_depth`` requests
(``REPRO_SERVER_QUEUE``, read by the *parent* at spawn time — forkserver
children snapshot the forkserver's environment, not the parent's — and
passed through ``run_server``'s ``config``). Beyond that it sheds with a
typed, retryable :class:`~repro.errors.ServerBusy` instead of queueing
without bound; expired deadlines stamped in v2 headers are dropped with
:class:`~repro.errors.DeadlineExceeded` both at admission and again when a
worker picks the request up. ``admin:*`` control ops are recognised by a
byte-level peek (:func:`~repro.net.protocol.peek_request_kind`) and run
inline on the loop thread, bypassing admission — a saturated data plane
must never lock out ``admin:shutdown`` or fault installation.

v1 compatibility: v1 frames (no request id) are served on the same loop;
their replies are sequenced per connection in arrival order, since a v1
client attributes replies by position, not id.

Shutdown drains: ``admin:shutdown`` closes the listener immediately, lets
admitted requests finish, flushes every queued reply, and only then closes
connections — in-flight callers get real replies, not resets. New data ops
arriving mid-drain are shed with ``ServerBusy``.

This module is also the forkserver preload target: importing it warms
numpy + the staging stack once, so each server process forks in
milliseconds instead of re-importing the world.
"""

from __future__ import annotations

import os
import selectors
import socket
import struct
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.errors import DeadlineExceeded, ReproError, ServerBusy
from repro.faults.plan import FaultInjector
from repro.faults.proxy import FaultyServer
from repro.net.codec import encode_iov
from repro.net.frames import (
    Frame,
    MuxFrameDecoder,
    WireError,
    frame_header_v2,
)
from repro.net.protocol import (
    batch_item_result,
    decode_message,
    encode_error,
    encode_response_iov,
    peek_request_kind,
)
from repro.obs import registry as _obs
from repro.staging.server import StagingServer

__all__ = [
    "SERVER_OPS",
    "SERVER_QUEUE_ENV",
    "SERVER_WORKERS_ENV",
    "Dispatcher",
    "server_config",
    "run_server",
]

#: Admission-control depth: max requests admitted (queued + executing) at
#: once; beyond it the server sheds with ServerBusy. Read in the *parent*
#: and shipped via run_server(config=...) — see module docstring.
SERVER_QUEUE_ENV = "REPRO_SERVER_QUEUE"
#: Worker threads executing admitted requests.
SERVER_WORKERS_ENV = "REPRO_SERVER_WORKERS"

_DEFAULT_QUEUE_DEPTH = 64
_DEFAULT_WORKERS = 8

#: How long shutdown waits for admitted requests + queued replies.
_DRAIN_TIMEOUT = 10.0

_RECV_CHUNK = 1 << 20
_SENDMSG_MAX_VECS = 512
_V1_HEAD = struct.Struct("!I")

_SHED = _obs.counter("net.mux.shed")
_DEADLINE_DROPS = _obs.counter("net.mux.deadline_drops")
_ADMITTED = _obs.counter("net.mux.admitted")
_SERVER_INFLIGHT = _obs.gauge("net.mux.server_inflight")

# Methods clients may invoke by name. Everything else (including admin ops,
# which carry an "admin:" prefix and never collide) is rejected.
SERVER_OPS = frozenset(
    {
        "put",
        "put_many",
        "get",
        "get_many",
        "put_blob",
        "get_blob",
        "blob_keys",
        "covers",
        "covers_all",
        "query_versions",
        "evict",
        "evict_older_than_version",
        "keep_only_latest",
        "snapshot",
        "restore",
        "rebuild_index",
        "summary",
        "enable_journal",
        "disable_journal",
        "journal_mutation_count",
        "seal_delta",
    }
)
# Read-only properties served as zero-arg ops.
SERVER_PROPS = frozenset({"nbytes", "protection_nbytes"})

# Store-facade attributes the control plane may read (RemoteServer.store).
_STORE_METHODS = frozenset(
    {"fragments", "clear", "versions", "keys", "latest_version", "fragment_count"}
)
_STORE_PROPS = frozenset({"object_count", "nbytes"})


def server_config(env=None) -> dict:
    """Event-loop sizing from the environment (call in the parent!)."""
    env = os.environ if env is None else env
    raw_q = str(env.get(SERVER_QUEUE_ENV, "") or "").strip()
    raw_w = str(env.get(SERVER_WORKERS_ENV, "") or "").strip()
    return {
        "queue_depth": max(1, int(raw_q)) if raw_q else _DEFAULT_QUEUE_DEPTH,
        "workers": max(1, int(raw_w)) if raw_w else _DEFAULT_WORKERS,
    }


class Dispatcher:
    """Executes decoded requests against the (possibly fault-wrapped) server."""

    def __init__(self, server_id: int) -> None:
        self.server_id = server_id
        self.server = StagingServer(server_id)
        # Guards wrapper install/reset swaps, not data ops (the server's own
        # lock serializes those, same as in-process).
        self._swap_lock = threading.Lock()
        self.stop = threading.Event()
        # Shared-memory attach registry, created on the first shm request so
        # plain TCP servers never touch multiprocessing.shared_memory.
        self._segments = None

    def _shm_segments(self):
        if self._segments is None:
            with self._swap_lock:
                if self._segments is None:
                    import atexit

                    from repro.net.shm import ServerSegments

                    segments = ServerSegments()
                    # The server only *attaches* (never unlinks) segments;
                    # closing at exit drops the mappings so client-side
                    # unlink actually frees the memory.
                    atexit.register(segments.close)
                    self._segments = segments
        return self._segments

    def _resolve_segref(self, ref):
        return self._shm_segments().resolve(ref)

    @property
    def _inner(self) -> StagingServer:
        server = self.server
        return server.inner if isinstance(server, FaultyServer) else server

    # ---------------------------------------------------------------- admin

    def _admin(self, op: str, args: tuple):
        if op == "ping":
            return "pong"
        if op == "shutdown":
            self.stop.set()
            return None
        if op == "metrics":
            # This *process's* metrics — the shed/deadline-drop/inflight
            # counters live here, not in the client, so tests and the
            # bench harness read them over the wire.
            return _obs.snapshot()
        if op == "install_faults":
            (plans, rng) = args
            with self._swap_lock:
                injector = FaultInjector(list(plans))
                if isinstance(self.server, FaultyServer):
                    self.server.injector = injector
                    if rng is not None:
                        self.server._rng = rng
                else:
                    self.server = FaultyServer(self.server, injector, rng=rng)
            return None
        if op == "fault_status":
            server = self.server
            if not isinstance(server, FaultyServer):
                return None
            injector = server.injector
            return {
                "fired": list(injector.fired),
                "pending": injector.pending_for(self.server_id),
                "crashed": server.crashed,
                "op_count": server.op_count,
            }
        if op == "heal":
            server = self.server
            if isinstance(server, FaultyServer):
                server.heal()
            return None
        if op == "reset":
            # A replacement server: brand-new empty state, no fault wrapper.
            with self._swap_lock:
                self.server = StagingServer(self.server_id)
            return None
        if op == "store":
            (attr, sub_args) = args
            store = self._inner.store
            if attr in _STORE_PROPS:
                return getattr(store, attr)
            if attr in _STORE_METHODS:
                return getattr(store, attr)(*sub_args)
            raise ValueError(f"store attribute {attr!r} not exposed over the wire")
        raise ValueError(f"unknown admin op {op!r}")

    # ------------------------------------------------------------- dispatch

    def execute(self, op: str, args: tuple):
        """Run one op; staging errors propagate to the caller for encoding."""
        if op.startswith("admin:"):
            return self._admin(op[len("admin:") :], args)
        if op in SERVER_PROPS:
            return getattr(self.server, op)
        if op not in SERVER_OPS:
            raise ValueError(f"unknown op {op!r}")
        result = getattr(self.server, op)(*args)
        if op in ("put", "put_many"):
            # Ack without echoing the stored objects back over the wire —
            # no group-level caller consumes put returns, and the echo would
            # double every put's byte cost.
            return None
        return result

    def _execute_granted(self, op: str, args: tuple, sink):
        """Run one op, gathering get/get_many results directly into the
        client's granted response segment when the geometry fits.

        Reservation is all-or-nothing per op: either every destination
        array lands in the slab (the store assembles fragments straight
        into shared memory — the server-side copy disappears) or the op
        runs unchanged and its reply takes the ordinary encode path.
        """
        if sink is not None and op in ("get", "get_many"):
            mark = sink.mark()
            try:
                if op == "get":
                    (desc,) = args
                    out = sink.reserve(desc.bbox.shape, desc.dtype)
                    if out is not None:
                        return self.server.get(desc, out=out)
                else:
                    (descs,) = args
                    outs = []
                    for desc in descs:
                        dest = sink.reserve(desc.bbox.shape, desc.dtype)
                        if dest is None:
                            break
                        outs.append(dest)
                    if len(outs) == len(descs):
                        return self.server.get_many(descs, outs=outs)
                sink.rollback(mark)
            except (AttributeError, TypeError, ValueError):
                # Malformed descriptors: let the plain path raise the
                # canonical error for them.
                sink.rollback(mark)
        return self.execute(op, args)

    def handle_frame(self, payload, deadline: float = 0.0) -> list:
        """Dispatch one decoded frame; returns the reply as iovec parts.

        ``deadline`` is the request's absolute wall-clock deadline from its
        v2 header (0.0 = none): if it has already passed, the request is
        dropped *without executing* and the reply is a typed
        ``DeadlineExceeded`` — checked here (when a worker dequeues the
        request) in addition to at admission, so time spent waiting behind
        the queue counts against the caller's budget too.

        Requests decode with ``copy_arrays=False``: inline arrays are views
        over this frame's private buffer and SegRefs are zero-copy views
        into client-owned segments — safe either way because every op that
        keeps payload data (``store.put``/``put_blob``) copies before the
        reply is sent, and ops that retain views (``restore``) are never
        sent through segments (see ``repro.net.shm.SHM_REQUEST_OPS``).
        """
        if deadline and time.time() > deadline:
            _DEADLINE_DROPS.inc()
            return [encode_error(DeadlineExceeded(self.server_id), self.server_id)]
        try:
            msg = decode_message(
                payload, array_source=self._resolve_segref, copy_arrays=False
            )
        except WireError as exc:
            # The frame itself arrived intact but its payload can't be
            # honoured (stale/unknown segment ref, malformed message): reply
            # with a typed error so the client sees a StagingError instead
            # of a torn connection.
            return [encode_error(_as_staging_error(exc), self.server_id)]
        tag = msg[0]
        if tag == "batch" or tag == "sbatch":
            results = []
            for item in msg[1]:
                req = decode_message_item(item)
                try:
                    value = self.execute(req[1], req[2])
                except ReproError as exc:
                    results.append(batch_item_result(exc=exc, server_id=self.server_id))
                except Exception as exc:  # programming error: report, keep serving
                    results.append(
                        batch_item_result(
                            exc=_as_staging_error(exc), server_id=self.server_id
                        )
                    )
                else:
                    results.append(batch_item_result(value))
            return encode_iov(("batch_ok", results))
        sink = None
        if tag == "sreq" and msg[3] is not None:
            sink = self._shm_segments().response_sink(msg[3])
        try:
            value = self._execute_granted(msg[1], msg[2], sink)
        except ReproError as exc:
            return [encode_error(exc, self.server_id)]
        except Exception as exc:
            return [encode_error(_as_staging_error(exc), self.server_id)]
        return encode_response_iov(value, array_sink=sink)


def decode_message_item(item) -> tuple:
    """Validate one inner request of a batch (already-decoded tuple)."""
    if (
        not isinstance(item, tuple)
        or len(item) != 3
        or item[0] != "req"
        or not isinstance(item[1], str)
        or not isinstance(item[2], tuple)
    ):
        raise ValueError("malformed batch item")
    return item


def _as_staging_error(exc: Exception):
    from repro.errors import StagingError

    return StagingError(f"{type(exc).__name__}: {exc}")


class _Conn:
    """Per-connection loop state: decoder, write queue, v1 reply sequencing."""

    __slots__ = (
        "sock",
        "fd",
        "decoder",
        "out",
        "events",
        "inflight",
        "eof",
        "closed",
        "v1_reads",
        "v1_next_send",
        "v1_parked",
    )

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.fd = sock.fileno()
        self.decoder = MuxFrameDecoder()
        self.out: deque = deque()
        self.events = 0  # currently registered selector mask
        self.inflight = 0  # requests admitted from this conn, not yet replied
        self.eof = False
        self.closed = False
        # v1 frames carry no id; replies must leave in arrival order.
        self.v1_reads = 0
        self.v1_next_send = 0
        self.v1_parked: dict[int, list] = {}


class EventLoopServer:
    """Single-threaded selector loop + bounded worker pool (see module doc)."""

    def __init__(
        self, dispatcher: Dispatcher, listener: socket.socket, config: dict
    ) -> None:
        self.dispatcher = dispatcher
        self.listener = listener
        self.queue_depth = int(config["queue_depth"])
        self.sel = selectors.DefaultSelector()
        self.pool = ThreadPoolExecutor(
            max_workers=int(config["workers"]),
            thread_name_prefix=f"staging-worker-{dispatcher.server_id}",
        )
        self.conns: dict[int, _Conn] = {}
        self.inflight = 0  # admitted, not yet completed (loop thread only)
        self.draining = False
        self._drain_deadline = 0.0
        # Worker → loop completion channel: (conn, frame, v1_seq, parts).
        self._done: deque = deque()
        self._done_lock = threading.Lock()
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        os.set_blocking(self._wake_w, False)
        _obs.gauge("net.mux.queue_depth").set(self.queue_depth)

    # ------------------------------------------------------------------ run

    def run(self) -> None:
        self.listener.setblocking(False)
        self.sel.register(self.listener, selectors.EVENT_READ, self._on_accept)
        self.sel.register(self._wake_r, selectors.EVENT_READ, self._on_wakeup)
        try:
            while True:
                timeout = 0.05 if self.draining else None
                for key, mask in self.sel.select(timeout):
                    key.data(key, mask)
                self._reap_completions()
                if self.draining and self._drained():
                    break
        finally:
            self._teardown()

    def _drained(self) -> bool:
        if self.inflight == 0 and not any(c.out for c in self.conns.values()):
            return True
        return time.time() >= self._drain_deadline

    def _teardown(self) -> None:
        self.pool.shutdown(wait=False)
        for conn in list(self.conns.values()):
            self._close_conn(conn)
        try:
            self.sel.unregister(self._wake_r)
        except KeyError:
            pass
        os.close(self._wake_r)
        os.close(self._wake_w)
        self.sel.close()

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"\x00")
        except (BlockingIOError, OSError):
            pass  # pipe full ⇒ a wakeup is already pending

    def _on_wakeup(self, key, mask) -> None:
        try:
            while os.read(self._wake_r, 4096):
                pass
        except BlockingIOError:
            pass

    # --------------------------------------------------------------- accept

    def _on_accept(self, key, mask) -> None:
        while True:
            try:
                sock, _addr = self.listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.setblocking(False)
            conn = _Conn(sock)
            self.conns[conn.fd] = conn
            conn.events = selectors.EVENT_READ
            self.sel.register(sock, conn.events, self._make_io_cb(conn))

    def _make_io_cb(self, conn: _Conn):
        def _cb(key, mask):
            if mask & selectors.EVENT_WRITE:
                self._flush(conn)
            if mask & selectors.EVENT_READ and not conn.closed:
                self._on_read(conn)

        return _cb

    # ----------------------------------------------------------------- read

    def _on_read(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(conn)
            return
        if not data:
            # Peer finished sending. Keep the conn up until every admitted
            # request has replied and the write queue is flushed.
            conn.eof = True
            if conn.decoder.pending_bytes:
                self._close_conn(conn)  # torn mid-frame: nothing to salvage
            else:
                self._update_events(conn)
                self._maybe_retire(conn)
            return
        try:
            conn.decoder.feed(data)
        except WireError:
            self._close_conn(conn)
            return
        for frame in conn.decoder.frames():
            self._handle_frame(conn, frame)
            if conn.closed:
                return

    # ------------------------------------------------------------ admission

    def _handle_frame(self, conn: _Conn, frame: Frame) -> None:
        v1_seq = None
        if frame.request_id is None:
            v1_seq = conn.v1_reads
            conn.v1_reads += 1
        tag, op = peek_request_kind(frame.payload)
        if op is not None and op.startswith("admin:"):
            # Control plane: inline on the loop thread, no admission check,
            # no deadline drop — shutdown/heal must work under overload.
            parts = self.dispatcher.handle_frame(frame.payload)
            self._complete(conn, frame, v1_seq, parts)
            if self.dispatcher.stop.is_set() and not self.draining:
                self._begin_drain()
            return
        server_id = self.dispatcher.server_id
        if frame.deadline and time.time() > frame.deadline:
            _DEADLINE_DROPS.inc()
            err = [encode_error(DeadlineExceeded(server_id), server_id)]
            self._complete(conn, frame, v1_seq, err)
            return
        if self.inflight >= self.queue_depth or self.draining:
            _SHED.inc()
            err = [encode_error(ServerBusy(server_id), server_id)]
            self._complete(conn, frame, v1_seq, err)
            return
        _ADMITTED.inc()
        self.inflight += 1
        conn.inflight += 1
        _SERVER_INFLIGHT.set(self.inflight)
        self.pool.submit(self._work, conn, frame, v1_seq)

    def _work(self, conn: _Conn, frame: Frame, v1_seq) -> None:
        """Worker-thread body: execute and hand the reply back to the loop."""
        try:
            parts = self.dispatcher.handle_frame(frame.payload, deadline=frame.deadline)
        except Exception as exc:  # handle_frame encodes; this is a belt
            parts = [
                encode_error(_as_staging_error(exc), self.dispatcher.server_id)
            ]
        with self._done_lock:
            self._done.append((conn, frame, v1_seq, parts))
        self._wake()

    def _reap_completions(self) -> None:
        while True:
            with self._done_lock:
                if not self._done:
                    return
                conn, frame, v1_seq, parts = self._done.popleft()
            self.inflight -= 1
            conn.inflight -= 1
            _SERVER_INFLIGHT.set(self.inflight)
            self._complete(conn, frame, v1_seq, parts)

    # ---------------------------------------------------------------- write

    def _complete(self, conn: _Conn, frame: Frame, v1_seq, parts: list) -> None:
        if conn.closed:
            return  # client went away; drop the reply
        if frame.request_id is not None:
            self._enqueue_reply(conn, frame_header_v2(_total(parts), frame.request_id), parts)
        else:
            # v1: replies leave in arrival order; park out-of-order ones.
            conn.v1_parked[v1_seq] = parts
            while conn.v1_next_send in conn.v1_parked:
                ready = conn.v1_parked.pop(conn.v1_next_send)
                conn.v1_next_send += 1
                self._enqueue_reply(conn, _V1_HEAD.pack(_total(ready)), ready)
        self._flush(conn)
        self._maybe_retire(conn)

    def _enqueue_reply(self, conn: _Conn, head: bytes, parts: list) -> None:
        conn.out.append(memoryview(head))
        for part in parts:
            if len(part):
                conn.out.append(memoryview(part).cast("B"))

    def _flush(self, conn: _Conn) -> None:
        if conn.closed:
            return
        q = conn.out
        while q:
            vecs = []
            for mv in q:
                vecs.append(mv)
                if len(vecs) >= _SENDMSG_MAX_VECS:
                    break
            try:
                sent = conn.sock.sendmsg(vecs)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close_conn(conn)
                return
            while sent:
                head = q[0]
                if sent >= len(head):
                    sent -= len(head)
                    q.popleft()
                else:
                    q[0] = head[sent:]
                    sent = 0
        self._update_events(conn)

    def _update_events(self, conn: _Conn) -> None:
        if conn.closed:
            return
        desired = 0
        if conn.out:
            desired |= selectors.EVENT_WRITE
        if not conn.eof:
            desired |= selectors.EVENT_READ
        if desired == conn.events:
            return
        # A half-closed conn with in-flight work wants neither event: it
        # leaves the selector entirely (an EOF socket polls readable forever
        # — keeping it registered would spin the loop) and re-registers when
        # a completion queues its reply.
        if desired == 0:
            self.sel.unregister(conn.sock)
        elif conn.events == 0:
            self.sel.register(conn.sock, desired, self._make_io_cb(conn))
        else:
            self.sel.modify(conn.sock, desired, self._make_io_cb(conn))
        conn.events = desired

    def _maybe_retire(self, conn: _Conn) -> None:
        if conn.eof and not conn.closed and conn.inflight == 0 and not conn.out:
            self._close_conn(conn)

    def _close_conn(self, conn: _Conn) -> None:
        if conn.closed:
            return
        conn.closed = True
        conn.out.clear()
        self.conns.pop(conn.fd, None)
        try:
            self.sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------- shutdown

    def _begin_drain(self) -> None:
        """Stop accepting, let admitted work finish, flush, then exit."""
        self.draining = True
        self._drain_deadline = time.time() + _DRAIN_TIMEOUT
        try:
            self.sel.unregister(self.listener)
        except (KeyError, ValueError):
            pass
        try:
            self.listener.close()
        except OSError:
            pass


def run_server(server_id: int, port_conn, config: dict | None = None) -> None:
    """Child-process entry: bind, report the port, serve until shutdown.

    ``port_conn`` is the parent's end of a ``multiprocessing.Pipe``; the
    bound port is the only thing ever written to it. ``config`` carries the
    event-loop sizing the parent resolved from its own environment
    (:func:`server_config`); falling back to reading it here only works for
    direct callers, not forkserver children (whose environ is the
    forkserver's snapshot).
    """
    cfg = dict(server_config())
    if config:
        cfg.update(config)
    dispatcher = Dispatcher(server_id)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(128)
    port_conn.send(listener.getsockname()[1])
    port_conn.close()
    EventLoopServer(dispatcher, listener, cfg).run()


def _total(parts: list) -> int:
    return sum(len(p) for p in parts)
