"""The staging server process: TCP accept loop + RPC dispatcher.

One process per staging server (DataSpaces-style). The process hosts a plain
:class:`~repro.staging.server.StagingServer` and serves the same method
surface clients use in-process, so client/resilience/runtime code is
byte-identical across transports. Faults are injected *here* — the parent
ships :class:`~repro.faults.plan.FaultPlan` lists over an admin op and the
process wraps its server in the same
:class:`~repro.faults.proxy.FaultyServer` the inproc path uses — so crash
refusals, flaky errors, slow service, and corrupt reads all cross a real
socket before the client sees them.

Concurrency model: one thread per client connection (the parent's shard-I/O
pool opens one connection per worker thread); the server's own RLock
serializes state access exactly as in-process. Control-plane admin ops
(``admin:*``) bypass the fault wrapper, mirroring ``FaultyServer``'s
control-plane passthrough.

This module is also the forkserver preload target: importing it warms
numpy + the staging stack once, so each server process forks in
milliseconds instead of re-importing the world.
"""

from __future__ import annotations

import socket
import threading

from repro.errors import ReproError
from repro.faults.plan import FaultInjector
from repro.faults.proxy import FaultyServer
from repro.net.codec import encode_iov
from repro.net.frames import WireError, recv_frame, send_frame_iov
from repro.net.protocol import (
    batch_item_result,
    decode_message,
    encode_error,
    encode_response_iov,
)
from repro.staging.server import StagingServer

__all__ = ["SERVER_OPS", "Dispatcher", "run_server"]

# Methods clients may invoke by name. Everything else (including admin ops,
# which carry an "admin:" prefix and never collide) is rejected.
SERVER_OPS = frozenset(
    {
        "put",
        "put_many",
        "get",
        "get_many",
        "put_blob",
        "get_blob",
        "blob_keys",
        "covers",
        "covers_all",
        "query_versions",
        "evict",
        "evict_older_than_version",
        "keep_only_latest",
        "snapshot",
        "restore",
        "rebuild_index",
        "summary",
        "enable_journal",
        "disable_journal",
        "journal_mutation_count",
        "seal_delta",
    }
)
# Read-only properties served as zero-arg ops.
SERVER_PROPS = frozenset({"nbytes", "protection_nbytes"})

# Store-facade attributes the control plane may read (RemoteServer.store).
_STORE_METHODS = frozenset(
    {"fragments", "clear", "versions", "keys", "latest_version", "fragment_count"}
)
_STORE_PROPS = frozenset({"object_count", "nbytes"})


class Dispatcher:
    """Executes decoded requests against the (possibly fault-wrapped) server."""

    def __init__(self, server_id: int) -> None:
        self.server_id = server_id
        self.server = StagingServer(server_id)
        # Guards wrapper install/reset swaps, not data ops (the server's own
        # lock serializes those, same as in-process).
        self._swap_lock = threading.Lock()
        self.stop = threading.Event()
        # Shared-memory attach registry, created on the first shm request so
        # plain TCP servers never touch multiprocessing.shared_memory.
        self._segments = None

    def _shm_segments(self):
        if self._segments is None:
            with self._swap_lock:
                if self._segments is None:
                    import atexit

                    from repro.net.shm import ServerSegments

                    segments = ServerSegments()
                    # The server only *attaches* (never unlinks) segments;
                    # closing at exit drops the mappings so client-side
                    # unlink actually frees the memory.
                    atexit.register(segments.close)
                    self._segments = segments
        return self._segments

    def _resolve_segref(self, ref):
        return self._shm_segments().resolve(ref)

    @property
    def _inner(self) -> StagingServer:
        server = self.server
        return server.inner if isinstance(server, FaultyServer) else server

    # ---------------------------------------------------------------- admin

    def _admin(self, op: str, args: tuple):
        if op == "ping":
            return "pong"
        if op == "shutdown":
            self.stop.set()
            return None
        if op == "install_faults":
            (plans, rng) = args
            with self._swap_lock:
                injector = FaultInjector(list(plans))
                if isinstance(self.server, FaultyServer):
                    self.server.injector = injector
                    if rng is not None:
                        self.server._rng = rng
                else:
                    self.server = FaultyServer(self.server, injector, rng=rng)
            return None
        if op == "fault_status":
            server = self.server
            if not isinstance(server, FaultyServer):
                return None
            injector = server.injector
            return {
                "fired": list(injector.fired),
                "pending": injector.pending_for(self.server_id),
                "crashed": server.crashed,
                "op_count": server.op_count,
            }
        if op == "heal":
            server = self.server
            if isinstance(server, FaultyServer):
                server.heal()
            return None
        if op == "reset":
            # A replacement server: brand-new empty state, no fault wrapper.
            with self._swap_lock:
                self.server = StagingServer(self.server_id)
            return None
        if op == "store":
            (attr, sub_args) = args
            store = self._inner.store
            if attr in _STORE_PROPS:
                return getattr(store, attr)
            if attr in _STORE_METHODS:
                return getattr(store, attr)(*sub_args)
            raise ValueError(f"store attribute {attr!r} not exposed over the wire")
        raise ValueError(f"unknown admin op {op!r}")

    # ------------------------------------------------------------- dispatch

    def execute(self, op: str, args: tuple):
        """Run one op; staging errors propagate to the caller for encoding."""
        if op.startswith("admin:"):
            return self._admin(op[len("admin:") :], args)
        if op in SERVER_PROPS:
            return getattr(self.server, op)
        if op not in SERVER_OPS:
            raise ValueError(f"unknown op {op!r}")
        result = getattr(self.server, op)(*args)
        if op in ("put", "put_many"):
            # Ack without echoing the stored objects back over the wire —
            # no group-level caller consumes put returns, and the echo would
            # double every put's byte cost.
            return None
        return result

    def _execute_granted(self, op: str, args: tuple, sink):
        """Run one op, gathering get/get_many results directly into the
        client's granted response segment when the geometry fits.

        Reservation is all-or-nothing per op: either every destination
        array lands in the slab (the store assembles fragments straight
        into shared memory — the server-side copy disappears) or the op
        runs unchanged and its reply takes the ordinary encode path.
        """
        if sink is not None and op in ("get", "get_many"):
            mark = sink.mark()
            try:
                if op == "get":
                    (desc,) = args
                    out = sink.reserve(desc.bbox.shape, desc.dtype)
                    if out is not None:
                        return self.server.get(desc, out=out)
                else:
                    (descs,) = args
                    outs = []
                    for desc in descs:
                        dest = sink.reserve(desc.bbox.shape, desc.dtype)
                        if dest is None:
                            break
                        outs.append(dest)
                    if len(outs) == len(descs):
                        return self.server.get_many(descs, outs=outs)
                sink.rollback(mark)
            except (AttributeError, TypeError, ValueError):
                # Malformed descriptors: let the plain path raise the
                # canonical error for them.
                sink.rollback(mark)
        return self.execute(op, args)

    def handle_frame(self, payload) -> list:
        """Dispatch one decoded frame; returns the reply as iovec parts.

        Requests decode with ``copy_arrays=False``: inline arrays are views
        over this frame's private buffer and SegRefs are zero-copy views
        into client-owned segments — safe either way because every op that
        keeps payload data (``store.put``/``put_blob``) copies before the
        reply is sent, and ops that retain views (``restore``) are never
        sent through segments (see ``repro.net.shm.SHM_REQUEST_OPS``).
        """
        try:
            msg = decode_message(
                payload, array_source=self._resolve_segref, copy_arrays=False
            )
        except WireError as exc:
            # The frame itself arrived intact but its payload can't be
            # honoured (stale/unknown segment ref, malformed message): reply
            # with a typed error so the client sees a StagingError instead
            # of a torn connection.
            return [encode_error(_as_staging_error(exc), self.server_id)]
        tag = msg[0]
        if tag == "batch" or tag == "sbatch":
            results = []
            for item in msg[1]:
                req = decode_message_item(item)
                try:
                    value = self.execute(req[1], req[2])
                except ReproError as exc:
                    results.append(batch_item_result(exc=exc, server_id=self.server_id))
                except Exception as exc:  # programming error: report, keep serving
                    results.append(
                        batch_item_result(
                            exc=_as_staging_error(exc), server_id=self.server_id
                        )
                    )
                else:
                    results.append(batch_item_result(value))
            return encode_iov(("batch_ok", results))
        sink = None
        if tag == "sreq" and msg[3] is not None:
            sink = self._shm_segments().response_sink(msg[3])
        try:
            value = self._execute_granted(msg[1], msg[2], sink)
        except ReproError as exc:
            return [encode_error(exc, self.server_id)]
        except Exception as exc:
            return [encode_error(_as_staging_error(exc), self.server_id)]
        return encode_response_iov(value, array_sink=sink)


def decode_message_item(item) -> tuple:
    """Validate one inner request of a batch (already-decoded tuple)."""
    if (
        not isinstance(item, tuple)
        or len(item) != 3
        or item[0] != "req"
        or not isinstance(item[1], str)
        or not isinstance(item[2], tuple)
    ):
        raise ValueError("malformed batch item")
    return item


def _as_staging_error(exc: Exception):
    from repro.errors import StagingError

    return StagingError(f"{type(exc).__name__}: {exc}")


def _serve_connection(dispatcher: Dispatcher, conn: socket.socket) -> None:
    try:
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # Accepted sockets may inherit the listener's accept-poll
            # timeout; connection threads block indefinitely instead.
            conn.settimeout(None)
            while not dispatcher.stop.is_set():
                try:
                    payload = recv_frame(conn)
                except WireError:
                    return  # client went away (clean or torn) — just drop
                send_frame_iov(conn, dispatcher.handle_frame(payload))
    except OSError:
        return


def run_server(server_id: int, port_conn) -> None:
    """Child-process entry: bind, report the port, serve until shutdown.

    ``port_conn`` is the parent's end of a ``multiprocessing.Pipe``; the
    bound port is the only thing ever written to it.
    """
    dispatcher = Dispatcher(server_id)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    with listener:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(64)
        # Wake the accept loop periodically so admin:shutdown is honoured
        # even with no new connections arriving.
        listener.settimeout(0.2)
        port_conn.send(listener.getsockname()[1])
        port_conn.close()
        while not dispatcher.stop.is_set():
            try:
                conn, _addr = listener.accept()
            except TimeoutError:
                continue
            except OSError:
                break
            threading.Thread(
                target=_serve_connection,
                args=(dispatcher, conn),
                daemon=True,
                name=f"staging-conn-{server_id}",
            ).start()
