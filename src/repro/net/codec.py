"""Binary object codec for the staging wire protocol.

A self-describing, struct-packed encoding of exactly the value shapes the
staging RPC surface moves: python scalars and containers, numpy arrays
(dtype + shape header, raw C-order bytes — the payload is never transformed,
only length-prefixed), and the three staging identity types
(:class:`~repro.geometry.bbox.BBox`,
:class:`~repro.descriptors.odsc.ObjectDescriptor`,
:class:`~repro.staging.store.StoredObject`). Anything outside that set —
fault plans, RNG generators, whole server snapshots — rides as an opaque
pickle blob: those are control-plane payloads where generality beats the
extra bytes, while the hot data path stays pickle-free.

The format is position-based with one tag byte per value; all fixed-width
fields are big-endian (network order). There is no back-compat machinery:
client and server always come from the same build (the transport spawns its
own server processes), so a version byte at the frame layer
(:mod:`repro.net.frames`) is enough.

Scatter-gather: :func:`encode_iov` returns the wire bytes as an *iovec* — a
list of buffers where every large contiguous ndarray payload is a
``memoryview`` of the caller's array, not a copy. The TCP path hands the
iovec to ``socket.sendmsg`` and the shm path writes the views straight into
shared segments, so neither transport ever materialises one concatenated
payload. :func:`encode` remains the joined-``bytes`` convenience form.

Out-of-band payloads: an ``array_sink`` callback may claim any ndarray
during encoding and return a :class:`SegRef` — a reference to payload bytes
living in a named shared-memory segment — which is encoded in place of the
raw bytes. Decoding a SegRef requires an ``array_source`` resolver; frames
carrying SegRefs are only exchanged between peers that share segments
(:mod:`repro.net.shm`).

Zero-copy decode: ``decode(..., copy_arrays=False)`` returns ndarray views
over the receive buffer instead of owning copies. Safe wherever the
consumer either copies promptly (``ObjectStore.put`` always copies views)
or merely reads (client-side gather assembles into the caller's buffer);
the views keep the frame buffer alive, so lifetime is never unsafe — only
ownership differs.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass

import numpy as np

from repro.descriptors.odsc import ObjectDescriptor
from repro.geometry.bbox import BBox
from repro.net.frames import ProtocolError
from repro.staging.store import StoredObject

__all__ = ["SegRef", "encode", "encode_iov", "decode"]

# One tag byte per encoded value.
_NONE = 0x00
_TRUE = 0x01
_FALSE = 0x02
_INT = 0x03  # !q
_FLOAT = 0x04  # !d
_STR = 0x05  # !I utf-8 length + bytes
_BYTES = 0x06  # !I length + raw
_LIST = 0x07  # !I count + items
_TUPLE = 0x08  # !I count + items
_DICT = 0x09  # !I count + (key, value) pairs
_SET = 0x0A  # !I count + items
_NDARRAY = 0x0B  # !B dtype-str len + ascii, !B ndim, !q * ndim, !Q nbytes + raw
_BBOX = 0x0C  # !B ndim, !q lo * ndim, !q hi * ndim
_DESC = 0x0D  # name(str) version(!q) bbox dtype(str)
_STORED = 0x0E  # desc + ndarray
_PICKLE = 0x0F  # !I length + pickle bytes
_SEGREF = 0x10  # segment name(str) + !Q gen + !Q offset + ndarray dtype/shape

_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1

# Arrays at least this large become their own iovec entry (a memoryview of
# the caller's buffer); smaller ones are copied into the control stream,
# where one memcpy beats an extra sendmsg vector.
IOV_MIN_BYTES = 4096

_pack_u32 = struct.Struct("!I").pack
_pack_i64 = struct.Struct("!q").pack
_pack_f64 = struct.Struct("!d").pack
_pack_u64 = struct.Struct("!Q").pack
_u32 = struct.Struct("!I")
_i64 = struct.Struct("!q")
_f64 = struct.Struct("!d")
_u64 = struct.Struct("!Q")


@dataclass(frozen=True)
class SegRef:
    """Reference to an ndarray payload living out-of-band in a shared
    segment: ``nbytes`` of raw C-order bytes at ``offset`` within the
    segment's payload region. ``generation`` must match the segment
    header's stamp — a recycled or stale segment fails resolution."""

    segment: str
    generation: int
    offset: int
    nbytes: int
    dtype: str
    shape: tuple

    def describe(self) -> str:
        return f"{self.segment}@{self.offset}+{self.nbytes} gen={self.generation}"


class _IovWriter:
    """Accumulates control bytes; large payload views become their own
    iovec entries so the control stream never copies them."""

    __slots__ = ("buf", "parts")

    def __init__(self) -> None:
        self.buf = bytearray()
        self.parts: list = []

    def emit_view(self, view) -> None:
        if self.buf:
            self.parts.append(self.buf)
            self.buf = bytearray()
        self.parts.append(view)

    def finish(self) -> list:
        if self.buf or not self.parts:
            self.parts.append(self.buf)
            self.buf = bytearray()
        return self.parts


def encode(obj, *, array_sink=None) -> bytes:
    """Encode one value tree into one contiguous wire-bytes buffer."""
    return b"".join(encode_iov(obj, array_sink=array_sink))


def encode_iov(obj, *, array_sink=None) -> list:
    """Encode one value tree as an iovec (list of bytes-like buffers).

    Large contiguous ndarray payloads appear as memoryviews of the caller's
    arrays (zero copy — ``b"".join()`` of the result equals ``encode()``).
    ``array_sink``, when given, may claim any eligible ndarray and return a
    :class:`SegRef` placed in the control stream instead of the payload.
    """
    w = _IovWriter()
    _encode_into(w, obj, array_sink)
    return w.finish()


def _encode_segref(buf: bytearray, ref: SegRef) -> None:
    name = ref.segment.encode("ascii")
    dtype_str = ref.dtype.encode("ascii")
    buf.append(_SEGREF)
    buf.append(len(name))
    buf += name
    buf += _pack_u64(ref.generation)
    buf += _pack_u64(ref.offset)
    buf += _pack_u64(ref.nbytes)
    buf.append(len(dtype_str))
    buf += dtype_str
    buf.append(len(ref.shape))
    for dim in ref.shape:
        buf += _pack_i64(dim)


def _encode_array(w: _IovWriter, arr: np.ndarray, array_sink) -> None:
    if arr.dtype.hasobject:
        # Object arrays carry arbitrary python values; only pickle is safe.
        _encode_pickle(w.buf, arr)
        return
    shape = arr.shape  # before ascontiguousarray: it promotes 0-d to (1,)
    dtype_str = arr.dtype.str.encode("ascii")
    if len(dtype_str) > 255 or len(shape) > 255:
        _encode_pickle(w.buf, np.ascontiguousarray(arr))
        return
    if array_sink is not None:
        ref = array_sink(arr)
        if ref is not None:
            _encode_segref(w.buf, ref)
            return
    # Contiguous fast path: the payload rides as a memoryview of the
    # caller's buffer — no copy is materialised here (regression-tested via
    # np.shares_memory). Only non-contiguous/converted inputs pay a copy.
    if not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr)
    buf = w.buf
    buf.append(_NDARRAY)
    buf.append(len(dtype_str))
    buf += dtype_str
    buf.append(len(shape))
    for dim in shape:
        buf += _pack_i64(dim)
    raw = arr.reshape(-1).view(np.uint8)
    buf += _pack_u64(raw.nbytes)
    if raw.nbytes >= IOV_MIN_BYTES:
        w.emit_view(memoryview(raw))
    else:
        buf += memoryview(raw)


def _encode_pickle(buf: bytearray, obj) -> None:
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    buf.append(_PICKLE)
    buf += _pack_u32(len(blob))
    buf += blob


def _encode_into(w: _IovWriter, obj, sink) -> None:  # noqa: SIM114 — tag dispatch
    # Exact type checks (not isinstance) for the scalar/container fast
    # paths: subclasses (IntEnum, defaultdict, ...) may carry behaviour the
    # other side can't rebuild from the base type, so they take the pickle
    # fallback below.
    buf = w.buf
    t = type(obj)
    if obj is None:
        buf.append(_NONE)
    elif t is bool:
        buf.append(_TRUE if obj else _FALSE)
    elif t is int:
        if _I64_MIN <= obj <= _I64_MAX:
            buf.append(_INT)
            buf += _pack_i64(obj)
        else:
            _encode_pickle(buf, obj)
    elif t is float:
        buf.append(_FLOAT)
        buf += _pack_f64(obj)
    elif t is str:
        raw = obj.encode("utf-8")
        buf.append(_STR)
        buf += _pack_u32(len(raw))
        buf += raw
    elif t is bytes:
        buf.append(_BYTES)
        buf += _pack_u32(len(obj))
        buf += obj
    elif t is list or t is tuple:
        buf.append(_LIST if t is list else _TUPLE)
        buf += _pack_u32(len(obj))
        for item in obj:
            _encode_into(w, item, sink)
    elif t is dict:
        buf.append(_DICT)
        buf += _pack_u32(len(obj))
        for key, value in obj.items():
            _encode_into(w, key, sink)
            _encode_into(w, value, sink)
    elif t is set or t is frozenset:
        buf.append(_SET)
        buf += _pack_u32(len(obj))
        for item in obj:
            _encode_into(w, item, sink)
    elif t is np.ndarray:
        _encode_array(w, obj, sink)
    elif t is SegRef:
        _encode_segref(buf, obj)
    elif t is BBox:
        buf.append(_BBOX)
        buf.append(obj.ndim)
        for x in obj.lo:
            buf += _pack_i64(x)
        for x in obj.hi:
            buf += _pack_i64(x)
    elif t is ObjectDescriptor:
        buf.append(_DESC)
        _encode_into(w, obj.name, sink)
        buf += _pack_i64(obj.version)
        _encode_into(w, obj.bbox, sink)
        _encode_into(w, obj.dtype, sink)
    elif t is StoredObject:
        buf.append(_STORED)
        _encode_into(w, obj.desc, sink)
        _encode_array(w, obj.data, sink)
    elif isinstance(obj, np.generic):
        # Numpy scalars (np.int64 sizes, np.float64 metrics) downcast to
        # their python value — the receiver never needs the numpy wrapper.
        _encode_into(w, obj.item(), sink)
    elif isinstance(obj, np.ndarray):
        # ndarray *subclasses* (e.g. the shm transport's leased views)
        # encode as their base-class data; pickling them could drag
        # transport-internal state (segment leases) onto the wire.
        _encode_array(w, obj.view(np.ndarray), sink)
    else:
        _encode_pickle(buf, obj)


class _Reader:
    """Offset-tracked reader over one frame's bytes."""

    __slots__ = ("view", "off", "source", "copy")

    def __init__(self, data, source, copy: bool) -> None:
        self.view = memoryview(data)
        self.off = 0
        self.source = source
        self.copy = copy

    def take(self, n: int) -> memoryview:
        end = self.off + n
        if end > len(self.view):
            raise ProtocolError(
                f"truncated value: need {n} bytes at offset {self.off}, "
                f"frame holds {len(self.view)}"
            )
        chunk = self.view[self.off : end]
        self.off = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return _u32.unpack(self.take(4))[0]

    def i64(self) -> int:
        return _i64.unpack(self.take(8))[0]

    def u64(self) -> int:
        return _u64.unpack(self.take(8))[0]


def decode(data, *, array_source=None, copy_arrays: bool = True) -> object:
    """Decode one value tree from wire bytes; rejects trailing garbage.

    ``copy_arrays=False`` returns ndarrays as views over ``data`` (which
    stays alive via the views) instead of owning copies — callers must
    either copy before retaining or treat the result as read-only scratch.
    ``array_source`` resolves :class:`SegRef` tags to out-of-band arrays; a
    frame carrying SegRefs without a source is a protocol error.
    """
    reader = _Reader(data, array_source, copy_arrays)
    value = _decode_value(reader)
    if reader.off != len(reader.view):
        raise ProtocolError(
            f"{len(reader.view) - reader.off} trailing byte(s) after value"
        )
    return value


def _decode_value(r: _Reader):
    tag = r.u8()
    if tag == _NONE:
        return None
    if tag == _TRUE:
        return True
    if tag == _FALSE:
        return False
    if tag == _INT:
        return r.i64()
    if tag == _FLOAT:
        return _f64.unpack(r.take(8))[0]
    if tag == _STR:
        return str(r.take(r.u32()), "utf-8")
    if tag == _BYTES:
        return bytes(r.take(r.u32()))
    if tag == _LIST:
        return [_decode_value(r) for _ in range(r.u32())]
    if tag == _TUPLE:
        return tuple(_decode_value(r) for _ in range(r.u32()))
    if tag == _DICT:
        return {_decode_value(r): _decode_value(r) for _ in range(r.u32())}
    if tag == _SET:
        return {_decode_value(r) for _ in range(r.u32())}
    if tag == _NDARRAY:
        dtype = np.dtype(str(r.take(r.u8()), "ascii"))
        shape = tuple(r.i64() for _ in range(r.u8()))
        nbytes = r.u64()
        raw = r.take(nbytes)
        if dtype.itemsize == 0:
            # Itemsize-0 dtypes (geometry-only "V0" fragments) carry no
            # payload bytes; the shape header alone rebuilds them.
            return np.zeros(shape, dtype=dtype)
        arr = np.frombuffer(raw, dtype=np.uint8).view(dtype).reshape(shape)
        # Copy-out gives the caller an owned, writable array (stores keep
        # fragments long after the frame is gone); the zero-copy form leaves
        # the view over the frame buffer for consumers that copy themselves.
        return arr.copy() if r.copy else arr
    if tag == _SEGREF:
        name = str(r.take(r.u8()), "ascii")
        generation = r.u64()
        offset = r.u64()
        nbytes = r.u64()
        dtype = str(r.take(r.u8()), "ascii")
        shape = tuple(r.i64() for _ in range(r.u8()))
        ref = SegRef(name, generation, offset, nbytes, dtype, shape)
        if r.source is None:
            raise ProtocolError(f"segment ref {ref.describe()} with no resolver")
        arr = r.source(ref)
        return arr.copy() if r.copy else arr
    if tag == _BBOX:
        ndim = r.u8()
        lo = tuple(r.i64() for _ in range(ndim))
        hi = tuple(r.i64() for _ in range(ndim))
        return BBox(lo, hi)
    if tag == _DESC:
        name = _decode_value(r)
        version = r.i64()
        bbox = _decode_value(r)
        dtype = _decode_value(r)
        return ObjectDescriptor(name, version, bbox, dtype)
    if tag == _STORED:
        desc = _decode_value(r)
        data = _decode_value(r)
        return StoredObject(desc, data)
    if tag == _PICKLE:
        return pickle.loads(r.take(r.u32()))
    raise ProtocolError(f"unknown codec tag 0x{tag:02x} at offset {r.off - 1}")
