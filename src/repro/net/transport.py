"""Transport abstraction: how a staging group reaches its servers.

A :class:`Transport` owns the server *handles* that populate
``StagingGroup.servers`` and everything about how calls reach them. The
client, resilience, and runtime layers stay transport-blind: they call the
same :class:`~repro.staging.server.StagingServer` method surface on whatever
handle the transport hands out, and the three places the substrate needs to
*manage* servers rather than call them route through the transport:

* group construction → :meth:`Transport.make_servers`
* ``rebuild_server`` replacement provisioning → :meth:`Transport.make_replacement`
* fault injection → :meth:`Transport.inject_faults` (returns ``None`` when
  faults should be injected by wrapping handles in-process — the inproc
  path — or an injector-compatible handle when the transport pushes the
  plans to where the servers actually live, e.g. into TCP server processes)

Transports are selected per group (``StagingGroup.create(transport=...)``)
or process-wide through the ``REPRO_TRANSPORT`` environment variable, which
is how the CI transport matrix flips the entire test suite onto TCP without
touching a single test.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod

from repro.staging.server import StagingServer

__all__ = ["TRANSPORT_ENV", "Transport", "InprocTransport", "resolve_transport"]

TRANSPORT_ENV = "REPRO_TRANSPORT"


class Transport(ABC):
    """Factory + lifecycle owner for one group's server handles."""

    #: Short name used in env/config and in ``net.*`` metric labels.
    name: str = "abstract"

    #: True when calls cross a process boundary (tcp, shm). The client uses
    #: this to pick fan-out thresholds: remote round trips are worth
    #: parallelising at much smaller payloads than in-process calls.
    remote: bool = False

    @abstractmethod
    def make_servers(self, num_servers: int) -> list:
        """Provision ``num_servers`` fresh, empty server handles (ids 0..n-1)."""

    @abstractmethod
    def make_replacement(self, server_id: int):
        """Provision a fresh, empty handle to replace a lost server.

        Called by :func:`repro.staging.resilience.rebuild_server` when the
        caller did not supply a replacement; the returned handle starts
        empty and is populated from survivors before being swapped into
        ``group.servers``.
        """

    def inject_faults(self, plans, rng=None):
        """Install fault plans where the servers live.

        Return ``None`` to tell :func:`repro.faults.proxy.inject_faults` to
        fall back to wrapping the handles in-process (correct whenever the
        handles are real local servers). Transports whose servers live
        elsewhere return an object mirroring the
        :class:`~repro.faults.plan.FaultInjector` read API (``fired``,
        ``pending_count``, ``pending_for``) plus ``heal(server_id)``.
        """
        return None

    def close(self) -> None:
        """Release transport resources (processes, sockets). Idempotent."""

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InprocTransport(Transport):
    """The seed behaviour: servers are in-process objects, calls are plain
    method calls, payloads move by reference. Zero copies, zero sockets —
    this stays the default transport."""

    name = "inproc"

    def make_servers(self, num_servers: int) -> list[StagingServer]:
        return [StagingServer(i) for i in range(num_servers)]

    def make_replacement(self, server_id: int) -> StagingServer:
        return StagingServer(server_id)


def resolve_transport(spec=None) -> Transport:
    """Resolve a transport from an instance, a name, or the environment.

    ``spec`` may be a :class:`Transport` instance (returned as-is), a name
    (``"inproc"`` / ``"tcp"`` / ``"shm"``), or ``None`` — then the
    ``REPRO_TRANSPORT`` environment variable decides, defaulting to inproc.
    """
    if isinstance(spec, Transport):
        return spec
    if spec is None:
        spec = os.environ.get(TRANSPORT_ENV, "") or "inproc"
    if not isinstance(spec, str):
        raise ValueError(f"transport spec must be a Transport or name, got {spec!r}")
    name = spec.strip().lower()
    if name == "inproc":
        return InprocTransport()
    if name == "tcp":
        from repro.net.tcp import TcpTransport

        return TcpTransport()
    if name == "shm":
        from repro.net.shm import ShmTransport

        return ShmTransport()
    raise ValueError(
        f"unknown transport {spec!r} (expected 'inproc', 'tcp', or 'shm')"
    )
