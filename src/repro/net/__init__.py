"""Wire transport between staging clients and staging servers.

The staging substrate reaches its servers through a pluggable *transport*:

* :class:`~repro.net.transport.InprocTransport` — the seed behaviour: every
  server is an in-process :class:`~repro.staging.server.StagingServer`
  behind its own lock, calls are plain method calls, payloads move by
  reference (zero copies added). This stays the default.
* :class:`~repro.net.tcp.TcpTransport` — one server **process** per staging
  server (DataSpaces-style), reached over TCP with length-prefixed binary
  frames (:mod:`repro.net.frames`), a struct-tagged object codec
  (:mod:`repro.net.codec`), per-server connection pooling, scatter-gather
  sends (``sendmsg`` over the codec's iovec output), and pipelined request
  batching (:mod:`repro.net.tcp`). Wire-level failures map onto the
  existing :class:`~repro.errors.ServerUnavailable` /
  :class:`~repro.errors.TransientServerError` taxonomy, so retry/backoff,
  health mark-down, degraded reads, and rebuild work unchanged over sockets.
* :class:`~repro.net.shm.ShmTransport` — same server processes and fault
  machinery, but bulk ndarray payloads move through client-owned
  ``multiprocessing.shared_memory`` segments (zero-copy views on the read
  side, one strided copy on the write side) while the TCP connection
  degrades into a doorbell for small control messages. Node-local only.

Select a transport per group (``StagingGroup.create(transport="shm")``) or
process-wide via the ``REPRO_TRANSPORT`` environment variable (used by the
CI transport matrix). See DESIGN.md §13 for the frame layout, the RPC op
table, the error-mapping table, and the batching rules, and §14 for the
shared-memory data plane (segment layout, grants, lifecycle, fallbacks).
"""

from repro.net.codec import decode, encode
from repro.net.frames import (
    Frame,
    FrameDecoder,
    FrameTooLarge,
    MuxFrameDecoder,
    ProtocolError,
    ShortRead,
    WireClosed,
    recv_frame,
    recv_frame_any,
    send_frame,
    send_frame_v2,
)
from repro.net.mux import current_deadline, deadline_scope
from repro.net.protocol import (
    WIRE_ERRORS,
    decode_message,
    encode_request,
    encode_response,
    error_kind_for,
    raise_wire_error,
)
from repro.net.transport import (
    TRANSPORT_ENV,
    InprocTransport,
    Transport,
    resolve_transport,
)

__all__ = [
    "encode",
    "decode",
    "send_frame",
    "recv_frame",
    "send_frame_v2",
    "recv_frame_any",
    "Frame",
    "FrameDecoder",
    "MuxFrameDecoder",
    "deadline_scope",
    "current_deadline",
    "ProtocolError",
    "ShortRead",
    "WireClosed",
    "FrameTooLarge",
    "encode_request",
    "encode_response",
    "decode_message",
    "error_kind_for",
    "raise_wire_error",
    "WIRE_ERRORS",
    "Transport",
    "InprocTransport",
    "resolve_transport",
    "TRANSPORT_ENV",
]


def __getattr__(name: str):
    # The wire transports pull in multiprocessing; load them lazily so the
    # default in-process path never pays the import.
    if name == "TcpTransport":
        from repro.net.tcp import TcpTransport

        return TcpTransport
    if name == "ShmTransport":
        from repro.net.shm import ShmTransport

        return ShmTransport
    raise AttributeError(name)
