"""Client-side request multiplexing and deadline propagation.

One :class:`MuxConnection` turns a single TCP socket into a concurrent RPC
channel: any number of caller threads send v2 frames (fresh u64 request ids,
the caller's deadline stamped in the header) and park on per-request
futures; a dedicated reader thread demultiplexes replies **by id**, so
completions may arrive in any order — a slow request no longer head-of-line
blocks the connection it shares. This retires the connection-per-concurrent
-request scaling of the v1 pool: an endpoint needs ~1–2 sockets total
(``REPRO_MUX_CONNECTIONS``), not one per caller thread.

Send path — coalesced writes. Senders append their frame's iovec to a
shared outbox and one of them (whoever wins the non-blocking flush lock)
drains it with batched ``sendmsg`` calls. Under concurrency this folds many
small frames into single syscalls — on loopback, where per-op syscall and
wakeup cost dominates small-payload round trips, this is where the mux
path's throughput win over the pooled v1 path comes from. The flusher
re-checks the outbox after releasing the lock, so an iovec enqueued while a
flush was in flight is never stranded.

Failure semantics. A wire-level failure (reset, EOF, torn frame) fails
*every* pending future with the underlying error — the stream position is
unknowable, the connection is dead, and the endpoint dials a fresh one. A
per-request **timeout** fails only its own future (``socket.timeout``, which
the transport maps to ``TransientServerError``): the connection is still
byte-aligned, and the late reply is discarded by id when it eventually
arrives.

Deadlines. :func:`deadline_scope` publishes an *absolute wall-clock*
deadline (``time.time()`` seconds — both ends of every transport share the
host clock) in a thread-local; the transport stamps it into each v2 header
sent from that thread. ``StagingClient._server_op`` opens a scope around
every attempt, so the retry budget the client enforces locally is the same
budget the server uses to drop requests that expired in its queue.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeout

from repro.net.frames import (
    MuxFrameDecoder,
    ProtocolError,
    ShortRead,
    WireClosed,
    WireError,
    frame_header_v2,
)
from repro.obs import registry as _obs

__all__ = [
    "MUX_ENV",
    "MUX_CONNECTIONS_ENV",
    "mux_enabled",
    "mux_connections_per_endpoint",
    "current_deadline",
    "deadline_scope",
    "MuxConnection",
]

#: Client-side switch for the multiplexed path; "0" falls back to the v1
#: pooled lockstep path (kept as the measurable baseline — see
#: ``benchmarks/bench_transport.py``'s mux section).
MUX_ENV = "REPRO_MUX"
#: Sockets per endpoint in mux mode. One is enough for correctness; two can
#: help when a single reader thread becomes the bottleneck on many-core
#: hosts. The v1 pool needed one socket per concurrent caller.
MUX_CONNECTIONS_ENV = "REPRO_MUX_CONNECTIONS"

_REQUESTS = _obs.counter("net.mux.requests")
_CONNECTIONS = _obs.counter("net.mux.connections")
_INFLIGHT = _obs.gauge("net.mux.inflight")
_COALESCED = _obs.counter("net.mux.coalesced_sends")
_SEND_BATCH = _obs.histogram("net.mux.send_batch.frames")
_TIMEOUTS = _obs.counter("net.mux.timeouts")

_SENDMSG_MAX_VECS = 512
_RECV_CHUNK = 1 << 18


def mux_enabled() -> bool:
    """Whether new endpoints multiplex (read per endpoint, not at import,
    so benchmarks and tests can flip the env var between groups)."""
    return os.environ.get(MUX_ENV, "").strip() not in ("0", "off", "false")


def mux_connections_per_endpoint() -> int:
    raw = os.environ.get(MUX_CONNECTIONS_ENV, "").strip()
    return max(1, int(raw)) if raw else 1


# --------------------------------------------------------------- deadlines

_tls = threading.local()


def current_deadline() -> float:
    """The calling thread's absolute wall-clock deadline (0.0 = none)."""
    return getattr(_tls, "deadline", 0.0)


class deadline_scope:
    """Publish an absolute deadline for every wire request in the block.

    Nests: an inner scope may only *tighten* the deadline (the outer bound
    still applies), and the previous value is restored on exit.
    """

    __slots__ = ("_deadline", "_prev")

    def __init__(self, deadline: float) -> None:
        self._deadline = float(deadline)

    def __enter__(self) -> "deadline_scope":
        self._prev = getattr(_tls, "deadline", 0.0)
        if self._prev and self._deadline:
            _tls.deadline = min(self._prev, self._deadline)
        else:
            _tls.deadline = self._deadline or self._prev
        return self

    def __exit__(self, *exc) -> None:
        _tls.deadline = self._prev


# ----------------------------------------------------------- mux connection


class MuxConnection:
    """Many caller threads sharing one socket via per-request futures."""

    def __init__(self, sock: socket.socket, server_id: int) -> None:
        sock.settimeout(None)  # per-request timeouts live on the futures
        self.sock = sock
        self.server_id = server_id
        self._ids = itertools.count(1)
        self._pending: dict[int, Future] = {}
        self._pending_lock = threading.Lock()
        self._outbox: list = []
        self._outbox_lock = threading.Lock()
        self._flush_lock = threading.Lock()
        self._dead: BaseException | None = None
        self._reader = threading.Thread(
            target=self._read_loop, daemon=True, name=f"mux-reader-{server_id}"
        )
        self._reader.start()
        _CONNECTIONS.inc()

    # ------------------------------------------------------------- requests

    def call(self, parts: list, deadline: float = 0.0, timeout: float = 30.0):
        """Send one frame, wait for its reply payload (a writable bytearray).

        Raises the connection's wire error if it is (or becomes) dead, or
        ``socket.timeout`` if only *this* request ran out of time — the
        connection survives a timeout and the stray reply is dropped by id.
        """
        request_id = next(self._ids)
        future: Future = Future()
        with self._pending_lock:
            if self._dead is not None:
                raise WireClosed(f"mux connection dead: {self._dead}")
            self._pending[request_id] = future
        _REQUESTS.inc()
        _INFLIGHT.add(1)
        try:
            n = sum(len(p) for p in parts)
            head = frame_header_v2(n, request_id, deadline)
            vecs = [memoryview(head)]
            vecs += [memoryview(p).cast("B") for p in parts if len(p)]
            self._send(vecs)
            try:
                return future.result(timeout=timeout)
            except _FutureTimeout:
                _TIMEOUTS.inc()
                raise socket.timeout(
                    f"mux request {request_id} timed out after {timeout:.3f}s"
                ) from None
        finally:
            _INFLIGHT.add(-1)
            with self._pending_lock:
                self._pending.pop(request_id, None)

    @property
    def pending_count(self) -> int:
        with self._pending_lock:
            return len(self._pending)

    @property
    def dead(self) -> bool:
        return self._dead is not None

    # ----------------------------------------------------- coalesced sends

    def _send(self, vecs: list) -> None:
        with self._outbox_lock:
            self._outbox.extend(vecs)
        while True:
            if not self._flush_lock.acquire(blocking=False):
                # Another sender is flushing; it re-checks the outbox after
                # releasing, so these vecs cannot be stranded.
                _COALESCED.inc()
                return
            try:
                with self._outbox_lock:
                    batch, self._outbox = self._outbox, []
                if not batch:
                    return
                self._flush(batch)
            except OSError as exc:
                self._fail(exc)
                raise
            finally:
                self._flush_lock.release()
            with self._outbox_lock:
                if not self._outbox:
                    return

    def _flush(self, vecs: list) -> None:
        _SEND_BATCH.record(len(vecs))
        while vecs:
            sent = self.sock.sendmsg(vecs[:_SENDMSG_MAX_VECS])
            while sent:
                head = vecs[0]
                if sent >= len(head):
                    sent -= len(head)
                    vecs.pop(0)
                else:
                    vecs[0] = head[sent:]
                    sent = 0

    # ------------------------------------------------------------ read side

    def _read_loop(self) -> None:
        # Buffered: one large recv often carries several coalesced replies
        # (the server flushes all completions for a conn in one sendmsg), so
        # syscalls per reply amortize toward one — the read-side mirror of
        # the coalesced send path.
        decoder = MuxFrameDecoder()
        try:
            while True:
                data = self.sock.recv(_RECV_CHUNK)
                if not data:
                    if decoder.pending_bytes:
                        raise ShortRead("stream ended mid-frame")
                    raise WireClosed("connection closed at frame boundary")
                decoder.feed(data)
                for frame in decoder.frames():
                    if frame.request_id is None:
                        raise ProtocolError("v1 reply on a multiplexed connection")
                    with self._pending_lock:
                        future = self._pending.pop(frame.request_id, None)
                    if future is not None:
                        future.set_result(frame.payload)
                    # else: the caller timed out and moved on; drop the reply.
        except (OSError, WireError) as exc:
            self._fail(exc)

    def _fail(self, exc: BaseException) -> None:
        with self._pending_lock:
            if self._dead is None:
                self._dead = exc
            pending, self._pending = self._pending, {}
        for future in pending.values():
            # A future whose caller already timed out is done; skip it.
            if not future.done():
                future.set_exception(exc)
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    # ------------------------------------------------------------ lifecycle

    def drain(self, timeout: float = 5.0) -> bool:
        """Wait until no requests are pending (replies demuxed) or timeout.
        Used by clean shutdown so in-flight calls finish before the socket
        closes underneath them."""
        deadline = time.time() + timeout
        while self.pending_count and time.time() < deadline:
            if self._dead is not None:
                return False
            time.sleep(0.002)
        return self.pending_count == 0

    def close(self) -> None:
        self._fail(WireClosed("mux connection closed"))
