"""Object descriptors (ODSC).

DataSpaces identifies every staged datum by an *object descriptor*: variable
name, version (the coupling time step), the bounding box of the region, and
the element type. Descriptors are immutable, hashable, and ordered by
(name, version) so event logs have a stable canonical form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GeometryError
from repro.geometry.bbox import BBox

__all__ = ["ObjectDescriptor"]


@dataclass(frozen=True, order=True)
class ObjectDescriptor:
    """Identity and geometry of one staged data object.

    ``version`` is the application coupling step that produced the data; the
    paper's consistency algorithm is entirely phrased in terms of which
    version of a named variable a component reads or writes.
    """

    name: str
    version: int
    bbox: BBox = field(compare=False)
    dtype: str = field(default="float64", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("descriptor name must be non-empty")
        if self.version < 0:
            raise ValueError(f"version must be >= 0, got {self.version}")
        # Validate the dtype string eagerly so errors surface at creation.
        np.dtype(self.dtype)

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return np.dtype(self.dtype).itemsize

    @property
    def nbytes(self) -> int:
        """Total payload size in bytes."""
        return self.bbox.volume * self.itemsize

    @property
    def key(self) -> tuple[str, int]:
        """The (name, version) identity used by logs and indexes."""
        return (self.name, self.version)

    def with_version(self, version: int) -> "ObjectDescriptor":
        """A copy of this descriptor at a different version."""
        return ObjectDescriptor(self.name, version, self.bbox, self.dtype)

    def with_bbox(self, bbox: BBox) -> "ObjectDescriptor":
        """A copy of this descriptor covering a different region."""
        if bbox.ndim != self.bbox.ndim:
            raise GeometryError(
                f"bbox rank {bbox.ndim} != descriptor rank {self.bbox.ndim}"
            )
        return ObjectDescriptor(self.name, self.version, bbox, self.dtype)

    def restrict(self, region: BBox) -> "ObjectDescriptor | None":
        """This descriptor clipped to ``region``, or None when disjoint."""
        overlap = self.bbox.intersect(region)
        if overlap is None:
            return None
        return self.with_bbox(overlap)

    def __str__(self) -> str:
        return f"{self.name}@v{self.version}{self.bbox}:{self.dtype}"
