"""Object descriptors: the geometric identity of staged data."""

from repro.descriptors.odsc import ObjectDescriptor

__all__ = ["ObjectDescriptor"]
