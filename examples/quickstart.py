#!/usr/bin/env python
"""Quickstart: a coupled in-situ workflow surviving a crash, consistently.

Builds the paper's two-component workflow (a simulation producing a field
through data staging, an analytic consuming it), runs a failure-free
reference, then re-runs with a fail-stop crash injected into the analytic
under the paper's uncoordinated checkpoint/restart with data logging — and
verifies the analytic observed *exactly* the same data both times.

Run:  python examples/quickstart.py
"""

from repro import FailurePlan, run_with_reference
from repro.workloads import coupled_specs


def main() -> None:
    specs = coupled_specs(num_steps=12)
    print("Components:")
    for spec in specs:
        print(
            f"  {spec.name:<12} {spec.kind:<9} ranks={spec.nranks} "
            f"checkpoint every {spec.checkpoint_period} steps"
        )

    print("\nRunning failure-free reference, then a run with a crash in the")
    print("analytic at step 7 under the uncoordinated (logging) scheme ...")
    reference, run = run_with_reference(
        specs, "uncoordinated", failures=[FailurePlan("analytic", 7)]
    )

    stats = run.component_stats["analytic"]
    print(f"\nFailures injected:   {run.failures_injected}")
    print(f"Rollbacks performed: {stats.rollbacks}")
    print(f"Reads replayed from the staging log: {stats.replayed_gets}")
    print(f"Steps re-executed:   {stats.steps_reexecuted}")
    print(f"Read-stable vs reference: {run.consistent}")

    # The analytic's computed results are bitwise what the reference got.
    assert run.final_states["analytic"]["results"] == (
        reference.final_states["analytic"]["results"]
    )
    print("\nAnalytic results identical to the failure-free run. ✓")


if __name__ == "__main__":
    main()
