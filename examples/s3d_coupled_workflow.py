#!/usr/bin/env python
"""An S3D-like DNS + in-situ visualization workflow with crashes everywhere.

The paper motivates its framework with the S3D turbulent-combustion
workflow: a DNS solver streaming "dozens of 3D scalar and vector field
components (fluid velocity, molecular species concentrations, temperature,
pressure, density, etc)" through staging to analysis/visualization. This
example couples ten such fields, crashes *both* components at different
steps, and shows the uncoordinated scheme recovering each independently —
the visualization replays its logged reads, the solver's redundant
re-writes are suppressed — with bit-identical analysis output.

Run:  python examples/s3d_coupled_workflow.py
"""

from repro import FailurePlan, run_with_reference
from repro.workloads import s3d_field_set, s3d_specs


def main() -> None:
    pattern = s3d_field_set()
    specs = s3d_specs(num_steps=8)
    print(f"S3D field set ({len(pattern.variables)} coupled variables):")
    for var in pattern.variables:
        print(f"  {var:<20} every {pattern.frequencies[var]} step(s)")

    failures = [FailurePlan("s3d-viz", 5), FailurePlan("s3d-dns", 6)]
    print("\nInjecting fail-stop crashes: viz at step 5, DNS at step 6 ...")
    reference, run = run_with_reference(specs, "uncoordinated", failures=failures)

    dns = run.component_stats["s3d-dns"]
    viz = run.component_stats["s3d-viz"]
    print(f"\nDNS:  rollbacks={dns.rollbacks}  puts={dns.puts} "
          f"(suppressed on replay: {dns.suppressed_puts})")
    print(f"viz:  rollbacks={viz.rollbacks}  gets={viz.gets} "
          f"(replayed from log: {viz.replayed_gets})")
    print(f"staging memory at end: {run.memory_bytes / 2**20:.1f} MiB "
          f"(logging overhead {run.logging_overhead * 100:.0f}% vs latest-only)")
    print(f"read-stable vs failure-free reference: {run.consistent}")

    ref_results = reference.final_states["s3d-viz"]["results"]
    run_results = run.final_states["s3d-viz"]["results"]
    assert ref_results == run_results
    print(f"\nAll {len(run_results)} extracted features identical to the "
          f"failure-free run. ✓")


if __name__ == "__main__":
    main()
