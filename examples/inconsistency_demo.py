#!/usr/bin/env python
"""The paper's Figure 2, live: why naive per-application C/R corrupts workflows.

Runs the same crash twice:

* under ``individual`` checkpoint/restart (no data logging) the re-executed
  analytic silently reads the *latest* version of the coupled field instead
  of the one it read originally — the exact wrong-version failure mode of
  the paper's Figure 2, case 1;
* under the paper's ``uncoordinated`` scheme, the staging log replays the
  correct versions.

Run:  python examples/inconsistency_demo.py
"""

from repro import ConsistencyError, FailurePlan, ThreadedWorkflow, verify_read_stability
from repro.workloads import coupled_specs


def observed_versions(result, component="analytic"):
    return [(o.step, o.version) for o in result.observations.history(component)]


def main() -> None:
    failure = [FailurePlan("analytic", 7)]
    reference = ThreadedWorkflow(coupled_specs(num_steps=10), "ds").run()

    print("=== individual C/R (no logging) ===")
    broken = ThreadedWorkflow(
        coupled_specs(num_steps=10), "individual", failures=failure
    ).run()
    try:
        verify_read_stability(reference.observations, broken.observations)
        print("unexpectedly consistent?!")
    except ConsistencyError as err:
        print(f"ConsistencyError: {err}")
    ref_v = dict(observed_versions(reference))
    bad_v = dict(observed_versions(broken))
    wrong = {s: (ref_v[s], bad_v[s]) for s in ref_v if ref_v[s] != bad_v[s]}
    print(f"steps that read the wrong version: {sorted(wrong)}")
    for step, (want, got) in sorted(wrong.items()):
        print(f"  step {step}: expected field v{want}, got v{got}")

    print("\n=== uncoordinated C/R with data logging (the paper's scheme) ===")
    fixed = ThreadedWorkflow(
        coupled_specs(num_steps=10), "uncoordinated", failures=failure
    ).run()
    verify_read_stability(reference.observations, fixed.observations)
    stats = fixed.component_stats["analytic"]
    print(
        f"read-stable ✓  ({stats.replayed_gets} reads replayed from the "
        f"staging log after {stats.rollbacks} rollback)"
    )


if __name__ == "__main__":
    main()
