#!/usr/bin/env python
"""Hybrid fault tolerance: C/R for the solver, process replication for analytics.

The paper's §III-B: different components want different resilience
mechanisms. Here the simulation uses checkpoint/restart while the analytic
uses process duplication — a crash in the analytic fails over to its
replica with *no rollback and no staging recovery phase*, while a crash in
the simulation still rolls back and is replayed by the staging log. The
framework keeps both consistent.

Run:  python examples/hybrid_replication.py
"""

from repro import FailurePlan, run_with_reference
from repro.workloads import coupled_specs


def main() -> None:
    specs = coupled_specs(num_steps=12)
    failures = [FailurePlan("analytic", 5), FailurePlan("simulation", 9)]
    print("Scheme: hybrid — simulation uses C/R, analytic uses replication")
    print("Failures: analytic at step 5, simulation at step 9\n")

    _, run = run_with_reference(specs, "hybrid", failures=failures)

    ana = run.component_stats["analytic"]
    sim = run.component_stats["simulation"]
    print("analytic (replicated):")
    print(f"  failovers to the replica: {ana.failovers}")
    print(f"  rollbacks:                {ana.rollbacks} (replication avoids them)")
    print(f"  steps re-executed:        {ana.steps_reexecuted}")
    print("simulation (checkpoint/restart):")
    print(f"  rollbacks:                {sim.rollbacks}")
    print(f"  redundant writes suppressed by the staging log: {sim.suppressed_puts}")
    print(f"\nread-stable vs failure-free reference: {run.consistent}")

    assert ana.failovers == 1 and ana.rollbacks == 0
    assert sim.rollbacks == 1
    assert run.consistent
    print("\nBoth mechanisms coexisted under one consistent workflow. ✓")


if __name__ == "__main__":
    main()
