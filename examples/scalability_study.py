#!/usr/bin/env python
"""Scalability study on the simulated Cori: Figure 10 in miniature.

Sweeps the paper's Table III configurations (704 to 11264 total cores, data
weak-scaled from 40 to 640 GiB per 40 steps) on the discrete-event
performance model, comparing global coordinated checkpoint/restart against
the paper's uncoordinated scheme under 1-3 random fail-stop failures.

Run:  python examples/scalability_study.py        (~1 minute)
"""

from repro.analysis import format_table
from repro.perfsim import TABLE3_SCALES, sample_failures, simulate, table3_config

SEEDS = range(3)


def mean_gap(cfg, failure_count):
    gaps = []
    for seed in SEEDS:
        failures = sample_failures(cfg, failure_count, seed=seed)
        co = simulate(cfg, "coordinated", failures=failures).total_time
        un = simulate(cfg, "uncoordinated", failures=failures).total_time
        gaps.append((co - un) / co * 100)
    return sum(gaps) / len(gaps)


def main() -> None:
    print("Un vs Co total-time reduction (mean over seeds), simulated Cori\n")
    rows = []
    for scale in TABLE3_SCALES:
        cfg = table3_config(scale)
        row = [scale]
        for count in (1, 2, 3):
            row.append(f"{mean_gap(cfg, count):.2f}%")
        rows.append(row)
        print(f"  {scale} cores done")
    print()
    print(format_table(["total cores", "1 failure", "2 failures", "3 failures"], rows))
    print(
        "\nPaper (Fig 10, 'up to'): 7.89% @704, 10.48% @1408, 11.5% @2816, "
        "12.03% @5632, 13.48% @11264"
    )


if __name__ == "__main__":
    main()
