"""Degraded-read microbenchmark: what does surviving a server loss cost?

Not a paper figure. Measures the resilient client's read throughput in four
regimes over the same payloads:

* **unprotected** — the plain scatter/gather data path (no protection);
* **protected, clean** — RS-protected puts, all servers healthy, so every
  read is served from the systematic data shards (no decode);
* **degraded, 1 lost** — one server crashed: reads reconstruct its shard
  from survivors + parity via the CoREC decode path;
* **degraded, 2 lost** — both tolerated losses in play (parity = 2), the
  worst case the protection level still covers byte-identically.

The gap between *clean* and *degraded* is the reconstruction cost a consumer
pays while a rebuild is pending; the gap between *unprotected* and
*protected, clean* is the steady-state bookkeeping overhead of protection.

Results are printed only — this benchmark does not feed ``BENCH_micro.json``
(degraded reads are a fault-path, not a steady-state guarantee).

Run directly::

    PYTHONPATH=src python benchmarks/bench_degraded_reads.py
"""

from __future__ import annotations

import sys
from time import perf_counter

import numpy as np

from repro.descriptors import ObjectDescriptor
from repro.faults import FaultPlan, inject_faults
from repro.geometry import Domain
from repro.staging import ProtectionConfig, StagingClient, StagingGroup

# 128 KiB float64 payloads over 4 servers: large enough that the RS decode
# shows up, small enough that the whole sweep stays under a few seconds.
DOMAIN = Domain((32, 32, 16))
NUM_SERVERS = 4
PARITY = 2
VERSIONS = 8
GET_REPS = 5


def _timed(fn, *args) -> float:
    t0 = perf_counter()
    fn(*args)
    return perf_counter() - t0


def _best_of(reps: int, fn, *args) -> float:
    """Best wall time of ``reps`` runs (1 warmup) — least-noise estimator."""
    fn(*args)
    return min(_timed(fn, *args) for _ in range(reps))


def _fresh_client(protection: ProtectionConfig | None) -> StagingClient:
    group = StagingGroup.create(DOMAIN, num_servers=NUM_SERVERS, protection=protection)
    return StagingClient(group, client_id="bench")


def _descs() -> list[ObjectDescriptor]:
    return [ObjectDescriptor("field", v, DOMAIN.bbox) for v in range(1, VERSIONS + 1)]


def _payloads() -> list[np.ndarray]:
    rng = np.random.default_rng(11)
    return [rng.standard_normal(DOMAIN.shape) for _ in range(VERSIONS)]


def _get_all(client: StagingClient, descs: list[ObjectDescriptor]) -> None:
    for desc in descs:
        client.get(desc)


def bench_degraded_reads() -> dict:
    descs, payloads = _descs(), _payloads()
    rs = ProtectionConfig(mode="rs", parity=PARITY)
    results: dict[str, float] = {}

    client = _fresh_client(None)
    for desc, data in zip(descs, payloads):
        client.put(desc, data)
    results["unprotected"] = VERSIONS / _best_of(GET_REPS, _get_all, client, descs)

    client = _fresh_client(rs)
    for desc, data in zip(descs, payloads):
        client.put(desc, data)
    results["protected_clean"] = VERSIONS / _best_of(GET_REPS, _get_all, client, descs)

    for lost in (1, 2):
        client = _fresh_client(rs)
        for desc, data in zip(descs, payloads):
            client.put(desc, data)
        inject_faults(
            client.group,
            [FaultPlan(server=s, op=0, kind="crash") for s in range(lost)],
        )
        # Sanity: the degraded read must still be byte-identical before we
        # bother timing it.
        if not np.array_equal(client.get(descs[0]), payloads[0]):
            raise AssertionError(f"degraded read with {lost} lost server(s) corrupted data")
        results[f"degraded_{lost}_lost"] = VERSIONS / _best_of(
            GET_REPS, _get_all, client, descs
        )
    return results


def main() -> int:
    payload_kb = int(np.prod(DOMAIN.shape)) * 8 // 1024
    print(
        f"== degraded reads: {NUM_SERVERS} servers, RS parity={PARITY}, "
        f"{payload_kb} KiB payloads =="
    )
    results = bench_degraded_reads()
    clean = results["protected_clean"]
    for name, ops in results.items():
        rel = f", {ops / clean:4.2f}x of clean" if name.startswith("degraded") else ""
        print(f"  {name:18s} {ops:8.1f} gets/s{rel}")
    overhead = results["unprotected"] / clean
    print(f"  protection bookkeeping overhead on clean reads: {overhead:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
