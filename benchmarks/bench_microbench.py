"""Microbenchmarks for the two hot paths this repo optimises.

Not a paper figure: this measures the implementation itself, as demanded by
the north-star ("as fast as the hardware allows").

* **CoREC coding kernels** — RS encode/decode MB/s for (4,2) and (8,3),
  against the seed's GF(256) kernels (exp/log ``where()``-masked multiply,
  Python k-loop matmul) embedded here as the "before" reference.
* **Staging data path** — put/get ops/s through the synchronized service at
  1/2/4/8 servers, against a baseline that restores the seed's costs:
  single-lock request servicing (``parallel=False``), linear-scan
  placement lookups with no shard memo, and ``tobytes()``-copy digests.
* **Checkpoint snapshot** — capture/restore rate of the coordinated staging
  snapshot at ~10 % churn: the incremental copy-on-write chain (O(mutations)
  per capture) against the seed's full-copy path (O(staged fragments)).
* **Garbage collection** (``bench_gc.py``) — candidate-driven pass latency
  vs logged-state size (flat, O(drained candidates)) against the full
  reference sweep, plus worst-case data-plane latency under the concurrent
  background collector.

Results land in ``BENCH_micro.json`` at the repo root so perf PRs have a
committed before/after record. Run directly::

    PYTHONPATH=src python benchmarks/bench_microbench.py

or via ``scripts/check.sh --bench``.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pathlib
import platform
import sys
from time import perf_counter

import numpy as np

import repro.core.interface as _interface
import repro.runtime.staging_service as _service
from repro.core import WorkflowStaging
from repro.corec.gf256 import GF256
from repro.corec.reedsolomon import RSCode
from repro.descriptors import ObjectDescriptor
from repro.errors import ObjectNotFound
from repro.geometry import Domain
from repro.obs import registry as _obs
from repro.runtime.staging_service import SynchronizedStaging
from repro.staging import StagingClient, StagingGroup
from repro.staging.hashing import PlacementMap
from repro.staging.store import ObjectStore

OUT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_micro.json"


def _load_sibling(name: str):
    """Load a sibling benchmark module (works under importlib loading)."""
    import importlib.util

    path = pathlib.Path(__file__).resolve().with_name(f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def bench_gc() -> dict:
    """GC pass latency + background-collection stalls (see bench_gc.py)."""
    return _load_sibling("bench_gc").bench_gc()


def bench_recovery() -> dict:
    """Recovery-engine throughputs (see bench_recovery.py)."""
    return _load_sibling("bench_recovery").bench_recovery()


def bench_transport() -> dict:
    """Wire-transport put/get + batching (see bench_transport.py)."""
    return _load_sibling("bench_transport").bench_transport()

MB = 1024 * 1024
RS_PAYLOAD_BYTES = 4 * MB
RS_REPS = 3
# 16 KiB float64 payloads: the small-exchange regime where request rate is
# bound by the metadata path (placement, coverage checks, digests) — the
# regime this PR's scan-removal targets. Large payloads are memcpy-bound and
# say nothing about the data-path servicing rate.
STAGING_DOMAIN = Domain((16, 16, 8))
STAGING_OPS = 60
SERVER_COUNTS = (1, 2, 4, 8)
# Snapshot bench: a populated service checkpointed at ~10 % churn. Full-copy
# capture is O(staged fragments); incremental capture is O(mutations since
# the last epoch), so the gap widens with resident state.
SNAPSHOT_SERVERS = 4
SNAPSHOT_VERSIONS = 200
SNAPSHOT_CHURN = 20  # versions mutated between checkpoints (10 %)
SNAPSHOT_REPS = 5


# ------------------------------------------------------- seed kernel baselines


def _seed_mul(a, b):
    """Seed element-wise GF(256) product (exp/log with where() masks)."""
    a = np.asarray(a, np.uint8)
    b = np.asarray(b, np.uint8)
    out = GF256.EXP[(GF256.LOG[a].astype(np.int64) + GF256.LOG[b])]
    return np.where((a == 0) | (b == 0), np.uint8(0), out)


def _seed_matmul(a, b):
    """Seed GF(256) matmul (Python loop over k accumulating outer products)."""
    a = np.asarray(a, np.uint8)
    b = np.asarray(b, np.uint8)
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for j in range(a.shape[1]):
        out ^= _seed_mul(a[:, j : j + 1], b[j : j + 1, :])
    return out


def _seed_encode(code: RSCode, payload: np.ndarray) -> np.ndarray:
    shard_len = code.shard_length(payload.size)
    padded = np.zeros(shard_len * code.k, dtype=np.uint8)
    padded[: payload.size] = payload
    return _seed_matmul(code.matrix, padded.reshape(code.k, shard_len))


class _SeedPlacementMap(PlacementMap):
    """The seed's O(num_blocks) placement lookups, no shard memo."""

    def server_of_point(self, point):
        for blk in self._blocks:
            if blk.bbox.contains_point(point):
                return blk.server
        raise ValueError(f"point {point} outside domain")

    def shards(self, bbox):
        out = []
        for blk in self._blocks:
            overlap = blk.bbox.intersect(bbox)
            if overlap is not None:
                out.append((blk.server, overlap))
        return out


def _seed_digest(data) -> str:
    """Seed payload digest: always a tobytes() staging copy."""
    if isinstance(data, np.ndarray):
        data = np.ascontiguousarray(data).tobytes()
    return hashlib.blake2b(data, digest_size=12).hexdigest()


def _seed_store_get(self, desc, out=None):
    """Seed ObjectStore.get: cover-tracking walk, no whole-fragment fast path.

    Accepts the ``out=`` gather destination the server now forwards, but
    keeps the seed's allocation when none is given.
    """
    frags = self._objects.get(desc.key)
    if not frags:
        raise ObjectNotFound(f"no data for {desc.name!r} v{desc.version}")
    if out is None:
        out = np.empty(desc.bbox.shape, dtype=np.dtype(desc.dtype))
    uncovered = [desc.bbox]
    for frag in frags:
        overlap = frag.desc.bbox.intersect(desc.bbox)
        if overlap is None:
            continue
        out[overlap.slices(desc.bbox)] = frag.data[overlap.slices(frag.desc.bbox)]
        uncovered = [p for box in uncovered for p in box.subtract(frag.desc.bbox)]
        if not uncovered:
            break
    if uncovered:
        raise ObjectNotFound(f"{desc} only partially covered")
    return out


def _seed_store_covers(self, desc):
    """Seed ObjectStore.covers: always the subtract walk."""
    frags = self._objects.get(desc.key)
    if not frags:
        return False
    uncovered = [desc.bbox]
    for frag in frags:
        uncovered = [p for box in uncovered for p in box.subtract(frag.desc.bbox)]
        if not uncovered:
            return True
    return not uncovered


def _seed_client_put(self, desc, data):
    """Seed StagingClient.put: one server round-trip per shard, double copy."""
    data = np.asarray(data)
    shards = self.group.placement.shards(desc.bbox)
    for server_id, sub in shards:
        # The seed store copied its (already contiguous) input a second time.
        payload = np.ascontiguousarray(data[sub.slices(desc.bbox)]).copy()
        self.group.servers[server_id].put(desc.with_bbox(sub), payload)
    return len(shards)


def _seed_client_get(self, desc):
    """Seed StagingClient.get: one server round-trip per shard."""
    shards = self.group.placement.shards(desc.bbox)
    if not shards:
        raise ObjectNotFound(f"{desc}: region outside staged domain")
    out = np.empty(desc.bbox.shape, dtype=np.dtype(desc.dtype))
    for server_id, sub in shards:
        out[sub.slices(desc.bbox)] = self.group.servers[server_id].get(
            desc.with_bbox(sub)
        )
    return out


def _seed_client_covers(self, desc):
    """Seed StagingClient.covers: one locked probe per shard."""
    shards = self.group.placement.shards(desc.bbox)
    if not shards:
        return False
    return all(
        self.group.servers[server_id].covers(desc.with_bbox(sub))
        for server_id, sub in shards
    )


@contextlib.contextmanager
def _seed_mode():
    """Swap in the seed's data-path implementations (the 'before' baseline).

    Everything the PR optimised is reverted for the duration: linear-scan
    placement is applied per-group (see ``_make_service``); here the store's
    fast paths, the batched per-server client calls, and the zero-copy
    digest go back to their seed forms.
    """
    patches = [
        (ObjectStore, "get", _seed_store_get),
        (ObjectStore, "covers", _seed_store_covers),
        (StagingClient, "put", _seed_client_put),
        (StagingClient, "get", _seed_client_get),
        (StagingClient, "covers", _seed_client_covers),
        (_interface, "payload_digest", _seed_digest),
        (_service, "payload_digest", _seed_digest),
    ]
    saved = [(obj, name, getattr(obj, name)) for obj, name, _new in patches]
    for obj, name, new in patches:
        setattr(obj, name, new)
    try:
        yield
    finally:
        for obj, name, old in saved:
            setattr(obj, name, old)


# --------------------------------------------------------------------- timing


def _best_of(reps: int, fn, *args) -> float:
    """Best wall time of ``reps`` runs (1 warmup) — least-noise estimator."""
    fn(*args)
    return min(_timed(fn, *args) for _ in range(reps))


def _timed(fn, *args) -> float:
    t0 = perf_counter()
    fn(*args)
    return perf_counter() - t0


# ------------------------------------------------------------------ RS bench


def bench_rs() -> dict:
    rng = np.random.default_rng(42)
    payload = rng.integers(0, 256, size=RS_PAYLOAD_BYTES, dtype=np.uint8)
    results = {}
    for k, m in ((4, 2), (8, 3)):
        code = RSCode(k, m)
        mbytes = payload.nbytes / MB

        t_new = _best_of(RS_REPS, code.encode, payload)
        t_seed = _best_of(RS_REPS, _seed_encode, code, payload)

        shards = code.encode(payload)
        # Worst-case decode: the m lost shards are all data shards, so
        # reconstruction needs the full inverse-matrix matmul.
        survivors = shards[m : k + m]
        t_dec = _best_of(RS_REPS, code.decode, survivors, payload.nbytes)
        # Systematic fast path: every data shard survived.
        t_dec_fast = _best_of(RS_REPS, code.decode, shards[:k], payload.nbytes)

        results[f"rs({k},{m})"] = {
            "payload_mb": round(mbytes, 3),
            "encode_MBps": round(mbytes / t_new, 1),
            "encode_seed_MBps": round(mbytes / t_seed, 1),
            "encode_speedup": round(t_seed / t_new, 2),
            "decode_worstcase_MBps": round(mbytes / t_dec, 1),
            "decode_fastpath_MBps": round(mbytes / t_dec_fast, 1),
        }
    return results


# ------------------------------------------------------------- staging bench


def _make_service(num_servers: int, seed_baseline: bool) -> SynchronizedStaging:
    group = StagingGroup.create(
        STAGING_DOMAIN, num_servers=num_servers, parallel=not seed_baseline
    )
    if seed_baseline:
        group.placement.__class__ = _SeedPlacementMap
    svc = SynchronizedStaging(
        WorkflowStaging(group, enable_logging=True),
        poll_timeout=0.05,
        max_wait=30.0,
        parallel=not seed_baseline,
    )
    svc.register("sim")
    svc.register("ana")
    svc.declare_coupling("field", "ana")
    return svc


def _drive(svc: SynchronizedStaging, payloads: list[np.ndarray]) -> None:
    """Alternate put/get over fresh versions (the coupling hot loop)."""
    base = getattr(_drive, "_version", 0)
    for i, data in enumerate(payloads):
        desc = ObjectDescriptor("field", base + i, STAGING_DOMAIN.bbox)
        svc.put("sim", desc, data, step=base + i)
        svc.get_blocking("ana", desc, step=base + i)
    _drive._version = base + len(payloads)


def _bench_staging_config(num_servers: int, seed_baseline: bool) -> float:
    """Aggregate put+get ops/s for one configuration."""
    with _seed_mode() if seed_baseline else contextlib.nullcontext():
        svc = _make_service(num_servers, seed_baseline)
        rng = np.random.default_rng(7)
        payloads = [
            rng.standard_normal(STAGING_DOMAIN.shape) for _ in range(STAGING_OPS)
        ]
        _drive._version = 0
        _drive(svc, payloads[:4])  # warmup
        elapsed = _timed(_drive, svc, payloads)
        svc.shutdown()
        return 2 * STAGING_OPS / elapsed


def bench_staging() -> dict:
    results = {}
    for n in SERVER_COUNTS:
        ops = _bench_staging_config(n, seed_baseline=False)
        base = _bench_staging_config(n, seed_baseline=True)
        results[str(n)] = {
            "payload_kb": int(np.prod(STAGING_DOMAIN.shape)) * 8 // 1024,
            "agg_ops_per_s": round(ops, 1),
            "seed_baseline_ops_per_s": round(base, 1),
            "speedup": round(ops / base, 2),
        }
    return results


# ------------------------------------------------------------ snapshot bench


def _populated_service(versions: int) -> SynchronizedStaging:
    # Producer-only (no coupled consumer): retention must keep every staged
    # version resident so capture cost reflects the full state size.
    group = StagingGroup.create(STAGING_DOMAIN, num_servers=SNAPSHOT_SERVERS)
    svc = SynchronizedStaging(
        WorkflowStaging(group, enable_logging=True), poll_timeout=0.05, max_wait=30.0
    )
    svc.register("sim")
    rng = np.random.default_rng(3)
    for v in range(versions):
        desc = ObjectDescriptor("field", v, STAGING_DOMAIN.bbox)
        svc.put("sim", desc, rng.standard_normal(STAGING_DOMAIN.shape), step=v)
    return svc


def bench_snapshot() -> dict:
    """Checkpoint capture/restore: full copy vs incremental COW chain."""
    state_mb = SNAPSHOT_VERSIONS * int(np.prod(STAGING_DOMAIN.shape)) * 8 / MB

    # Full-copy path (seed semantics: journaling never enabled).
    svc = _populated_service(SNAPSHOT_VERSIONS)
    t_full = _best_of(SNAPSHOT_REPS, svc.snapshot, True)
    full_snap = svc.snapshot(True)
    t_full_restore = _best_of(SNAPSHOT_REPS, svc.restore, full_snap)
    svc.shutdown()

    # Incremental path: base capture once, then steady-state churn (one new
    # version in, the oldest out — resident state stays constant) + delta
    # capture.
    svc = _populated_service(SNAPSHOT_VERSIONS)
    svc.snapshot()  # base; starts the mutation journals
    rng = np.random.default_rng(5)
    version = SNAPSHOT_VERSIONS
    times = []
    for _ in range(SNAPSHOT_REPS):
        for _ in range(SNAPSHOT_CHURN):
            desc = ObjectDescriptor("field", version, STAGING_DOMAIN.bbox)
            svc.put("sim", desc, rng.standard_normal(STAGING_DOMAIN.shape), step=version)
            oldest = version - SNAPSHOT_VERSIONS
            for srv in svc.group.servers:
                srv.evict("field", oldest)
            version += 1
        times.append(_timed(svc.snapshot))
    t_inc = min(times)
    inc_snap = svc.snapshot()
    t_inc_restore = _best_of(SNAPSHOT_REPS, svc.restore, inc_snap)
    svc.shutdown()

    return {
        f"{SNAPSHOT_CHURN * 100 // SNAPSHOT_VERSIONS}pct_churn": {
            "state_mb": round(state_mb, 2),
            "versions": SNAPSHOT_VERSIONS,
            "churn_versions": SNAPSHOT_CHURN,
            "captures_per_s": round(1.0 / t_inc, 1),
            "full_captures_per_s": round(1.0 / t_full, 1),
            "capture_speedup": round(t_full / t_inc, 2),
            "restores_per_s": round(1.0 / t_inc_restore, 1),
            "full_restores_per_s": round(1.0 / t_full_restore, 1),
        }
    }


# ----------------------------------------------------------------------- main


def main() -> int:
    _obs.reset()
    print("== CoREC coding kernels ==")
    rs = bench_rs()
    for name, row in rs.items():
        print(
            f"  {name}: encode {row['encode_MBps']:.0f} MB/s "
            f"(seed {row['encode_seed_MBps']:.0f}, x{row['encode_speedup']:.1f}), "
            f"decode worst {row['decode_worstcase_MBps']:.0f} MB/s, "
            f"fast {row['decode_fastpath_MBps']:.0f} MB/s"
        )
    print("== staging put/get (synchronized service) ==")
    staging = bench_staging()
    for n, row in staging.items():
        print(
            f"  {n} server(s): {row['agg_ops_per_s']:.0f} ops/s "
            f"(seed baseline {row['seed_baseline_ops_per_s']:.0f}, "
            f"x{row['speedup']:.1f})"
        )
    print("== checkpoint snapshot (full copy vs incremental) ==")
    snapshot = bench_snapshot()
    for name, row in snapshot.items():
        print(
            f"  {name} ({row['state_mb']:.1f} MB staged): "
            f"{row['captures_per_s']:.0f} captures/s "
            f"(full copy {row['full_captures_per_s']:.0f}, "
            f"x{row['capture_speedup']:.1f}), "
            f"restore {row['restores_per_s']:.0f}/s"
        )
    print("== garbage collection (candidate-driven vs full sweep) ==")
    gc_results = bench_gc()
    for name, row in gc_results.items():
        if name.endswith("_names"):
            print(
                f"  {row['logged_versions']} logged versions: "
                f"{row['incremental_pass_us']:.0f} us/pass, full sweep "
                f"{row['full_sweep_us']:.0f} us (x{row['full_sweep_speedup']:.0f})"
            )
        else:
            print(
                f"  background stall: p99 {row['put_get_p99_ms']:.2f} ms, "
                f"max {row['put_get_max_ms']:.2f} ms put+get"
            )
    print("== wire transport (inproc vs tcp vs shm, batching) ==")
    transport = bench_transport()
    print(
        f"  inproc {transport['inproc']['agg_ops_per_s']:.0f} ops/s, "
        f"tcp {transport['tcp']['agg_ops_per_s']:.0f} ops/s "
        f"(wire tax x{transport['tcp']['wire_tax_x']:.1f}), "
        f"shm {transport['shm']['agg_ops_per_s']:.0f} ops/s; "
        f"batching x{transport['batching']['batch_speedup']:.1f}, "
        f"{transport['batching']['round_trips_saved_pct']:.0f}% round trips saved"
    )
    print(
        f"  16 MiB payloads: shm {transport['shm_16mb']['mb_per_s']:.0f} MB/s vs "
        f"tcp {transport['tcp_16mb']['mb_per_s']:.0f} MB/s "
        f"(x{transport['shm_16mb']['speedup_vs_tcp_x']:.1f})"
    )
    print("== recovery engine (batched decode, rebuild, restore, restart) ==")
    recovery = bench_recovery()
    dec = next(row for name, row in recovery.items() if name.startswith("decode"))
    print(
        f"  decode batch {dec['batch_MBps']:.0f} MB/s "
        f"(looped {dec['looped_MBps']:.0f}, x{dec['batch_speedup']:.1f}); "
        f"rebuild x{recovery['rebuild']['speedup']:.1f} pipelined; "
        f"restore {recovery['restore']['restores_per_s']:.0f}/s; "
        f"restart {recovery['restart']['restarts_per_s']:.0f}/s"
    )
    out = {
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "config": {
            "rs_payload_bytes": RS_PAYLOAD_BYTES,
            "staging_domain": list(STAGING_DOMAIN.shape),
            "staging_ops": STAGING_OPS,
            "snapshot_versions": SNAPSHOT_VERSIONS,
            "snapshot_churn": SNAPSHOT_CHURN,
        },
        "rs": rs,
        "staging": staging,
        "snapshot": snapshot,
        "gc": gc_results,
        "recovery": recovery,
        "transport": transport,
    }
    OUT_PATH.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    # Recovery targets are advisory only (wall-clock parallel speedups depend
    # on the host's core count; sustained regressions are the guard's job).
    if dec["decode_vs_encode"] < 0.5:
        print(
            "WARNING: batched decode below half of encode_batch throughput "
            f"(ratio {dec['decode_vs_encode']:.2f})"
        )
    snap_ok = all(row["capture_speedup"] >= 5.0 for row in snapshot.values())
    gc_ok = all(
        row["full_sweep_speedup"] >= 10.0
        for name, row in gc_results.items()
        if name.endswith("_names")
    )
    ok = (
        rs["rs(8,3)"]["encode_speedup"] >= 3.0
        and all(
            staging[str(n)]["speedup"] >= 2.0 for n in SERVER_COUNTS if n >= 4
        )
        and snap_ok
        and gc_ok
    )
    if not ok:
        print(
            "WARNING: perf targets missed (>=3x RS(8,3) encode, "
            ">=2x staging at 4+, >=5x snapshot capture at 10% churn, "
            ">=10x GC pass vs full sweep)"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
