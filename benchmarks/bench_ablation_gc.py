"""Ablation — garbage collection of the data log (paper §III-A.2).

Quantifies what the GC component buys: staging memory with GC (the default)
versus a no-GC variant where every logged version is retained forever. The
paper's storage-cost argument hinges on this: without collection the log
grows linearly with time steps; with it, memory plateaus at the replay
window.
"""

from repro.analysis import banner, format_table
from repro.perfsim import simulate, table2_config
from repro.perfsim.staging import StagingModel
from repro.util.units import GIB

from benchmarks.conftest import emit


def run_gc_ablation():
    cfg = table2_config()
    with_gc = simulate(cfg, "uncoordinated")

    # No-GC variant: neutralize the collector.
    original = StagingModel.workflow_check

    def check_without_gc(self, component, step):
        yield self.engine.timeout(
            self.machine.nic_latency + self.machine.staging_request_overhead
        )
        if self.logging_enabled:
            self.register(component)
            self.queues[component].record_checkpoint(step)
            self._sample_memory()

    StagingModel.workflow_check = check_without_gc
    try:
        without_gc = simulate(cfg, "uncoordinated")
    finally:
        StagingModel.workflow_check = original
    return with_gc, without_gc


def test_ablation_garbage_collection(once):
    with_gc, without_gc = once(run_gc_ablation)
    rows = [
        ["with GC (paper)", f"{with_gc.peak_memory / GIB:.2f}",
         f"{with_gc.mean_memory / GIB:.2f}", f"{with_gc.gc_bytes_freed / GIB:.1f}"],
        ["without GC", f"{without_gc.peak_memory / GIB:.2f}",
         f"{without_gc.mean_memory / GIB:.2f}", "0.0"],
    ]
    text = banner("Ablation: data-log garbage collection (Table II, 40 steps)") + "\n"
    text += format_table(
        ["variant", "peak GiB", "mean GiB", "GiB collected"], rows
    )
    ratio = without_gc.peak_memory / with_gc.peak_memory
    text += f"\nGC bounds peak staging memory by {ratio:.1f}x on this run."
    emit("ablation_gc", text)

    # Without GC, retention grows with the full run length.
    assert without_gc.peak_memory > 3 * with_gc.peak_memory
    assert with_gc.gc_bytes_freed > 0
    # GC does not change execution time materially (it is metadata work).
    assert abs(without_gc.total_time - with_gc.total_time) / with_gc.total_time < 0.02
