"""Figure 9(e) — total workflow execution time with one failure.

The paper's bars: Ds (failure-free) and Co/Un/Hy/In each with one injected
failure, across checkpoint periods 2-6 (Case 2); Un/Hy reduce the total time
by ~3.05-3.28 % vs Co and track In (the consistency-unsafe lower bound)
almost exactly.

The paper's Fig. 9(e) percentages correspond to a failure in the dominant
component (the 256-core simulation, 80 % of application cores), so the
headline comparison injects a simulation failure mid-run; a consumer-victim
variant is also reported for completeness.
"""

import pytest

from repro.analysis import ComparisonRow, comparison_table, format_table
from repro.analysis.paper import FIG9E_IMPROVEMENT_PCT
from repro.perfsim import PRODUCER, CONSUMER, SimFailure, simulate, table2_config

from benchmarks.conftest import emit

PERIODS = (2, 3, 4, 5, 6)
SCHEMES = ("coordinated", "uncoordinated", "hybrid", "individual")


FAILURE_STEPS = (9, 13, 17, 21)


def run_fig9e():
    out = {}
    for period in PERIODS:
        cfg = table2_config(checkpoint_period=period)
        times = {"ds": simulate(cfg, "ds").total_time}
        for scheme in SCHEMES:
            # Average over failure placements to smooth the lost-work jitter
            # (the paper reports one random placement per bar).
            totals = [
                simulate(cfg, scheme, failures=[SimFailure(PRODUCER, s)]).total_time
                for s in FAILURE_STEPS
            ]
            times[scheme] = sum(totals) / len(totals)
        out[period] = times
    # Consumer-victim variant at the Table II period.
    cfg = table2_config()
    ana_failure = [SimFailure(CONSUMER, 17)]
    out["consumer_victim"] = {
        scheme: simulate(cfg, scheme, failures=ana_failure).total_time
        for scheme in SCHEMES
    }
    return out


def improvement(times):
    return (times["coordinated"] - times["uncoordinated"]) / times["coordinated"] * 100


def test_fig9e_total_workflow_time(once):
    results = once(run_fig9e)

    rows = [
        ComparisonRow(f"period {p} ts", FIG9E_IMPROVEMENT_PCT[p], improvement(results[p]))
        for p in PERIODS
    ]
    text = comparison_table(
        "Fig 9(e): Un vs Co total-time reduction, one simulation failure", rows
    )
    table_rows = []
    for p in PERIODS:
        t = results[p]
        table_rows.append(
            [f"{p} ts"]
            + [f"{t[k]:.1f}" for k in ("ds", "coordinated", "uncoordinated", "hybrid", "individual")]
        )
    text += "\n" + format_table(
        ["period", "Ds", "Co+1f", "Un+1f", "Hy+1f", "In+1f"], table_rows
    )
    cons = results["consumer_victim"]
    text += (
        f"\nconsumer-victim variant: Co {cons['coordinated']:.1f} s vs "
        f"Un {cons['uncoordinated']:.1f} s "
        f"({(cons['coordinated'] - cons['uncoordinated']) / cons['coordinated'] * 100:.1f} % faster; "
        f"replication failover in Hy: {cons['hybrid']:.1f} s)"
    )
    emit("fig9e_total_time", text)

    for p in PERIODS:
        t = results[p]
        # Ordering: failure-free Ds fastest; Co slowest; Un ~ Hy ~ In.
        assert t["ds"] < t["uncoordinated"] < t["coordinated"]
        assert t["hybrid"] < t["coordinated"]
        assert t["individual"] < t["coordinated"]
        # Improvement stays in the single-digit band around the paper's
        # ~3.0-3.3 %. Our per-period profile tilts (coordinated barrier
        # drain scales with checkpoint frequency; the paper's curve is
        # flat) — see EXPERIMENTS.md — so the band is asserted per period
        # and the exact value only at the Table II operating point.
        assert 1.0 < improvement(t) < 8.0
    assert improvement(results[4]) == pytest.approx(FIG9E_IMPROVEMENT_PCT[4], abs=2.0)
    mean_improvement = sum(improvement(results[p]) for p in PERIODS) / len(PERIODS)
    paper_mean = sum(FIG9E_IMPROVEMENT_PCT.values()) / len(FIG9E_IMPROVEMENT_PCT)
    assert mean_improvement == pytest.approx(paper_mean, abs=2.0)
    # Consumer failures: replication (Hy) recovers fastest of all.
    assert cons["hybrid"] <= min(cons["uncoordinated"], cons["coordinated"])
