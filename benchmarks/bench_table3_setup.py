"""Table III — scalability test configuration (704 to 11264 cores).

Regenerates the paper's Table III rows from :func:`table3_config` and checks
core splits, data volumes, checkpoint periods and the MTBF/failure mapping.
"""

from repro.analysis import banner, format_table
from repro.analysis.paper import TABLE3_SETUP
from repro.perfsim import TABLE3_MTBF, TABLE3_SCALES, table3_config
from repro.util.units import GIB

from benchmarks.conftest import emit


def build_rows():
    rows = []
    for scale in TABLE3_SCALES:
        cfg = table3_config(scale)
        paper = TABLE3_SETUP[scale]
        rows.append(
            [
                scale,
                f"{paper['sim']}/{cfg.sim_cores}",
                f"{paper['staging']}/{cfg.staging_cores}",
                f"{paper['analytic']}/{cfg.analytic_cores}",
                f"{paper['data_gib']}/{round(cfg.bytes_per_step * 40 / GIB)}",
                f"{8}/{cfg.sim_checkpoint_period}",
                f"{10}/{cfg.analytic_checkpoint_period}",
            ]
        )
    return rows


def test_table3_setup(once):
    rows = once(build_rows)
    text = banner("Table III: scalability setup, paper/library per cell") + "\n"
    text += format_table(
        ["cores", "sim", "staging", "analytic", "GiB/40ts", "sim ckpt", "ana ckpt"],
        rows,
    )
    text += "\nMTBF mapping (s -> failures): " + ", ".join(
        f"{int(mtbf)}s -> {n}f" for n, mtbf in sorted(TABLE3_MTBF.items())
    )
    emit("table3_setup", text)
    for row in rows:
        for cell in row[1:]:
            paper_val, ours = str(cell).split("/")
            assert paper_val == ours
