"""Figure 9(d) — staging memory usage vs checkpoint period, Case 2.

"Since the less frequent checkpoint indicates the longer data/event queue
size in staging area, the higher storage cost can be expected": the paper
reports +76/79/84/89/97 % for checkpoint periods 2-6.

Known deviation (documented in EXPERIMENTS.md): our retention window tracks
the consumer's checkpoint period linearly, so the measured overhead grows
more steeply than the paper's (+~32 % at period 2 to +~132 % at period 6),
matching exactly at the Table II operating point (period 4, +84 %). The
qualitative claim — monotonic growth with the period — holds.
"""

import pytest

from repro.analysis import ComparisonRow, comparison_table
from repro.analysis.paper import FIG9D_MEMORY_OVERHEAD_PCT
from repro.perfsim import simulate, table2_config

from benchmarks.conftest import emit

PERIODS = (2, 3, 4, 5, 6)


def run_case2_memory():
    out = {}
    for period in PERIODS:
        cfg = table2_config(checkpoint_period=period)
        ds = simulate(cfg, "ds")
        un = simulate(cfg, "uncoordinated")
        out[period] = (un.mean_memory / ds.mean_memory - 1.0) * 100.0
    return out


def test_fig9d_memory_by_checkpoint_period(once):
    results = once(run_case2_memory)
    rows = [
        ComparisonRow(f"period {p} ts", FIG9D_MEMORY_OVERHEAD_PCT[p], results[p])
        for p in sorted(results)
    ]
    text = comparison_table(
        "Fig 9(d): staging memory increase vs checkpoint period (Case 2)", rows
    )
    emit("fig9d_memory_case2", text)

    # Monotonic growth with the checkpoint period (the paper's claim).
    values = [results[p] for p in PERIODS]
    assert values == sorted(values)
    # Exact agreement at the paper's Table II operating point (period 4).
    assert results[4] == pytest.approx(FIG9D_MEMORY_OVERHEAD_PCT[4], abs=8.0)
