"""Recovery-engine microbenchmarks: restart, replay, rebuild, restore.

Measures the four layers the parallel-recovery PR touches, each against its
serial seed path (``parallel=False`` / per-codeword decode):

* **decode batching** — ``RSCode.decode_batch`` MB/s over many erased
  codewords vs a per-codeword decode loop, plus ``encode_batch`` on the
  same payloads (the design target: batched decode within 2x of encode
  throughput, since both reduce to one stacked GF(256) matmul).
* **rebuild** — :func:`repro.staging.resilience.rebuild_server` pipelined
  (survivor fetches for batch N+1 overlap decode/store of batch N, matrix
  solves amortised per batch) vs the serial record-at-a-time path.
* **restore** — rolling a populated synchronized service back to an
  incremental CoW snapshot with the per-server fan-out vs serially.
* **restart** — ``workflow_restart`` + full replay-script drain with
  per-variable partitioned cursors vs the strict global-order script.

Results feed the ``recovery`` section of ``BENCH_micro.json`` (via
``bench_microbench.py``) and the advisory bench guard. Run directly::

    PYTHONPATH=src python benchmarks/bench_recovery.py
"""

from __future__ import annotations

import sys
from time import perf_counter

import numpy as np

from repro.core import WorkflowStaging
from repro.corec.reedsolomon import RSCode
from repro.descriptors import ObjectDescriptor
from repro.errors import ReplayError
from repro.geometry import Domain
from repro.runtime.staging_service import SynchronizedStaging
from repro.staging import (
    ProtectionConfig,
    RetryPolicy,
    StagingClient,
    StagingGroup,
)
from repro.staging.resilience import rebuild_server

MB = 1024 * 1024

# Decode batch: many small codewords (the realistic rebuild shape — one
# codeword per record, thousands of records), worst-case (all-data)
# erasures. Small payloads make the per-codeword solve overhead visible;
# large payloads are matmul-bound and batching is already amortised.
DECODE_K, DECODE_M = 4, 2
DECODE_CODEWORDS = 512
DECODE_PAYLOAD_BYTES = 8 * 1024
DECODE_REPS = 3

# Rebuild: one protected variable, many small records (several batches) —
# the shape where per-record matrix solves dominate and batching pays.
REBUILD_DOMAIN = Domain((16, 16, 8))  # 16 KiB per version
REBUILD_VERSIONS = 96
REBUILD_BATCH = 16
REBUILD_REPS = 3

# Restore: a populated logged service rolled back to an incremental delta.
RESTORE_DOMAIN = Domain((16, 16, 8))
RESTORE_VERSIONS = 96
RESTORE_CHURN = 12
RESTORE_REPS = 5

# Restart: replay-script build + drain over many logged get events.
RESTART_NAMES = tuple(f"var{i}" for i in range(8))
RESTART_VERSIONS = 40
RESTART_REPS = 5


def _timed(fn, *args) -> float:
    t0 = perf_counter()
    fn(*args)
    return perf_counter() - t0


def _best_of(reps: int, fn, *args) -> float:
    fn(*args)  # warmup
    return min(_timed(fn, *args) for _ in range(reps))


# ------------------------------------------------------------- decode batching


def bench_decode() -> dict:
    code = RSCode(DECODE_K, DECODE_M)
    rng = np.random.default_rng(11)
    payloads = [
        rng.integers(0, 256, size=DECODE_PAYLOAD_BYTES, dtype=np.uint8)
        for _ in range(DECODE_CODEWORDS)
    ]
    mbytes = DECODE_CODEWORDS * DECODE_PAYLOAD_BYTES / MB

    t_enc = _best_of(DECODE_REPS, code.encode_batch, payloads)

    # Worst-case erasures (m *data* shards lost -> full inverse matmul),
    # with the lost pair rotating so the batch spans several patterns.
    codewords = []
    for i, shards in enumerate(code.encode_batch(payloads)):
        lost = {i % DECODE_K, (i + 1) % DECODE_K}
        codewords.append([s for s in shards if s.index not in lost])
    lens = [p.nbytes for p in payloads]

    t_batch = _best_of(DECODE_REPS, code.decode_batch, codewords, lens)

    def looped() -> None:
        for cw, n in zip(codewords, lens):
            code.decode(cw, n)

    t_loop = _best_of(DECODE_REPS, looped)

    return {
        f"decode({DECODE_K},{DECODE_M})": {
            "codewords": DECODE_CODEWORDS,
            "payload_kb": DECODE_PAYLOAD_BYTES // 1024,
            "batch_MBps": round(mbytes / t_batch, 1),
            "looped_MBps": round(mbytes / t_loop, 1),
            "batch_speedup": round(t_loop / t_batch, 2),
            "encode_batch_MBps": round(mbytes / t_enc, 1),
            "decode_vs_encode": round(t_enc / t_batch, 2),
        }
    }


# --------------------------------------------------------------------- rebuild


def _protected_group() -> tuple[StagingGroup, int]:
    group = StagingGroup.create(
        REBUILD_DOMAIN,
        num_servers=4,
        protection=ProtectionConfig(mode="rs", parity=2),
        retry=RetryPolicy(base_backoff=0.001, max_backoff=0.004),
    )
    client = StagingClient(group)
    rng = np.random.default_rng(13)
    for v in range(REBUILD_VERSIONS):
        desc = ObjectDescriptor("field", v, REBUILD_DOMAIN.bbox)
        client.put(desc, rng.standard_normal(REBUILD_DOMAIN.shape))
    (rec,) = group.records.for_key("field", 0)
    return group, rec.shards[0].server


def bench_rebuild() -> dict:
    def rebuild(parallel: bool) -> tuple[float, int]:
        best, rebuilt = None, 0
        for _ in range(REBUILD_REPS):
            group, lost = _protected_group()  # fresh group per rep
            t0 = perf_counter()
            rebuilt = rebuild_server(
                group, lost, parallel=parallel, batch_size=REBUILD_BATCH
            )
            dt = perf_counter() - t0
            best = dt if best is None else min(best, dt)
        return best, rebuilt

    t_serial, rebuilt = rebuild(parallel=False)
    t_pipe, _ = rebuild(parallel=True)
    return {
        "rebuild": {
            "records": REBUILD_VERSIONS,
            "rebuilt_mb": round(rebuilt / MB, 2),
            "pipelined_MBps": round(rebuilt / MB / t_pipe, 1),
            "serial_MBps": round(rebuilt / MB / t_serial, 1),
            "speedup": round(t_serial / t_pipe, 2),
        }
    }


# --------------------------------------------------------------------- restore


def _service_with_delta(parallel: bool) -> tuple[SynchronizedStaging, dict]:
    # Producer-only logged service: retention keeps every version resident.
    group = StagingGroup.create(RESTORE_DOMAIN, num_servers=4, parallel=parallel)
    svc = SynchronizedStaging(
        WorkflowStaging(group, enable_logging=True),
        poll_timeout=0.05,
        max_wait=30.0,
        parallel=parallel,
    )
    svc.register("sim")
    rng = np.random.default_rng(17)

    def put(v: int) -> None:
        desc = ObjectDescriptor("field", v, RESTORE_DOMAIN.bbox)
        svc.put("sim", desc, rng.standard_normal(RESTORE_DOMAIN.shape), step=v)

    for v in range(RESTORE_VERSIONS):
        put(v)
    svc.snapshot()  # base capture; starts the mutation journals
    for v in range(RESTORE_VERSIONS, RESTORE_VERSIONS + RESTORE_CHURN):
        put(v)
    return svc, svc.snapshot()


def bench_restore() -> dict:
    out = {}
    for key, parallel in (("serial_restores_per_s", False), ("restores_per_s", True)):
        svc, snap = _service_with_delta(parallel)
        t = _best_of(RESTORE_REPS, svc.restore, snap)
        svc.shutdown()
        out[key] = round(1.0 / t, 1)
    return {
        "restore": {
            "versions": RESTORE_VERSIONS + RESTORE_CHURN,
            "servers": 4,
            **out,
            "speedup": round(
                out["restores_per_s"] / out["serial_restores_per_s"], 2
            ),
        }
    }


# --------------------------------------------------------------------- restart


def bench_restart() -> dict:
    group = StagingGroup.create(RESTORE_DOMAIN, num_servers=4)
    svc = SynchronizedStaging(
        WorkflowStaging(group, enable_logging=True),
        poll_timeout=0.05,
        max_wait=30.0,
        max_ahead=RESTART_VERSIONS + 1,
    )
    svc.register("sim")
    svc.register("ana")
    for name in RESTART_NAMES:
        svc.declare_coupling(name, "ana")
    rng = np.random.default_rng(19)
    for v in range(RESTART_VERSIONS):
        for name in RESTART_NAMES:
            desc = ObjectDescriptor(name, v, RESTORE_DOMAIN.bbox)
            svc.put("sim", desc, rng.standard_normal(RESTORE_DOMAIN.shape), step=v)
            svc.get_blocking("ana", desc, step=v)
    descs = {n: ObjectDescriptor(n, 0, RESTORE_DOMAIN.bbox) for n in RESTART_NAMES}

    def restart_and_drain(partitioned: bool) -> None:
        svc.staging.replay_partitioned = partitioned
        script = svc.workflow_restart("ana", 0)
        if not partitioned:
            while not script.exhausted:
                script.advance()
            return
        names = script.partition_names()
        while not script.exhausted:
            for n in names:
                try:
                    script.consume(descs[n])
                except ReplayError:
                    continue

    events = len(svc.workflow_restart("ana", 0).events)
    t_serial = _best_of(RESTART_REPS, restart_and_drain, False)
    t_part = _best_of(RESTART_REPS, restart_and_drain, True)
    svc.staging.replay_partitioned = False
    svc.shutdown()
    return {
        "restart": {
            "events": events,
            "partitions": len(RESTART_NAMES),
            "restarts_per_s": round(1.0 / t_part, 1),
            "serial_restarts_per_s": round(1.0 / t_serial, 1),
            "speedup": round(t_serial / t_part, 2),
        }
    }


# ------------------------------------------------------------------------ main


def bench_recovery() -> dict:
    out = {}
    out.update(bench_decode())
    out.update(bench_rebuild())
    out.update(bench_restore())
    out.update(bench_restart())
    return out


def main() -> int:
    results = bench_recovery()
    dec = results[f"decode({DECODE_K},{DECODE_M})"]
    print(
        f"decode({DECODE_K},{DECODE_M}) x{dec['codewords']}: "
        f"batch {dec['batch_MBps']:.0f} MB/s "
        f"(looped {dec['looped_MBps']:.0f}, x{dec['batch_speedup']:.1f}); "
        f"encode_batch {dec['encode_batch_MBps']:.0f} MB/s "
        f"(decode/encode {dec['decode_vs_encode']:.2f})"
    )
    reb = results["rebuild"]
    print(
        f"rebuild {reb['records']} records ({reb['rebuilt_mb']:.1f} MB): "
        f"pipelined {reb['pipelined_MBps']:.0f} MB/s "
        f"(serial {reb['serial_MBps']:.0f}, x{reb['speedup']:.1f})"
    )
    res = results["restore"]
    print(
        f"restore {res['versions']} versions over {res['servers']} servers: "
        f"{res['restores_per_s']:.1f}/s "
        f"(serial {res['serial_restores_per_s']:.1f}, x{res['speedup']:.1f})"
    )
    rst = results["restart"]
    print(
        f"restart+drain {rst['events']} events, {rst['partitions']} partitions: "
        f"{rst['restarts_per_s']:.1f}/s "
        f"(serial {rst['serial_restarts_per_s']:.1f}, x{rst['speedup']:.1f})"
    )
    # Advisory targets (never a hard failure: the sustained checks live in
    # the bench guard, and wall-clock parallel speedups depend on cores).
    if dec["decode_vs_encode"] < 0.5:
        print(
            "WARNING: batched decode fell below half of encode_batch "
            f"throughput (ratio {dec['decode_vs_encode']:.2f})"
        )
    if reb["speedup"] < 1.0:
        print(
            f"WARNING: pipelined rebuild slower than serial (x{reb['speedup']:.2f})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
