"""Figure 10 — total workflow time under 1-3 failures at 704-11264 cores.

The paper: "workflow-level uncoordinated checkpoint reduced the total
execution time by up to 7.89 %, 10.48 %, 11.5 %, 12.03 %, and 13.48 % on
704, 1408, 2816, 5632, and 11264 cores ... in comparison to global
coordinated checkpoint."

Failures are sampled per the paper's model (victim weighted by core count,
step uniform); we average over seeds per (scale, failure-count) cell and
report the 3-failure column against the paper's "up to" numbers.

Known deviation (documented in EXPERIMENTS.md): the growth with scale is
flatter here (~7.5 % -> ~10 %) than the paper's (7.89 % -> 13.48 %) because
our weak-scaling model keeps per-step costs constant across scales; the
scale-dependent penalty we do model (PFS storms for the coordinated
scheme's staging-inclusive snapshots) reproduces the direction.
"""

import pytest

from repro.analysis import ComparisonRow, comparison_table, format_table
from repro.analysis.paper import FIG10_MAX_IMPROVEMENT_PCT
from repro.perfsim import TABLE3_SCALES, sample_failures, simulate, table3_config

from benchmarks.conftest import emit

SEEDS = range(6)
FAILURE_COUNTS = (1, 2, 3)


def run_fig10():
    grid = {}
    for scale in TABLE3_SCALES:
        cfg = table3_config(scale)
        for count in FAILURE_COUNTS:
            gaps = []
            co_total = un_total = 0.0
            for seed in SEEDS:
                failures = sample_failures(cfg, count, seed=seed)
                co = simulate(cfg, "coordinated", failures=failures).total_time
                un = simulate(cfg, "uncoordinated", failures=failures).total_time
                gaps.append((co - un) / co * 100)
                co_total += co
                un_total += un
            grid[(scale, count)] = (
                sum(gaps) / len(gaps),
                co_total / len(gaps),
                un_total / len(gaps),
            )
    return grid


def test_fig10_scalability(once):
    grid = once(run_fig10)

    rows = [
        ComparisonRow(
            f"{scale} cores, 3 failures",
            FIG10_MAX_IMPROVEMENT_PCT[scale],
            grid[(scale, 3)][0],
        )
        for scale in TABLE3_SCALES
    ]
    text = comparison_table(
        "Fig 10: Un vs Co total-time reduction (mean over seeds)", rows
    )
    detail = []
    for scale in TABLE3_SCALES:
        detail.append(
            [scale]
            + [f"{grid[(scale, c)][0]:.2f}%" for c in FAILURE_COUNTS]
            + [f"{grid[(scale, 3)][1]:.0f}s/{grid[(scale, 3)][2]:.0f}s"]
        )
    text += "\n" + format_table(
        ["cores", "1f", "2f", "3f", "Co/Un total @3f"], detail
    )
    emit("fig10_scalability", text)

    # Shape assertions.
    for scale in TABLE3_SCALES:
        gaps = [grid[(scale, c)][0] for c in FAILURE_COUNTS]
        # Un always wins, and its advantage grows with the failure count.
        assert all(g > 0 for g in gaps)
        assert gaps[0] < gaps[-1]
    # Advantage grows with scale (flatter than the paper; see module doc).
    assert grid[(11264, 3)][0] > grid[(704, 3)][0]
    # The smallest scale lands near the paper's 7.89 %.
    assert grid[(704, 3)][0] == pytest.approx(FIG10_MAX_IMPROVEMENT_PCT[704], abs=2.5)
