"""Ablation — staging-area data resilience: replication vs erasure coding.

The paper delegates staging resilience to CoREC ("data staging can contain
data resilience mechanism such as data replication or erasure coding").
This bench measures the actual trade-off on our CoREC substrate: storage
overhead and encode/recover throughput of 2x/3x replication, RS(4,2),
RS(8,3), and the hybrid hot/cold policy. These are real pytest-benchmark
micro-benchmarks over NumPy payloads.
"""

import numpy as np
import pytest

from repro.analysis import banner, format_table
from repro.corec import HybridPolicy, RSCode, ReplicationScheme

from benchmarks.conftest import emit

PAYLOAD = np.random.default_rng(7).standard_normal(1 << 18)  # 2 MiB float64


def encode_rs(code: RSCode):
    return code.encode(PAYLOAD.view(np.uint8))


def recover_rs(code: RSCode, shards):
    return code.decode(shards[code.m :], PAYLOAD.nbytes)


@pytest.mark.parametrize("k,m", [(4, 2), (8, 3)])
def test_rs_encode_throughput(benchmark, k, m):
    code = RSCode(k, m)
    shards = benchmark(encode_rs, code)
    assert len(shards) == k + m


@pytest.mark.parametrize("k,m", [(4, 2), (8, 3)])
def test_rs_worstcase_decode_throughput(benchmark, k, m):
    code = RSCode(k, m)
    shards = encode_rs(code)
    out = benchmark(recover_rs, code, shards)
    assert out == PAYLOAD.view(np.uint8).tobytes()


def test_resilience_storage_tradeoff(once):
    def run():
        rows = []
        for name, overhead, tolerates in (
            ("replication x2", ReplicationScheme(2).storage_overhead, 1),
            ("replication x3", ReplicationScheme(3).storage_overhead, 2),
            ("RS(4,2)", RSCode(4, 2).storage_overhead, 2),
            ("RS(8,3)", RSCode(8, 3).storage_overhead, 3),
        ):
            rows.append([name, f"{overhead * 100:.0f}%", tolerates])
        # Hybrid policy measured on a realistic version stream.
        hp = HybridPolicy(hot_versions=1)
        for v in range(8):
            hp.protect("field", v, PAYLOAD)
        rows.append(["CoREC hybrid (1 hot)", f"{hp.overhead() * 100:.0f}%", "1-2"])
        return rows

    rows = once(run)
    text = banner("Ablation: staging resilience storage overhead vs failures tolerated") + "\n"
    text += format_table(["mechanism", "storage overhead", "server losses tolerated"], rows)
    emit("ablation_staging_resilience", text)

    overheads = {r[0]: float(r[1].rstrip("%")) for r in rows}
    # Erasure coding strictly cheaper than replication at equal tolerance.
    assert overheads["RS(4,2)"] < overheads["replication x3"]
    # The hybrid lands between pure RS and pure replication.
    assert overheads["RS(4,2)"] < overheads["CoREC hybrid (1 hot)"] < overheads["replication x2"]
