"""Figure 9(c) — staging memory usage, Case 1.

The paper reports data/event logging increases staging memory usage by
+81/82/84/86/86 % over the original data staging for 20-100 % subsets.
We compare the time-weighted mean staging memory of the logging run against
the original-staging run at each subset.
"""

import pytest

from repro.analysis import ComparisonRow, comparison_table
from repro.analysis.paper import FIG9C_MEMORY_OVERHEAD_PCT
from repro.perfsim import simulate, table2_config
from repro.util.units import GIB

from benchmarks.conftest import emit

SUBSETS = (0.2, 0.4, 0.6, 0.8, 1.0)


def run_case1_memory():
    out = {}
    for frac in SUBSETS:
        cfg = table2_config(subset_fraction=frac)
        ds = simulate(cfg, "ds")
        un = simulate(cfg, "uncoordinated")
        out[int(frac * 100)] = (
            (un.mean_memory / ds.mean_memory - 1.0) * 100.0,
            ds.mean_memory,
            un.mean_memory,
        )
    return out


def test_fig9c_memory_overhead(once):
    results = once(run_case1_memory)
    rows = [
        ComparisonRow(f"{pct}% subset", FIG9C_MEMORY_OVERHEAD_PCT[pct], results[pct][0])
        for pct in sorted(results)
    ]
    text = comparison_table(
        "Fig 9(c): staging memory increase of data/event logging (Case 1)", rows
    )
    text += "\n" + "\n".join(
        f"  {pct}%: Ds mean {results[pct][1] / GIB:.2f} GiB -> logging "
        f"{results[pct][2] / GIB:.2f} GiB"
        for pct in sorted(results)
    )
    emit("fig9c_memory_case1", text)

    for pct, paper_val in FIG9C_MEMORY_OVERHEAD_PCT.items():
        assert results[pct][0] == pytest.approx(paper_val, abs=8.0)
