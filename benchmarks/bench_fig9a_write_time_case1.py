"""Figure 9(a) — cumulative write response time, Case 1.

Case 1 writes 20-100 % subsets of the data domain each step. The paper
reports that data/event logging increases the write response time by
+10/12/14/14/15 % over the original data staging. This bench runs the
simulated Table II workflow at each subset and compares.
"""

import pytest

from repro.analysis import ComparisonRow, comparison_table
from repro.analysis.paper import FIG9A_WRITE_OVERHEAD_PCT
from repro.perfsim import simulate, table2_config

from benchmarks.conftest import emit

SUBSETS = (0.2, 0.4, 0.6, 0.8, 1.0)


def run_case1():
    out = {}
    for frac in SUBSETS:
        cfg = table2_config(subset_fraction=frac)
        ds = simulate(cfg, "ds")
        un = simulate(cfg, "uncoordinated")
        overhead = (
            un.cumulative_write_response / ds.cumulative_write_response - 1.0
        ) * 100.0
        out[int(frac * 100)] = (overhead, ds.cumulative_write_response, un.cumulative_write_response)
    return out


def test_fig9a_write_response_overhead(once):
    results = once(run_case1)
    rows = [
        ComparisonRow(
            f"{pct}% subset", FIG9A_WRITE_OVERHEAD_PCT[pct], results[pct][0]
        )
        for pct in sorted(results)
    ]
    text = comparison_table(
        "Fig 9(a): write response time increase of data/event logging (Case 1)",
        rows,
    )
    text += "\n" + "\n".join(
        f"  {pct}%: Ds cumulative {results[pct][1]:.2f} s -> logging {results[pct][2]:.2f} s"
        for pct in sorted(results)
    )
    emit("fig9a_write_time_case1", text)

    # Shape: overhead within a few points of the paper, rising with subset.
    for pct, paper_val in FIG9A_WRITE_OVERHEAD_PCT.items():
        assert results[pct][0] == pytest.approx(paper_val, abs=3.0)
    measured = [results[pct][0] for pct in sorted(results)]
    assert measured[0] < measured[-1]
