"""Figure 9(a) — cumulative write response time, Case 1.

Case 1 writes 20-100 % subsets of the data domain each step. The paper
reports that data/event logging increases the write response time by
+10/12/14/14/15 % over the original data staging. This bench runs the
simulated Table II workflow at each subset and compares.
"""

from time import perf_counter

import pytest

from repro import obs
from repro.analysis import ComparisonRow, comparison_table
from repro.analysis.paper import FIG9A_WRITE_OVERHEAD_PCT
from repro.perfsim import simulate, table2_config

from benchmarks.conftest import emit

SUBSETS = (0.2, 0.4, 0.6, 0.8, 1.0)


def run_case1():
    out = {}
    for frac in SUBSETS:
        cfg = table2_config(subset_fraction=frac)
        ds = simulate(cfg, "ds")
        un = simulate(cfg, "uncoordinated")
        overhead = (
            un.cumulative_write_response / ds.cumulative_write_response - 1.0
        ) * 100.0
        out[int(frac * 100)] = (overhead, ds.cumulative_write_response, un.cumulative_write_response)
    return out


def test_fig9a_write_response_overhead(once):
    results = once(run_case1)
    rows = [
        ComparisonRow(
            f"{pct}% subset", FIG9A_WRITE_OVERHEAD_PCT[pct], results[pct][0]
        )
        for pct in sorted(results)
    ]
    text = comparison_table(
        "Fig 9(a): write response time increase of data/event logging (Case 1)",
        rows,
    )
    text += "\n" + "\n".join(
        f"  {pct}%: Ds cumulative {results[pct][1]:.2f} s -> logging {results[pct][2]:.2f} s"
        for pct in sorted(results)
    )
    emit("fig9a_write_time_case1", text)

    # Shape: overhead within a few points of the paper, rising with subset.
    for pct, paper_val in FIG9A_WRITE_OVERHEAD_PCT.items():
        assert results[pct][0] == pytest.approx(paper_val, abs=3.0)
    measured = [results[pct][0] for pct in sorted(results)]
    assert measured[0] < measured[-1]


def test_obs_instrumentation_overhead():
    """repro.obs must not tax the hot paths it observes.

    Runs the same Case-1 simulation with metrics recording enabled and
    disabled, interleaved, and compares best-of-N wall times (min is the
    standard low-noise estimator for identical deterministic work). The
    acceptance budget is 5 %.
    """
    cfg = table2_config(subset_fraction=0.2)
    simulate(cfg, "uncoordinated")  # warmup: JIT-free, but primes caches

    def time_once() -> float:
        t0 = perf_counter()
        simulate(cfg, "uncoordinated")
        return perf_counter() - t0

    rounds = 7
    on, off = [], []
    try:
        for _ in range(rounds):
            obs.set_enabled(True)
            on.append(time_once())
            obs.set_enabled(False)
            off.append(time_once())
    finally:
        obs.set_enabled(True)

    best_on, best_off = min(on), min(off)
    overhead_pct = (best_on / best_off - 1.0) * 100.0
    emit(
        "obs_overhead",
        "Instrumentation overhead: Case 1 (20% subset), uncoordinated scheme\n"
        f"  metrics disabled: best of {rounds} = {best_off * 1e3:.2f} ms\n"
        f"  metrics enabled:  best of {rounds} = {best_on * 1e3:.2f} ms\n"
        f"  overhead: {overhead_pct:+.2f}% (budget: +5%)",
    )
    assert overhead_pct < 5.0
