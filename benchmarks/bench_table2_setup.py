"""Table II — experimental setup for the synthetic test cases.

Regenerates the paper's Table II from the library's configuration objects
and checks every row against the published values.
"""

from repro.analysis import banner, format_table
from repro.analysis.paper import TABLE2_SETUP
from repro.perfsim import TABLE2
from repro.util.units import GIB

from benchmarks.conftest import emit


def build_rows():
    cfg = TABLE2
    return [
        ["Total No. of cores", TABLE2_SETUP["total_cores"], cfg.total_cores],
        ["No. of simulation cores", TABLE2_SETUP["sim_cores"], cfg.sim_cores],
        ["No. of staging cores", TABLE2_SETUP["staging_cores"], cfg.staging_cores],
        ["No. of analytic cores", TABLE2_SETUP["analytic_cores"], cfg.analytic_cores],
        ["Volume size", "512x512x256", "x".join(map(str, cfg.domain_shape))],
        ["Data size (40 ts, GiB)", TABLE2_SETUP["data_40ts_gib"], round(cfg.bytes_per_step * 40 / GIB)],
        ["Coordinated ckpt period (ts)", TABLE2_SETUP["coordinated_period"], cfg.coordinated_checkpoint_period],
        ["Simulation ckpt period (ts)", TABLE2_SETUP["sim_period"], cfg.sim_checkpoint_period],
        ["Analytic ckpt period (ts)", TABLE2_SETUP["analytic_period"], cfg.analytic_checkpoint_period],
    ]


def test_table2_setup(once):
    rows = once(build_rows)
    text = banner("Table II: synthetic test case setup (paper vs library)") + "\n"
    text += format_table(["parameter", "paper", "library"], rows)
    emit("table2_setup", text)
    for _, paper_val, ours in rows:
        assert str(paper_val) == str(ours)
