"""Transport microbenchmark: inproc vs TCP vs shm, and what batching buys.

Measurements feeding the ``transport`` section of BENCH_micro.json:

* **put/get throughput per transport** — the same coupling hot loop the
  staging bench drives, over in-process method calls, real sockets, and
  the shared-memory data plane. The tcp/inproc gap is the wire tax
  (framing, codec, syscalls); the shm/tcp gap is what zero-copy segments
  buy. The guard watches every row so protocol regressions (extra copies,
  lost batching, chattier handshakes) show up as throughput drops.
* **large-payload tcp vs shm** — the same loop at a 16 MiB object
  (8 MiB per server shard), where byte movement rather than per-op
  overhead dominates. This is the row the shm transport exists for: it
  must stay ≥3× the TCP rate (the segment path skips both kernel socket
  copies per payload).
* **batched vs per-fragment puts over TCP** — ``put_many`` ships N
  fragments in one pipelined frame; the unbatched loop pays one round trip
  per fragment. Reported with the measured round-trip counts from the
  ``net.tcp.requests`` counter, not an assumption.
* **mux vs pooled under concurrency** — 8 client threads hammering small
  ops against one server, three ways: the multiplexed v2 path (all
  threads share **one** socket; request-id demux, coalesced ``sendmsg``
  writes, out-of-order completion), the v1 pooled path at the *same
  socket budget* (``REPRO_MUX=0 REPRO_TCP_POOL_CAP=1``: one lockstep
  socket, callers serialize on it), and the unconstrained v1 pool
  (``REPRO_MUX=0``: one socket per concurrent caller). The headline
  ratio is the equal-budget one — lockstep admits one request per
  socket per round trip, so at one socket it serializes 8 callers while
  the mux keeps all 8 in flight; the unconstrained row shows the mux
  matching the 8-socket pool's throughput on 1/8 the sockets. The guard
  watches all three rows. Note the ratios are host-shaped: with client
  and server pinned to a single core (the CI container), nothing
  overlaps — every config pays the same summed per-op CPU and the
  equal-budget gap compresses to the syscall/handoff savings. On
  multi-core hosts the serialized path additionally idles the server
  between round trips, and the gap widens toward the ≥2× the mux
  design targets.

Run directly::

    PYTHONPATH=src python benchmarks/bench_transport.py

or as part of ``benchmarks/bench_microbench.py``.
"""

from __future__ import annotations

import os
import sys
import threading
from time import perf_counter

import numpy as np

from repro.descriptors import ObjectDescriptor
from repro.geometry import BBox, Domain
from repro.obs import get_registry
from repro.staging import StagingClient, StagingGroup

DOMAIN = Domain((16, 16, 8))
# Large-payload comparison: 16 MiB objects (8 MiB per server shard) make the
# byte-movement cost dominate per-op overhead — the regime shm targets.
LARGE_DOMAIN = Domain((128, 128, 128))
NUM_SERVERS = 2
OPS = 40  # put+get pairs per timed run
LARGE_OPS = 6
BATCH_FRAGMENTS = 32
BATCH_REPS = 5
FRAG_BOX = BBox((0, 0, 0), (8, 8, 8))
MUX_THREADS = 8
MUX_OPS_PER_THREAD = 60
MUX_BOX = BBox((0, 0, 0), (8, 8, 8))  # 4 KiB ops: the syscall-bound regime


def _timed(fn, *args) -> float:
    t0 = perf_counter()
    fn(*args)
    return perf_counter() - t0


def _request_count() -> int:
    counter = get_registry().get("net.tcp.requests")
    return 0 if counter is None else counter.value


def _drive(client: StagingClient, domain, payloads: list[np.ndarray], base: int) -> None:
    for i, data in enumerate(payloads):
        desc = ObjectDescriptor("field", base + i, domain.bbox)
        client.put(desc, data)
        client.get(desc)


def _bench_put_get(transport: str, domain=DOMAIN, ops: int = OPS) -> float:
    group = StagingGroup.create(domain, num_servers=NUM_SERVERS, transport=transport)
    try:
        client = StagingClient(group, client_id="bench")
        rng = np.random.default_rng(11)
        payloads = [rng.standard_normal(domain.shape) for _ in range(ops)]
        warm = min(4, ops)
        _drive(client, domain, payloads[:warm], base=0)  # warmup: connections, pools
        elapsed = _timed(_drive, client, domain, payloads, ops)
        return 2 * ops / elapsed
    finally:
        group.close()


def _bench_batching() -> dict:
    """Same N fragments to one TCP server: one pipelined frame vs N RPCs."""
    group = StagingGroup.create(DOMAIN, num_servers=1, transport="tcp")
    try:
        server = group.servers[0]
        rng = np.random.default_rng(13)
        payload = rng.standard_normal(FRAG_BOX.shape)

        def shards(base: int) -> list:
            return [
                (ObjectDescriptor("b", base + v, FRAG_BOX), payload)
                for v in range(BATCH_FRAGMENTS)
            ]

        server.put_many(shards(0))  # warmup
        version = BATCH_FRAGMENTS

        t_batched, batched_trips = [], 0
        for _ in range(BATCH_REPS):
            batch = shards(version)
            version += BATCH_FRAGMENTS
            before = _request_count()
            t_batched.append(_timed(server.put_many, batch))
            batched_trips = _request_count() - before

        def put_loop(batch: list) -> None:
            for desc, data in batch:
                server.put(desc, data)

        t_unbatched, unbatched_trips = [], 0
        for _ in range(BATCH_REPS):
            batch = shards(version)
            version += BATCH_FRAGMENTS
            before = _request_count()
            t_unbatched.append(_timed(put_loop, batch))
            unbatched_trips = _request_count() - before

        best_b, best_u = min(t_batched), min(t_unbatched)
        return {
            "fragments": BATCH_FRAGMENTS,
            "batched_frags_per_s": round(BATCH_FRAGMENTS / best_b, 1),
            "unbatched_frags_per_s": round(BATCH_FRAGMENTS / best_u, 1),
            "batch_speedup": round(best_u / best_b, 2),
            "round_trips_batched": batched_trips,
            "round_trips_unbatched": unbatched_trips,
            "round_trips_saved_pct": round(
                100.0 * (unbatched_trips - batched_trips) / max(unbatched_trips, 1), 1
            ),
        }
    finally:
        group.close()


def _mux_drive(group: StagingGroup, desc: ObjectDescriptor, ops: int) -> float:
    """8 threads × ``ops`` gets of one small object; aggregate ops/s."""
    barrier = threading.Barrier(MUX_THREADS + 1)

    def worker(idx: int) -> None:
        client = StagingClient(group, client_id=f"mux-{idx}")
        client.get(desc)  # warm this thread's path
        barrier.wait()
        for _ in range(ops):
            client.get(desc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(MUX_THREADS)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = perf_counter()
    for t in threads:
        t.join()
    elapsed = perf_counter() - t0
    return MUX_THREADS * ops / elapsed


def _bench_mux() -> dict:
    """Concurrent small-op throughput: one mux socket vs the v1 pool."""
    rates = {}
    saved = {k: os.environ.get(k) for k in ("REPRO_MUX", "REPRO_TCP_POOL_CAP")}
    configs = (
        ("mux_8thread", {}),
        ("pooled_8thread_1sock", {"REPRO_MUX": "0", "REPRO_TCP_POOL_CAP": "1"}),
        ("pooled_8thread", {"REPRO_MUX": "0"}),
    )
    try:
        for label, env in configs:
            for key in saved:
                os.environ.pop(key, None)
            os.environ.update(env)
            group = StagingGroup.create(DOMAIN, num_servers=1, transport="tcp")
            try:
                client = StagingClient(group, client_id="seed")
                desc = ObjectDescriptor("mux", 1, MUX_BOX)
                client.put(
                    desc, np.random.default_rng(17).standard_normal(MUX_BOX.shape)
                )
                rates[label] = _mux_drive(group, desc, MUX_OPS_PER_THREAD)
            finally:
                group.close()
    finally:
        for key, val in saved.items():
            if val is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = val
    return {
        "mux_8thread": {
            "threads": MUX_THREADS,
            "sockets_per_endpoint": 1,
            "agg_ops_per_s": round(rates["mux_8thread"], 1),
        },
        "pooled_8thread_1sock": {
            "threads": MUX_THREADS,
            "sockets_per_endpoint": 1,
            "agg_ops_per_s": round(rates["pooled_8thread_1sock"], 1),
            # The equal-socket-budget headline: mux concurrency per socket.
            "mux_speedup_x": round(
                rates["mux_8thread"] / rates["pooled_8thread_1sock"], 2
            ),
        },
        "pooled_8thread": {
            "threads": MUX_THREADS,
            "sockets_per_endpoint": MUX_THREADS,
            "agg_ops_per_s": round(rates["pooled_8thread"], 1),
            "mux_speedup_x": round(rates["mux_8thread"] / rates["pooled_8thread"], 2),
        },
    }


def bench_transport() -> dict:
    results = {}
    payload_kb = int(np.prod(DOMAIN.shape)) * 8 // 1024
    inproc = _bench_put_get("inproc")
    tcp = _bench_put_get("tcp")
    shm = _bench_put_get("shm")
    for name, ops in (("inproc", inproc), ("tcp", tcp), ("shm", shm)):
        results[name] = {
            "payload_kb": payload_kb,
            "servers": NUM_SERVERS,
            "agg_ops_per_s": round(ops, 1),
        }
    results["tcp"]["wire_tax_x"] = round(inproc / tcp, 2)
    results["shm"]["wire_tax_x"] = round(inproc / shm, 2)

    payload_mb = int(np.prod(LARGE_DOMAIN.shape)) * 8 / 2**20
    tcp_large = _bench_put_get("tcp", LARGE_DOMAIN, LARGE_OPS)
    shm_large = _bench_put_get("shm", LARGE_DOMAIN, LARGE_OPS)
    for name, ops in (("tcp_16mb", tcp_large), ("shm_16mb", shm_large)):
        results[name] = {
            "payload_mb": round(payload_mb, 1),
            "servers": NUM_SERVERS,
            "agg_ops_per_s": round(ops, 1),
            "mb_per_s": round(ops * payload_mb, 1),
        }
    results["shm_16mb"]["speedup_vs_tcp_x"] = round(shm_large / tcp_large, 2)

    results["batching"] = _bench_batching()
    results.update(_bench_mux())
    return results


def main() -> int:
    results = bench_transport()
    for name in ("inproc", "tcp", "shm"):
        row = results[name]
        extra = (
            f", wire tax x{row['wire_tax_x']:.1f}" if "wire_tax_x" in row else ""
        )
        print(f"  {name}: {row['agg_ops_per_s']:.0f} ops/s{extra}")
    large = results["shm_16mb"]
    print(
        f"  16 MiB payloads: shm {large['mb_per_s']:.0f} MB/s vs "
        f"tcp {results['tcp_16mb']['mb_per_s']:.0f} MB/s "
        f"(x{large['speedup_vs_tcp_x']:.1f})"
    )
    b = results["batching"]
    print(
        f"  batching: {b['batched_frags_per_s']:.0f} frags/s batched "
        f"({b['unbatched_frags_per_s']:.0f} unbatched, x{b['batch_speedup']:.1f}), "
        f"{b['round_trips_batched']} vs {b['round_trips_unbatched']} round trips "
        f"({b['round_trips_saved_pct']:.0f}% saved)"
    )
    mux = results["mux_8thread"]
    one = results["pooled_8thread_1sock"]
    pooled = results["pooled_8thread"]
    print(
        f"  mux ({mux['threads']} threads, 1 socket): "
        f"{mux['agg_ops_per_s']:.0f} ops/s vs lockstep@1sock "
        f"{one['agg_ops_per_s']:.0f} ops/s (x{one['mux_speedup_x']:.1f}) "
        f"vs pool@{pooled['sockets_per_endpoint']}socks "
        f"{pooled['agg_ops_per_s']:.0f} ops/s (x{pooled['mux_speedup_x']:.1f})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
