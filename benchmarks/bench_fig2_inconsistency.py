"""Figure 2 (motivation) — individual C/R without logging is inconsistent.

The paper's motivating failure modes, demonstrated on the *threaded runtime*
with real payloads rather than the cost simulator:

* case 1 — a failed analytic re-executes and reads the *wrong version* of
  the coupled data, because the simulation moved on;
* case 2 — a failed simulation redundantly re-writes data that is already
  staged.

The uncoordinated scheme with data logging fixes both; the `individual`
baseline demonstrably does not.
"""

from repro.analysis import banner, format_table
from repro.geometry import Domain
from repro.runtime import FailurePlan, run_with_reference
from repro.workloads import coupled_specs

from benchmarks.conftest import emit

DOMAIN = Domain((8, 8, 8))


def run_fig2():
    specs = lambda: coupled_specs(num_steps=10, domain=DOMAIN)
    out = {}
    # Case 1: analytic failure.
    _, individual = run_with_reference(
        specs(), "individual", failures=[FailurePlan("analytic", 7)],
        expect_consistent=False,
    )
    _, uncoordinated = run_with_reference(
        specs(), "uncoordinated", failures=[FailurePlan("analytic", 7)]
    )
    out["case1"] = (individual, uncoordinated)
    # Case 2: simulation failure (redundant writes).
    _, ind2 = run_with_reference(
        specs(), "individual", failures=[FailurePlan("simulation", 6)],
        expect_consistent=False,
    )
    _, unc2 = run_with_reference(
        specs(), "uncoordinated", failures=[FailurePlan("simulation", 6)]
    )
    out["case2"] = (ind2, unc2)
    return out


def test_fig2_inconsistency_demo(once):
    results = once(run_fig2)
    ind1, unc1 = results["case1"]
    ind2, unc2 = results["case2"]
    rows = [
        ["case 1 (analytic fails)", "individual", ind1.consistent,
         ind1.component_stats["analytic"].replayed_gets],
        ["case 1 (analytic fails)", "uncoordinated", unc1.consistent,
         unc1.component_stats["analytic"].replayed_gets],
        ["case 2 (simulation fails)", "individual", ind2.consistent,
         ind2.component_stats["simulation"].suppressed_puts],
        ["case 2 (simulation fails)", "uncoordinated", unc2.consistent,
         unc2.component_stats["simulation"].suppressed_puts],
    ]
    text = banner("Fig 2: consistency of individual vs uncoordinated C/R") + "\n"
    text += format_table(
        ["scenario", "scheme", "read-stable", "replays/suppressions"], rows
    )
    emit("fig2_inconsistency", text)

    # Case 1: individual C/R observably returns wrong versions; the paper's
    # logging scheme replays the correct ones.
    assert ind1.consistent is False
    assert unc1.consistent is True
    assert unc1.component_stats["analytic"].replayed_gets > 0
    # Case 2: the individual simulation re-writes at full cost (0 suppressed)
    # while logging suppresses every redundant write.
    assert ind2.component_stats["simulation"].suppressed_puts == 0
    assert unc2.component_stats["simulation"].suppressed_puts > 0
