"""Ablation — checkpoint strategies beyond the paper's evaluation.

The paper's §VI names proactive and multi-level/hierarchical checkpointing
as future work and claims the data-logging framework "can easily adapt"
to them (§III-A.1). This bench substantiates that: both extensions run on
the unchanged logging/replay machinery and improve on plain uncoordinated
C/R — proactive by shrinking lost work (perfect predictor bound),
multi-level by making most checkpoints node-local.
"""

from repro.analysis import banner, format_table
from repro.perfsim import PRODUCER, SimFailure, simulate, table2_config

from benchmarks.conftest import emit

FAILURE_STEPS = (10, 18, 26, 34)


def run_ablation():
    cfg = table2_config()
    out = {}
    for scheme in ("uncoordinated", "proactive", "multilevel"):
        clean = simulate(cfg, scheme).total_time
        with_failures = []
        for step in FAILURE_STEPS:
            r = simulate(cfg, scheme, failures=[SimFailure(PRODUCER, step)])
            with_failures.append(r.total_time)
        out[scheme] = (clean, sum(with_failures) / len(with_failures))
    # Node-failure variant for multi-level.
    node = [
        simulate(
            cfg, "multilevel", failures=[SimFailure(PRODUCER, s, kind="node")]
        ).total_time
        for s in FAILURE_STEPS
    ]
    out["multilevel+nodefail"] = (out["multilevel"][0], sum(node) / len(node))
    return out


def test_ablation_checkpoint_strategies(once):
    results = once(run_ablation)
    rows = [
        [name, f"{clean:.1f}", f"{failed:.1f}", f"{failed - clean:.1f}"]
        for name, (clean, failed) in results.items()
    ]
    text = banner("Ablation: checkpoint strategies (Table II, mean over 1-failure runs)") + "\n"
    text += format_table(
        ["scheme", "failure-free (s)", "with 1 failure (s)", "failure cost (s)"], rows
    )
    emit("ablation_checkpoint_strategies", text)

    un_clean, un_failed = results["uncoordinated"]
    pro_clean, pro_failed = results["proactive"]
    ml_clean, ml_failed = results["multilevel"]
    node_failed = results["multilevel+nodefail"][1]
    # Proactive: same failure-free cost, much cheaper failures.
    assert abs(pro_clean - un_clean) < 1.0
    assert pro_failed < un_failed
    # Multi-level: cheaper failure-free (node-local checkpoints).
    assert ml_clean < un_clean
    # Node failures cost more than process failures under multi-level.
    assert node_failed >= ml_failed
