"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints a
paper-vs-measured comparison, and writes the same text into
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote it verbatim.

Observability: each benchmark test runs against a freshly reset
``repro.obs`` registry and, on completion, writes the full metrics snapshot
(op counts + latency percentiles for staging put/get, GC passes, replay) to
``benchmarks/results/obs/<test>.json``. Passing ``--obs-trace`` additionally
enables the span tracer, dumps ``<test>.trace.jsonl`` next to the snapshot,
and prints the rendered metrics table after each bench.
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro import obs
from repro.analysis.obs_report import metrics_table, write_snapshot

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
OBS_DIR = RESULTS_DIR / "obs"


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def pytest_addoption(parser):
    # Named --obs-trace because pytest itself owns --trace (pdb hook).
    parser.addoption(
        "--obs-trace",
        action="store_true",
        default=False,
        help="enable repro.obs span tracing; dump per-bench trace JSONL and "
        "print the metrics table",
    )


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once under pytest-benchmark.

    Simulated-Cori runs take seconds; default benchmark looping would
    multiply that by hundreds. One round is both honest (DES is
    deterministic) and fast.
    """

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run


@pytest.fixture(autouse=True)
def obs_snapshot(request):
    """Reset the metrics registry per bench; persist its snapshot after.

    Each bench therefore measures only its own ops, and the snapshot under
    ``results/obs/`` gives future perf PRs a before/after baseline from the
    same hooks.
    """
    tracing = request.config.getoption("--obs-trace")
    obs.registry.reset()
    if tracing:
        obs.trace.clear()
        obs.enable_tracing()
    yield
    if tracing:
        obs.disable_tracing()
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
    OBS_DIR.mkdir(parents=True, exist_ok=True)
    write_snapshot(OBS_DIR / f"{slug}.json", extra={"bench": request.node.nodeid})
    if tracing:
        spans = obs.trace.export_jsonl(OBS_DIR / f"{slug}.trace.jsonl")
        print()
        print(metrics_table(title=f"obs metrics — {request.node.name}"))
        print(f"[obs] {spans} spans -> {OBS_DIR / (slug + '.trace.jsonl')}")
