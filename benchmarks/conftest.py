"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures, prints a
paper-vs-measured comparison, and writes the same text into
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote it verbatim.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once under pytest-benchmark.

    Simulated-Cori runs take seconds; default benchmark looping would
    multiply that by hundreds. One round is both honest (DES is
    deterministic) and fast.
    """

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
