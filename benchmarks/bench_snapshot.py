"""Snapshot cost vs churn: incremental copy-on-write vs full-copy capture.

Not a paper figure. The coordinated scheme snapshots the staging servers on
every global checkpoint; the seed captured a full copy of every container
each time — O(staged fragments) under the service's quiescence gate even
when almost nothing changed between checkpoints. The incremental path seals
per-layer mutation journals instead (O(1) under the gate) and packages the
delta outside it, so capture cost tracks *churn*, not resident state.

This bench sweeps the churn rate (fraction of staged versions mutated
between checkpoints) and reports, for each rate:

* incremental capture time vs the full-copy capture of the same state;
* the restore time of each snapshot kind (incremental restores compose the
  ``base + deltas`` chain first, so they are expected to cost more — that
  is the rollback path, paid only on failure);
* the observed quiescence-gate time of the incremental captures (from the
  ``checkpoint.gate.seconds`` histogram) — the window during which the data
  plane is actually stalled.

Expectation (the PR's acceptance bar): >= 5x faster capture at <= 10 % churn.
At 100 % churn the incremental path deliberately falls back to a full
re-base (replaying a journal as large as the state would cost more than
recopying it); its wall time then exceeds the plain full copy because the
re-base also frees the superseded epoch's retired payloads — but it does so
*after* the gate reopens, so the data-plane stall stays at full-copy cost.

Results land in ``benchmarks/results/snapshot.txt`` when run under pytest.
Run directly::

    PYTHONPATH=src python benchmarks/bench_snapshot.py
"""

from __future__ import annotations

import sys
from time import perf_counter

import numpy as np

from repro import obs
from repro.core import WorkflowStaging
from repro.descriptors import ObjectDescriptor
from repro.geometry import Domain
from repro.runtime.staging_service import SynchronizedStaging
from repro.staging import StagingGroup

# 16 KiB float64 versions; 200 of them staged across 4 servers (~3 MB).
# Fragment payloads are shared by the snapshot (copy-on-write), so capture
# cost is container work — what the fragment count, not the byte count, sets.
DOMAIN = Domain((16, 16, 8))
NUM_SERVERS = 4
VERSIONS = 200
CHURN_FRACTIONS = (0.01, 0.05, 0.10, 0.50, 1.00)
REPS = 5


def _timed(fn, *args) -> float:
    t0 = perf_counter()
    fn(*args)
    return perf_counter() - t0


def _best_of(reps: int, fn, *args) -> float:
    """Best wall time of ``reps`` runs (1 warmup) — least-noise estimator."""
    fn(*args)
    return min(_timed(fn, *args) for _ in range(reps))


def _populated_service() -> tuple[SynchronizedStaging, np.random.Generator]:
    group = StagingGroup.create(DOMAIN, num_servers=NUM_SERVERS)
    svc = SynchronizedStaging(
        WorkflowStaging(group, enable_logging=True), poll_timeout=0.05, max_wait=10.0
    )
    svc.register("sim")
    rng = np.random.default_rng(17)
    for v in range(VERSIONS):
        desc = ObjectDescriptor("field", v, DOMAIN.bbox)
        svc.put("sim", desc, rng.standard_normal(DOMAIN.shape), step=v)
    return svc, rng


def _churn(svc: SynchronizedStaging, rng, version: int, count: int) -> int:
    """Steady-state churn: each new version displaces the oldest, so the
    resident state stays at VERSIONS across every measurement."""
    for _ in range(count):
        desc = ObjectDescriptor("field", version, DOMAIN.bbox)
        svc.put("sim", desc, rng.standard_normal(DOMAIN.shape), step=version)
        oldest = version - VERSIONS
        for srv in svc.group.servers:
            srv.evict("field", oldest)
        version += 1
    return version


def _measure(churn: int, full: bool) -> dict:
    """Capture/restore times for one churn rate on one snapshot path.

    Both paths run the identical churn stream between captures, so the
    comparison isolates the snapshot mechanism from allocator and cache
    effects of the churn itself.
    """
    svc, rng = _populated_service()
    obs.registry.reset()
    if not full:
        svc.snapshot()  # base capture; journaling starts here
    version = VERSIONS
    times = []
    for _ in range(REPS):
        version = _churn(svc, rng, version, churn)
        times.append(_timed(svc.snapshot, full))
    snap = svc.snapshot(full)
    t_restore = _best_of(REPS, svc.restore, snap)
    gate = obs.registry.snapshot().get("checkpoint.gate.seconds", {})
    svc.shutdown()
    return {
        "capture_s": min(times),
        "restore_s": t_restore,
        "gate_mean_s": gate.get("mean", 0.0),
        "gate_max_s": gate.get("max", 0.0),
    }


def bench_snapshot_sweep() -> dict:
    results: dict[str, dict] = {}
    for frac in CHURN_FRACTIONS:
        churn = max(1, int(frac * VERSIONS))
        full = _measure(churn, full=True)
        inc = _measure(churn, full=False)
        results[f"{frac:.0%}"] = {
            "churn_versions": churn,
            "capture_s": inc["capture_s"],
            "full_capture_s": full["capture_s"],
            "capture_speedup": full["capture_s"] / inc["capture_s"],
            "restore_s": inc["restore_s"],
            "full_restore_s": full["restore_s"],
            "gate_mean_s": inc["gate_mean_s"],
            "gate_max_s": inc["gate_max_s"],
        }
    return results


def render(results: dict) -> str:
    state_kb = VERSIONS * int(np.prod(DOMAIN.shape)) * 8 // 1024
    lines = [
        f"== snapshot capture/restore vs churn: {NUM_SERVERS} servers, "
        f"{VERSIONS} versions ({state_kb} KiB staged) ==",
    ]
    for name, row in results.items():
        lines.append(
            f"  churn {name:>4s}   capture {row['capture_s'] * 1e3:8.3f} ms "
            f"vs full {row['full_capture_s'] * 1e3:8.3f} ms "
            f"(x{row['capture_speedup']:5.1f})   "
            f"restore {row['restore_s'] * 1e3:8.3f} ms   "
            f"gate mean {row['gate_mean_s'] * 1e6:7.1f} us"
        )
    return "\n".join(lines)


def test_snapshot_capture_is_o_delta(once):
    from benchmarks.conftest import emit

    results = once(bench_snapshot_sweep)
    emit("snapshot", render(results))
    # The acceptance bar: capture at <= 10 % churn is >= 5x the full copy.
    for name in ("1%", "5%", "10%"):
        assert results[name]["capture_speedup"] >= 5.0, (
            f"{name} churn capture only "
            f"{results[name]['capture_speedup']:.1f}x faster than full copy"
        )
    # Capture cost rises with churn — it tracks mutations, not state.
    assert results["1%"]["capture_s"] <= results["100%"]["capture_s"]


def main() -> int:
    results = bench_snapshot_sweep()
    print(render(results))
    ok = all(
        results[name]["capture_speedup"] >= 5.0 for name in ("1%", "5%", "10%")
    )
    if not ok:
        print("WARNING: incremental capture below 5x at <=10% churn")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
