"""Figure 9(b) — write response time, Case 2 (varying checkpoint frequency).

Case 2 writes the full domain while the checkpoint period varies from 2 to 6
time steps. The paper reports logging adds at most 14 % to the write
response time across all five frequencies (the overhead is essentially
frequency-independent: logging cost is per-write, not per-checkpoint).
"""

from repro.analysis import ComparisonRow, comparison_table
from repro.analysis.paper import FIG9B_WRITE_OVERHEAD_MAX_PCT
from repro.perfsim import simulate, table2_config

from benchmarks.conftest import emit

PERIODS = (2, 3, 4, 5, 6)


def run_case2():
    out = {}
    for period in PERIODS:
        cfg = table2_config(checkpoint_period=period)
        ds = simulate(cfg, "ds")
        un = simulate(cfg, "uncoordinated")
        out[period] = (
            un.cumulative_write_response / ds.cumulative_write_response - 1.0
        ) * 100.0
    return out


def test_fig9b_write_response_by_checkpoint_period(once):
    results = once(run_case2)
    rows = [
        ComparisonRow(f"period {p} ts", None, results[p]) for p in sorted(results)
    ]
    rows.append(
        ComparisonRow("max over periods", FIG9B_WRITE_OVERHEAD_MAX_PCT, max(results.values()))
    )
    text = comparison_table(
        "Fig 9(b): write response increase vs checkpoint period (Case 2)", rows
    )
    emit("fig9b_write_time_case2", text)

    # Shape: flat across periods, and the max close to the paper's 14 %.
    values = list(results.values())
    assert max(values) - min(values) < 1.0
    assert abs(max(values) - FIG9B_WRITE_OVERHEAD_MAX_PCT) < 3.0
