"""Garbage-collection microbenchmark: pass latency and data-plane stalls.

Two claims of the incremental/concurrent GC rework are measured here and
recorded in the ``gc`` section of ``BENCH_micro.json``:

1. **A GC pass is O(drained candidates), not O(logged state).** Pass
   latency over a fixed candidate batch stays flat (±20 %) while the number
   of logged versions grows 10×, and at the largest size the candidate-
   driven pass beats the full reference sweep by well over an order of
   magnitude.
2. **Background collection does not stall the data plane.** With the
   collector bursting at a one-eviction batch budget, the worst-case
   put+get latency over a live coupling loop is recorded — the GC-induced
   stall component must stay in the sub-millisecond range (a put/get only
   ever waits behind a single candidate's eviction).

Run directly::

    PYTHONPATH=src python benchmarks/bench_gc.py
"""

from __future__ import annotations

import sys
from time import perf_counter

import numpy as np

from repro.core import WorkflowStaging
from repro.core.data_log import DataLog
from repro.core.event_queue import EventQueue
from repro.core.garbage import GarbageCollector
from repro.descriptors import ObjectDescriptor
from repro.geometry import Domain
from repro.runtime.staging_service import SynchronizedStaging
from repro.staging import StagingGroup

# Names each pin 2 versions, so logged versions span 400 -> 4000 (10x).
GC_SIZES = (200, 2000)
GC_CANDIDATES = 10
GC_REPS = 20
STALL_DOMAIN = Domain((16, 16, 8))
STALL_STEPS = 150


def _timed(fn, *args) -> float:
    t0 = perf_counter()
    fn(*args)
    return perf_counter() - t0


def _best_of(reps: int, fn, *args) -> float:
    fn(*args)  # warmup
    return min(_timed(fn, *args) for _ in range(reps))


def _build_log(num_names: int) -> tuple[GarbageCollector, list[str]]:
    """A log pinning 2 versions of ``num_names`` variables, all floors at 0.

    The registered consumer has read nothing, so every pass examines its
    candidates and collects zero versions — state stays identical across
    repetitions and timings measure pure pass overhead.
    """
    group = StagingGroup.create(Domain((4, 4, 2)), num_servers=4)
    log = DataLog(group=group)
    queues = {"ana": EventQueue(component="ana")}
    gc = GarbageCollector(log=log, queues=queues, queue_provider=queues.get)
    names = []
    for i in range(num_names):
        name = f"var{i:05d}"
        names.append(name)
        log.register_consumer(name, "ana")
        log.record_put(name, 0, 1000, producer="sim", step=0)
        log.record_put(name, 1, 1000, producer="sim", step=1)
    # Construction-time puts queued every name; clear so each measured pass
    # starts from the steady state and drains exactly what it is handed.
    gc._candidates.clear()
    gc._candidate_set.clear()
    gc._trim_candidates.clear()
    return gc, names


def _incremental_pass(gc: GarbageCollector, batch: list[str]) -> None:
    for name in batch:
        gc.push_candidate(name)
    gc.collect_incremental()


def bench_gc_passes() -> dict:
    """Pass latency vs logged-state size: candidate-driven vs full sweep."""
    results = {}
    for num_names in GC_SIZES:
        gc, names = _build_log(num_names)
        batch = names[:GC_CANDIDATES]
        t_inc = _best_of(GC_REPS, _incremental_pass, gc, batch)
        t_full = _best_of(3, gc.collect)
        results[f"{num_names}_names"] = {
            "logged_versions": 2 * num_names,
            "candidates_per_pass": GC_CANDIDATES,
            "incremental_pass_us": round(t_inc * 1e6, 1),
            "passes_per_s": round(1.0 / t_inc, 1),
            "full_sweep_us": round(t_full * 1e6, 1),
            "full_sweep_speedup": round(t_full / t_inc, 1),
        }
    return results


def bench_gc_stall() -> dict:
    """Worst-case put+get latency while the background collector bursts."""
    group = StagingGroup.create(STALL_DOMAIN, num_servers=4)
    svc = SynchronizedStaging(
        WorkflowStaging(group, enable_logging=True, auto_gc=False),
        poll_timeout=0.05,
        max_wait=30.0,
        max_ahead=10**9,
    )
    svc.register("sim")
    svc.register("ana")
    svc.declare_coupling("field", "ana")
    svc.start_background_gc(
        high_watermark=1, low_watermark=0, interval=0.001, batch_versions=1
    )
    rng = np.random.default_rng(11)
    payloads = [rng.standard_normal(STALL_DOMAIN.shape) for _ in range(8)]
    latencies = []
    try:
        for v in range(STALL_STEPS):
            desc = ObjectDescriptor("field", v, STALL_DOMAIN.bbox)
            data = payloads[v % len(payloads)]
            t0 = perf_counter()
            svc.put("sim", desc, data, step=v)
            svc.get_blocking("ana", desc, step=v)
            latencies.append(perf_counter() - t0)
            if (v + 1) % 5 == 0:
                svc.workflow_check("ana", v)
        collected = sum(r.versions_collected for r in svc.staging.gc_reports)
    finally:
        svc.shutdown()
    lat = np.asarray(latencies[5:])  # skip warmup steps
    return {
        "background_stall": {
            "steps": STALL_STEPS,
            "versions_collected": int(collected),
            "put_get_p50_ms": round(float(np.percentile(lat, 50)) * 1e3, 3),
            "put_get_p99_ms": round(float(np.percentile(lat, 99)) * 1e3, 3),
            "put_get_max_ms": round(float(lat.max()) * 1e3, 3),
        }
    }


def bench_gc() -> dict:
    out = bench_gc_passes()
    out.update(bench_gc_stall())
    return out


def main() -> int:
    results = bench_gc()
    ok = True
    sizes = [k for k in results if k.endswith("_names")]
    small, large = results[sizes[0]], results[sizes[-1]]
    flat = large["incremental_pass_us"] <= 1.2 * small["incremental_pass_us"]
    fast = large["full_sweep_speedup"] >= 10.0
    print("== GC pass latency (candidate-driven vs full sweep) ==")
    for key in sizes:
        row = results[key]
        print(
            f"  {row['logged_versions']} logged versions: "
            f"{row['incremental_pass_us']:.0f} us/pass "
            f"({row['candidates_per_pass']} candidates), "
            f"full sweep {row['full_sweep_us']:.0f} us "
            f"(x{row['full_sweep_speedup']:.0f})"
        )
    print(
        f"  flat across 10x growth: {'yes' if flat else 'NO'} "
        f"(large/small = "
        f"{large['incremental_pass_us'] / small['incremental_pass_us']:.2f})"
    )
    stall = results["background_stall"]
    print("== data-plane stall under background GC ==")
    print(
        f"  put+get p50 {stall['put_get_p50_ms']:.2f} ms, "
        f"p99 {stall['put_get_p99_ms']:.2f} ms, "
        f"max {stall['put_get_max_ms']:.2f} ms "
        f"({stall['versions_collected']} versions collected concurrently)"
    )
    ok = flat and fast
    if not ok:
        print(
            "WARNING: GC perf targets missed "
            "(flat pass latency +-20% over 10x growth, >=10x vs full sweep)"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
