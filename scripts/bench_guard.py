#!/usr/bin/env python3
"""Bench guard: fail when data-path throughput regresses vs the baseline.

Re-runs the microbenchmark measurements (coding kernels + staging put/get)
and compares every throughput metric against the committed ``BENCH_micro.json``
at the repo root. Exits non-zero when any metric falls more than
``--threshold`` (default 30 %) below its baseline value.

The committed baseline is **never modified** by this script — refreshing it
is an explicit act (``scripts/check.sh --bench``). Speed-ups over the
baseline are reported but never fail the guard: CI machines vary, and the
guard only protects against regressions, not against getting lucky.

Usage:
    PYTHONPATH=src python scripts/bench_guard.py [--threshold 0.30] [--json PATH]
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
BASELINE_PATH = REPO_ROOT / "BENCH_micro.json"

# (section, metric) pairs guarded per entry; all are higher-is-better
# throughputs. Seed-baseline and speedup columns are excluded: they describe
# the *reference* implementation, whose speed this guard does not own.
GUARDED_METRICS = {
    "rs": ("encode_MBps", "decode_worstcase_MBps", "decode_fastpath_MBps"),
    "staging": ("agg_ops_per_s",),
    "snapshot": ("captures_per_s", "restores_per_s"),
    # GC pass rate over a fixed candidate batch; rows without the metric
    # (the background-stall entry, which is lower-is-better) are skipped.
    "gc": ("passes_per_s",),
    # Recovery engine: batched-decode and pipelined-rebuild throughput plus
    # restore/restart rates. Rows carry disjoint metrics (decode rows have
    # batch_MBps, the rebuild row pipelined_MBps, ...); absent ones skip.
    "recovery": (
        "batch_MBps",
        "pipelined_MBps",
        "restores_per_s",
        "restarts_per_s",
    ),
    # Wire transport: per-transport put/get rate plus the batched-put rate
    # over TCP. Rows carry disjoint metrics (inproc/tcp rows have
    # agg_ops_per_s, the batching row batched_frags_per_s); absent ones skip.
    "transport": ("agg_ops_per_s", "batched_frags_per_s"),
}


def _load_microbench():
    """Import benchmarks/bench_microbench.py without running its main()."""
    path = REPO_ROOT / "benchmarks" / "bench_microbench.py"
    spec = importlib.util.spec_from_file_location("bench_microbench", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def compare(
    baseline: dict, current: dict, threshold: float
) -> tuple[list[str], list[str]]:
    """Return (failures, report_lines) for every guarded metric."""
    failures: list[str] = []
    lines: list[str] = []
    for section, metrics in GUARDED_METRICS.items():
        base_section = baseline.get(section, {})
        cur_section = current.get(section, {})
        for entry, base_row in sorted(base_section.items()):
            cur_row = cur_section.get(entry)
            if cur_row is None:
                failures.append(f"{section}[{entry}]: missing from current run")
                continue
            for metric in metrics:
                base_val = base_row.get(metric)
                cur_val = cur_row.get(metric)
                if not base_val:
                    continue  # zero/absent baseline: nothing to guard
                ratio = cur_val / base_val
                status = "ok"
                if ratio < 1.0 - threshold:
                    status = "REGRESSION"
                    failures.append(
                        f"{section}[{entry}].{metric}: {cur_val:.1f} vs "
                        f"baseline {base_val:.1f} ({ratio:.0%})"
                    )
                lines.append(
                    f"  {section}[{entry}].{metric}: {cur_val:.1f} "
                    f"(baseline {base_val:.1f}, {ratio:.0%}) {status}"
                )
    return failures, lines


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional regression (default 0.30)",
    )
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        help="also write the current measurements to this path "
        "(the committed baseline is never touched)",
    )
    parser.add_argument(
        "--obs",
        type=pathlib.Path,
        default=None,
        help="write the process-wide obs metrics snapshot (counters, "
        "histograms, gauges accumulated across the bench runs) to this path",
    )
    args = parser.parse_args()

    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run scripts/check.sh --bench first")
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())

    bench = _load_microbench()
    print("== bench guard: measuring ==")
    current = {
        "rs": bench.bench_rs(),
        "staging": bench.bench_staging(),
        "snapshot": bench.bench_snapshot(),
        "gc": bench.bench_gc(),
        "recovery": bench.bench_recovery(),
        "transport": bench.bench_transport(),
    }
    if args.json is not None:
        args.json.write_text(json.dumps(current, indent=2) + "\n")
    if args.obs is not None:
        from repro.obs import get_registry

        args.obs.write_text(json.dumps(get_registry().snapshot(), indent=2) + "\n")

    failures, lines = compare(baseline, current, args.threshold)
    print(f"== bench guard: comparison (threshold {args.threshold:.0%}) ==")
    for line in lines:
        print(line)
    if failures:
        print(f"BENCH GUARD FAILED: {len(failures)} regression(s)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("bench guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
