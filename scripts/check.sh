#!/usr/bin/env bash
# One-command gate: lint (if ruff is installed) + the tier-1 test suite.
#
# Usage: scripts/check.sh [--fast] [--bench] [--bench-guard] [--transport T] [extra pytest args]
#   --fast         skip the slow suites (perfsim + integration): the quick
#                  inner-loop signal, also the per-Python matrix job in CI
#   --bench        additionally run the data-path/coding microbenchmarks and
#                  refresh BENCH_micro.json at the repo root
#   --bench-guard  run the benchmarks in *guard* mode: compare against the
#                  committed BENCH_micro.json and fail on >30 % regression
#                  (never rewrites the baseline)
#   --transport T  run the suite with REPRO_TRANSPORT=T (inproc|tcp|shm).
#                  With tcp/shm, every staging group spawns real server
#                  processes; white-box in-process tests self-skip, and an
#                  interrupted run (^C, CI timeout) reaps all spawned servers
#                  on exit — under shm additionally unlinking any leaked
#                  /dev/shm/repro-shm-* segments.
# Flags may appear in any order and mix freely with pytest args.
# Exits non-zero on the first failure.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

RUN_BENCH=0
RUN_GUARD=0
FAST=0
TRANSPORT=""
PYTEST_ARGS=()
expect_transport=0
for arg in "$@"; do
    if [[ "$expect_transport" == "1" ]]; then
        TRANSPORT="$arg"
        expect_transport=0
        continue
    fi
    case "$arg" in
        --bench) RUN_BENCH=1 ;;
        --bench-guard) RUN_GUARD=1 ;;
        --fast) FAST=1 ;;
        --transport) expect_transport=1 ;;
        --transport=*) TRANSPORT="${arg#--transport=}" ;;
        *) PYTEST_ARGS+=("$arg") ;;
    esac
done
if [[ "$expect_transport" == "1" ]]; then
    echo "error: --transport requires a value (inproc|tcp|shm)" >&2
    exit 2
fi

if [[ -n "$TRANSPORT" ]]; then
    export REPRO_TRANSPORT="$TRANSPORT"
    echo "== transport: $TRANSPORT =="
fi

# Wire-transport runs (tcp, shm) spawn one server process per staging group
# server; a run killed mid-flight (^C, CI timeout) must not strand them. Each
# step therefore runs in its own process group — every spawned server
# inherits it — and the trap reaps the whole group. Never kill our *own*
# group: in CI this shell can share it with the runner. Under shm the trap
# additionally unlinks leaked repro-shm-* segments: the pools' atexit guard
# never runs in a SIGKILLed client, and orphaned segments would otherwise
# accumulate in /dev/shm until it fills.
CHILD_PGID=""
reap_shm_segments() {
    if [[ "$TRANSPORT" == "shm" && -d /dev/shm ]]; then
        rm -f /dev/shm/repro-shm-* 2>/dev/null || true
    fi
}
cleanup() {
    local status=$?
    trap - INT TERM EXIT
    if [[ -n "$CHILD_PGID" ]]; then
        kill -TERM -- "-$CHILD_PGID" 2>/dev/null || true
    fi
    reap_shm_segments
    exit "$status"
}

run() {
    if [[ "$TRANSPORT" != "tcp" && "$TRANSPORT" != "shm" ]]; then
        "$@"
        return
    fi
    set -m
    "$@" &
    CHILD_PGID=$!
    set +m
    local st=0
    wait "$CHILD_PGID" || st=$?
    CHILD_PGID=""
    return "$st"
}

if [[ "$TRANSPORT" == "tcp" || "$TRANSPORT" == "shm" ]]; then
    trap cleanup INT TERM EXIT
fi

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks scripts
else
    echo "== ruff not installed; skipping lint (config in pyproject.toml) =="
fi

echo "== tier-1 tests =="
if [[ "$FAST" == "1" ]]; then
    run env PYTHONPATH=src python -m pytest -x -q \
        --ignore=tests/perfsim --ignore=tests/integration \
        "${PYTEST_ARGS[@]+"${PYTEST_ARGS[@]}"}"
else
    run env PYTHONPATH=src python -m pytest -x -q "${PYTEST_ARGS[@]+"${PYTEST_ARGS[@]}"}"
fi

if [[ "$RUN_BENCH" == "1" ]]; then
    echo "== microbenchmarks (BENCH_micro.json) =="
    run env PYTHONPATH=src python benchmarks/bench_microbench.py
fi

if [[ "$RUN_GUARD" == "1" ]]; then
    echo "== bench guard (vs committed BENCH_micro.json) =="
    run env PYTHONPATH=src python scripts/bench_guard.py
fi
