#!/usr/bin/env bash
# One-command gate: lint (if ruff is installed) + the tier-1 test suite.
#
# Usage: scripts/check.sh [--bench] [extra pytest args]
#   --bench   additionally run the data-path/coding microbenchmarks and
#             refresh BENCH_micro.json at the repo root
# Exits non-zero on the first failure.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

RUN_BENCH=0
if [[ "${1:-}" == "--bench" ]]; then
    RUN_BENCH=1
    shift
fi

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks
else
    echo "== ruff not installed; skipping lint (config in pyproject.toml) =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q "$@"

if [[ "$RUN_BENCH" == "1" ]]; then
    echo "== microbenchmarks (BENCH_micro.json) =="
    PYTHONPATH=src python benchmarks/bench_microbench.py
fi
