#!/usr/bin/env bash
# One-command gate: lint (if ruff is installed) + the tier-1 test suite.
#
# Usage: scripts/check.sh [extra pytest args]
# Exits non-zero on the first failure.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks
else
    echo "== ruff not installed; skipping lint (config in pyproject.toml) =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q "$@"
