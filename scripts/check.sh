#!/usr/bin/env bash
# One-command gate: lint (if ruff is installed) + the tier-1 test suite.
#
# Usage: scripts/check.sh [--fast] [--bench] [--bench-guard] [extra pytest args]
#   --fast         skip the slow suites (perfsim + integration): the quick
#                  inner-loop signal, also the per-Python matrix job in CI
#   --bench        additionally run the data-path/coding microbenchmarks and
#                  refresh BENCH_micro.json at the repo root
#   --bench-guard  run the benchmarks in *guard* mode: compare against the
#                  committed BENCH_micro.json and fail on >30 % regression
#                  (never rewrites the baseline)
# Flags may appear in any order and mix freely with pytest args.
# Exits non-zero on the first failure.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

RUN_BENCH=0
RUN_GUARD=0
FAST=0
PYTEST_ARGS=()
for arg in "$@"; do
    case "$arg" in
        --bench) RUN_BENCH=1 ;;
        --bench-guard) RUN_GUARD=1 ;;
        --fast) FAST=1 ;;
        *) PYTEST_ARGS+=("$arg") ;;
    esac
done

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks scripts
else
    echo "== ruff not installed; skipping lint (config in pyproject.toml) =="
fi

echo "== tier-1 tests =="
if [[ "$FAST" == "1" ]]; then
    PYTHONPATH=src python -m pytest -x -q \
        --ignore=tests/perfsim --ignore=tests/integration \
        "${PYTEST_ARGS[@]+"${PYTEST_ARGS[@]}"}"
else
    PYTHONPATH=src python -m pytest -x -q "${PYTEST_ARGS[@]+"${PYTEST_ARGS[@]}"}"
fi

if [[ "$RUN_BENCH" == "1" ]]; then
    echo "== microbenchmarks (BENCH_micro.json) =="
    PYTHONPATH=src python benchmarks/bench_microbench.py
fi

if [[ "$RUN_GUARD" == "1" ]]; then
    echo "== bench guard (vs committed BENCH_micro.json) =="
    PYTHONPATH=src python scripts/bench_guard.py
fi
