#!/usr/bin/env python3
"""GC soak: coupled workflow + concurrent background GC + injected faults.

Runs the paper's two-component coupled workflow under the uncoordinated
(logging) scheme with everything hostile turned on at once:

* the **background collector** evicting dead versions concurrently with the
  data plane (watermark-driven, one bounded batch per lock acquisition);
* **component failures** mid-run, forcing rollback + staging replay while
  the collector is live (GC must pause for the replay window);
* **staging-server faults** (flaky + slow) landing on eviction RPCs, so
  fragments ride the per-server pending-eviction queues and must drain
  once the faults clear — never silently written off.

Pass criteria, checked against a failure-free ``ds`` reference run:

1. read stability (every (get, version) pair matches the reference);
2. the collector actually collected versions concurrently (non-vacuous);
3. every pending eviction drained to zero by shutdown (the leak this PR
   fixes would show up here as a non-zero residue);
4. all planned component failures fired.

Usage::

    PYTHONPATH=src python scripts/soak_gc.py [--steps 40] [--rounds 2]
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.faults import FaultPlan
from repro.geometry import Domain
from repro.runtime.failures import FailurePlan
from repro.runtime.workflow import ThreadedWorkflow
from repro.workloads import coupled_specs

DOMAIN = Domain((8, 8, 4))

# Flaky bursts sized under the retry budget (max_attempts=4): a data-path
# call that absorbs one rides the retries; an eviction that absorbs one is
# queued pending and drained on a later pass. Op indices land mid-run.
SERVER_FAULTS = [
    FaultPlan(server=1, op=30, kind="flaky", calls=2),
    FaultPlan(server=2, op=45, kind="slow", calls=10, latency=0.001),
    FaultPlan(server=3, op=60, kind="flaky", calls=2),
]


def soak_round(steps: int, seed: int) -> list[str]:
    """Run one reference + soak pair; return a list of failure strings."""
    specs = coupled_specs(num_steps=steps, domain=DOMAIN)
    reference = ThreadedWorkflow(specs, "ds").run()

    failures = [
        FailurePlan("analytic", step=max(2, steps // 3 + seed)),
        FailurePlan("simulation", step=max(3, steps // 2 + seed)),
    ]
    run = ThreadedWorkflow(
        specs,
        "uncoordinated",
        failures=failures,
        background_gc=True,
        gc_high_watermark=DOMAIN.volume * 8,  # pressure from the first version
        server_faults=SERVER_FAULTS,
    ).run()

    problems: list[str] = []
    try:
        run.verify_against(reference)
    except Exception as exc:  # ConsistencyError carries the diverging read
        problems.append(f"read stability violated: {exc}")
    collected = sum(r.versions_collected for r in run.gc_reports)
    if collected == 0:
        problems.append("background GC never collected a version (vacuous soak)")
    if run.pending_evictions != 0:
        problems.append(
            f"{run.pending_evictions} pending eviction(s) leaked past shutdown"
        )
    if run.failures_injected != len(failures):
        problems.append(
            f"only {run.failures_injected}/{len(failures)} component failures fired"
        )
    print(
        f"  round seed={seed}: {collected} versions collected, "
        f"{run.failures_injected} component failures, "
        f"{run.pending_evictions} pending evictions at shutdown, "
        f"memory {run.memory_bytes / 1024:.0f} KiB "
        f"(reference {reference.memory_bytes / 1024:.0f} KiB), "
        f"wall {run.wall_seconds:.2f}s"
    )
    return problems


def check_shm_leaks() -> list[str]:
    """Under REPRO_TRANSPORT=shm: close every live transport, then demand
    zero repro segments on /dev/shm — a leak here means some slab escaped
    the pool lifecycle (grant/release/retire) across the whole soak."""
    if os.environ.get("REPRO_TRANSPORT", "").strip().lower() != "shm":
        return []
    tcp = sys.modules.get("repro.net.tcp")
    if tcp is not None:
        tcp.shutdown_all()
    from repro.net.shm import leaked_segment_names

    leaked = leaked_segment_names()
    if leaked:
        return [f"{len(leaked)} leaked shm segment(s): {', '.join(leaked[:5])}"]
    print("  shm: zero leaked segments at exit")
    return []


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=40, help="workflow steps")
    parser.add_argument(
        "--rounds", type=int, default=2, help="independent soak rounds"
    )
    args = parser.parse_args()

    print(f"== GC soak: {args.rounds} round(s) x {args.steps} steps ==")
    problems: list[str] = []
    for seed in range(args.rounds):
        problems += soak_round(args.steps, seed)
    problems += check_shm_leaks()
    if problems:
        print(f"GC SOAK FAILED: {len(problems)} problem(s)")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("GC soak passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
