#!/usr/bin/env python3
"""Recovery soak: kill a staging server mid-workflow, restart, rebuild.

Exercises the whole parallel-recovery engine end to end, in two phases:

**Phase 1 — workflow soak.** The paper's two-component coupled workflow
runs under the uncoordinated (logging) scheme on an RS(+2)-protected
staging group while a server **crashes mid-run** and both components are
killed by injected failures. Components restart through the partitioned
replay path (``workflow_restart``); reads past the dead server come back
through degraded-read reconstruction. Pass criteria, against a
failure-free ``ds`` reference:

1. read stability (every (get, version) pair matches the reference);
2. all planned component failures fired and the crash fault fired;
3. degraded reads actually happened (non-vacuous: the crash landed while
   data still flowed);
4. every component restart replayed within the ``--restart-budget``
   (mean of ``recovery.workflow_restart.seconds``).

**Phase 2 — kill + rebuild.** A protected staging workload loses a server
mid-stream (crash fault on a live op), keeps serving byte-identical data
degraded, then the lost server is rebuilt through the pipelined engine.
Pass criteria: the rebuild finishes inside ``--rebuild-budget``, flips the
server back to ``up``, and every version of every variable reads back
byte-identical afterwards.

Usage::

    PYTHONPATH=src python scripts/soak_recovery.py [--steps 32] [--rounds 2]
"""

from __future__ import annotations

import argparse
import os
import sys
from time import perf_counter

import numpy as np

from repro.faults import FaultPlan
from repro.geometry import Domain
from repro.obs import registry as _obs
from repro.runtime.failures import FailurePlan
from repro.runtime.workflow import ThreadedWorkflow
from repro.descriptors import ObjectDescriptor
from repro.staging import (
    ProtectionConfig,
    RetryPolicy,
    StagingClient,
    StagingGroup,
)
from repro.staging.resilience import rebuild_server
from repro.workloads import coupled_specs

DOMAIN = Domain((8, 8, 4))

_DEGRADED_READS = _obs.counter("staging.client.degraded_reads")
_RESTART_SECONDS = _obs.histogram("recovery.workflow_restart.seconds")
_REPLAY_PARTITIONS = _obs.histogram("recovery.replay.partitions")


# ------------------------------------------------------------ phase 1: workflow


def workflow_round(steps: int, seed: int, restart_budget: float) -> list[str]:
    """Reference + protected soak run with a mid-run server crash."""
    specs = coupled_specs(num_steps=steps, domain=DOMAIN)
    reference = ThreadedWorkflow(specs, "ds").run()

    failures = [
        FailurePlan("analytic", step=max(2, steps // 3 + seed)),
        FailurePlan("simulation", step=max(3, steps // 2 + seed)),
    ]
    # One server dies for good partway through the run; RS(+2) protection
    # must carry every read past it. The op index lands after the first
    # versions are staged but well before the workflow drains.
    server_faults = [FaultPlan(server=1 + seed % 3, op=40, kind="crash")]

    degraded0 = _DEGRADED_READS.value
    restarts0, restart_sum0 = _RESTART_SECONDS.count, _RESTART_SECONDS.total
    partitions0 = _REPLAY_PARTITIONS.count

    run = ThreadedWorkflow(
        specs,
        "uncoordinated",
        failures=failures,
        server_faults=server_faults,
        protection=ProtectionConfig(mode="rs", parity=2),
    ).run()

    problems: list[str] = []
    try:
        run.verify_against(reference)
    except Exception as exc:  # ConsistencyError carries the diverging read
        problems.append(f"read stability violated: {exc}")
    if run.failures_injected != len(failures):
        problems.append(
            f"only {run.failures_injected}/{len(failures)} component failures fired"
        )
    degraded = _DEGRADED_READS.value - degraded0
    if degraded == 0:
        problems.append("no degraded reads: the crash never hit a live read path")
    restarts = _RESTART_SECONDS.count - restarts0
    mean_restart = 0.0
    if restarts == 0:
        problems.append("no workflow_restart recorded despite component failures")
    else:
        mean_restart = (_RESTART_SECONDS.total - restart_sum0) / restarts
        if mean_restart > restart_budget:
            problems.append(
                f"mean workflow_restart {mean_restart:.3f}s exceeds "
                f"budget {restart_budget:.3f}s"
            )
    if _REPLAY_PARTITIONS.count == partitions0:
        problems.append("replay never went through the partitioned script")
    print(
        f"  workflow seed={seed}: {run.failures_injected} component failures, "
        f"{degraded} degraded reads, {restarts} restarts "
        f"(mean {mean_restart * 1e3:.1f} ms), wall {run.wall_seconds:.2f}s"
    )
    return problems


# ------------------------------------------------------- phase 2: kill+rebuild


def _payload(name_idx: int, version: int) -> np.ndarray:
    rng = np.random.default_rng((name_idx + 1) * 7919 + version)
    return rng.standard_normal(DOMAIN.shape)


def rebuild_round(versions: int, seed: int, rebuild_budget: float) -> list[str]:
    """Crash a server mid-workload, keep reading degraded, rebuild, verify."""
    lost = 1 + seed % 3
    group = StagingGroup.create(
        DOMAIN,
        num_servers=4,
        protection=ProtectionConfig(mode="rs", parity=2),
        retry=RetryPolicy(base_backoff=0.001, max_backoff=0.004),
    )
    # The crash fires on the lost server's Nth op — mid-way through the put
    # stream, so later puts run degraded (shard absorbed by parity).
    from repro.faults.proxy import inject_faults

    injector = inject_faults(group, [FaultPlan(server=lost, op=versions, kind="crash")])
    client = StagingClient(group)
    names = ("u", "v")

    for v in range(versions):
        for i, name in enumerate(names):
            client.put(ObjectDescriptor(name, v, DOMAIN.bbox), _payload(i, v))

    problems: list[str] = []
    if not injector.fired:
        problems.append(f"crash fault on server {lost} never fired (vacuous round)")
    if group.health.state(lost) == "up":
        # The op index missed the put stream entirely; read once to trip it.
        try:
            client.get(ObjectDescriptor(names[0], 0, DOMAIN.bbox))
        except Exception:
            pass

    # Degraded read-stability: every version byte-identical with the server down.
    for v in range(versions):
        for i, name in enumerate(names):
            data = client.get(ObjectDescriptor(name, v, DOMAIN.bbox))
            if not np.array_equal(data, _payload(i, v)):
                problems.append(f"degraded read of {name}@{v} diverged")

    t0 = perf_counter()
    rebuilt = rebuild_server(group, lost, parallel=True)
    dt = perf_counter() - t0
    if dt > rebuild_budget:
        problems.append(
            f"rebuild took {dt:.3f}s, over the {rebuild_budget:.3f}s budget"
        )
    if group.health.state(lost) != "up":
        problems.append(f"server {lost} still {group.health.state(lost)} after rebuild")

    # Post-rebuild read-stability: the repopulated server serves again.
    for v in range(versions):
        for i, name in enumerate(names):
            data = client.get(ObjectDescriptor(name, v, DOMAIN.bbox))
            if not np.array_equal(data, _payload(i, v)):
                problems.append(f"post-rebuild read of {name}@{v} diverged")

    print(
        f"  rebuild seed={seed}: server {lost} crashed and rebuilt "
        f"({rebuilt / 1024:.0f} KiB in {dt * 1e3:.0f} ms), "
        f"{versions * len(names)} versions verified degraded and rebuilt"
    )
    return problems


# ------------------------------------------------------------------------ main


def check_shm_leaks() -> list[str]:
    """Under REPRO_TRANSPORT=shm: close every live transport, then demand
    zero repro segments on /dev/shm. The kill/rebuild rounds are the
    hardest case for segment hygiene — slabs in flight toward a killed
    server must be retired, and the replacement process's attach cache must
    never unlink client-owned segments."""
    if os.environ.get("REPRO_TRANSPORT", "").strip().lower() != "shm":
        return []
    tcp = sys.modules.get("repro.net.tcp")
    if tcp is not None:
        tcp.shutdown_all()
    from repro.net.shm import leaked_segment_names

    leaked = leaked_segment_names()
    if leaked:
        return [f"{len(leaked)} leaked shm segment(s): {', '.join(leaked[:5])}"]
    print("  shm: zero leaked segments at exit")
    return []


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=32, help="workflow steps")
    parser.add_argument("--rounds", type=int, default=2, help="soak rounds")
    parser.add_argument(
        "--versions", type=int, default=24, help="versions staged per rebuild round"
    )
    parser.add_argument(
        "--restart-budget",
        type=float,
        default=5.0,
        help="max mean workflow_restart seconds (default 5.0)",
    )
    parser.add_argument(
        "--rebuild-budget",
        type=float,
        default=15.0,
        help="max seconds for one server rebuild (default 15.0)",
    )
    args = parser.parse_args()

    print(f"== recovery soak: {args.rounds} round(s) x {args.steps} steps ==")
    problems: list[str] = []
    for seed in range(args.rounds):
        problems += workflow_round(args.steps, seed, args.restart_budget)
        problems += rebuild_round(args.versions, seed, args.rebuild_budget)
    problems += check_shm_leaks()
    if problems:
        print(f"RECOVERY SOAK FAILED: {len(problems)} problem(s)")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("recovery soak passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
