"""Unit tests for protection config, health, records, and rebuild."""

from __future__ import annotations

import numpy as np
import pytest

from repro.descriptors import ObjectDescriptor
from repro.errors import ConfigError, ObjectNotFound
from repro.faults import FaultPlan, inject_faults
from repro.geometry import BBox, Domain
from repro.staging import (
    GroupHealth,
    ProtectionConfig,
    ProtectionIndex,
    RetryPolicy,
    StagingClient,
    StagingGroup,
)
from repro.staging.resilience import PutRecord, ShardInfo

DOMAIN = Domain((16, 16, 8))
DESC = ObjectDescriptor("field", 1, DOMAIN.bbox)
DATA = np.arange(DOMAIN.bbox.volume, dtype=np.float64).reshape(DOMAIN.bbox.shape)


class TestConfigs:
    def test_protection_config_validation(self):
        with pytest.raises(ConfigError):
            ProtectionConfig(mode="raid6")
        with pytest.raises(ConfigError):
            ProtectionConfig(mode="rs", parity=0)
        with pytest.raises(ConfigError):
            ProtectionConfig(mode="replication", replicas=0)

    def test_retry_policy_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_backoff=0.1, max_backoff=0.01)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ConfigError):
            RetryPolicy(deadline=0)

    def test_backoff_doubles_then_caps(self):
        policy = RetryPolicy(base_backoff=0.01, max_backoff=0.05, jitter=0.0)
        assert policy.backoff_for(1) == pytest.approx(0.01)
        assert policy.backoff_for(2) == pytest.approx(0.02)
        assert policy.backoff_for(3) == pytest.approx(0.04)
        assert policy.backoff_for(4) == pytest.approx(0.05)  # capped
        assert policy.backoff_for(10) == pytest.approx(0.05)

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_backoff=0.01, max_backoff=0.08, jitter=0.5)
        rng = np.random.default_rng(0)
        for attempt in range(1, 6):
            raw = RetryPolicy(
                base_backoff=0.01, max_backoff=0.08, jitter=0.0
            ).backoff_for(attempt)
            jittered = policy.backoff_for(attempt, rng)
            assert raw <= jittered <= raw * 1.5


class TestGroupHealth:
    def test_transient_failures_walk_up_suspect_down(self):
        health = GroupHealth(2, down_after=3)
        assert health.state(0) == "up"
        health.mark_failure(0)
        assert health.state(0) == "suspect"
        health.mark_failure(0)
        assert health.state(0) == "suspect"
        health.mark_failure(0)
        assert health.state(0) == "down"
        assert health.down_servers() == [0]
        assert health.alive() == [1]

    def test_success_resets_failure_streak(self):
        health = GroupHealth(1, down_after=2)
        health.mark_failure(0)
        health.mark_success(0)
        health.mark_failure(0)
        assert health.state(0) == "suspect"  # streak restarted

    def test_mark_down_is_immediate_and_sticky(self):
        health = GroupHealth(1)
        health.mark_down(0)
        health.mark_failure(0)
        assert health.is_down(0)
        health.reset(0)
        assert health.state(0) == "up"

    def test_snapshot_round_trip(self):
        health = GroupHealth(3)
        health.mark_down(1)
        health.mark_failure(2)
        snap = health.snapshot()
        other = GroupHealth(3)
        other.restore(snap)
        assert [other.state(i) for i in range(3)] == ["up", "down", "suspect"]


class TestProtectionIndex:
    def _record(self, version: int, bbox: BBox | None = None) -> PutRecord:
        desc = ObjectDescriptor("x", version, bbox or BBox((0, 0), (4, 4)))
        return PutRecord(
            record_id=f"x@v{version}:{desc.bbox}",
            desc=desc,
            mode="rs",
            parity_count=1,
            shard_len=8,
            shards=(ShardInfo(server=0, boxes=(desc.bbox,), nbytes=8, digest="d"),),
            groups=((0,),),
        )

    def test_overlapping_filters_by_version_and_region(self):
        index = ProtectionIndex()
        index.add(self._record(1, BBox((0, 0), (2, 2))))
        index.add(self._record(1, BBox((2, 2), (4, 4))))
        index.add(self._record(2))
        probe = ObjectDescriptor("x", 1, BBox((0, 0), (2, 2)))
        assert len(index.overlapping(probe)) == 1
        assert len(index.for_key("x", 1)) == 2
        assert index.versions("x") == [1, 2]

    def test_evict_and_evict_older_than(self):
        index = ProtectionIndex()
        for v in (1, 2, 3):
            index.add(self._record(v))
        assert index.evict("x", 2) == 1
        assert index.evict("x", 2) == 0
        assert index.evict_older_than("x", 3) == 1  # v1
        assert index.versions("x") == [3]

    def test_snapshot_round_trip(self):
        index = ProtectionIndex()
        index.add(self._record(1))
        snap = index.snapshot()
        index.evict("x", 1)
        index.restore(snap)
        assert len(index) == 1


def protected(**overrides) -> tuple[StagingGroup, StagingClient]:
    kwargs = dict(
        protection=ProtectionConfig(mode="rs", parity=2),
        retry=RetryPolicy(base_backoff=0.001, max_backoff=0.004),
    )
    kwargs.update(overrides)
    group = StagingGroup.create(DOMAIN, num_servers=4, **kwargs)
    return group, StagingClient(group)


class TestProtectedPath:
    def test_protected_put_places_parity_on_non_owner_servers(self):
        group, client = protected()
        client.put(DESC, DATA)
        (record,) = group.records.for_key(DESC.name, DESC.version)
        for p in record.parity:
            owners = {record.shards[i].server for i in record.groups[p.group]}
            assert p.server not in owners
        assert sum(s.protection_nbytes for s in group.servers) > 0

    def test_unprotected_group_has_zero_overhead(self):
        group = StagingGroup.create(DOMAIN, num_servers=4)
        client = StagingClient(group)
        client.put(DESC, DATA)
        assert len(group.records) == 0
        assert sum(s.protection_nbytes for s in group.servers) == 0

    def test_absent_data_still_raises_object_not_found(self):
        # No fault anywhere: a read of a version never written must surface
        # as ObjectNotFound (blocking gets depend on it), not as degraded.
        group, client = protected()
        client.put(DESC, DATA)
        with pytest.raises(ObjectNotFound):
            client.get(DESC.with_version(9))

    def test_eviction_drops_fragments_and_records(self):
        group, client = protected()
        client.put(DESC, DATA)
        for server in group.servers:
            server.evict(DESC.name, DESC.version)
        group.records.evict(DESC.name, DESC.version)
        assert sum(s.nbytes for s in group.servers) == 0
        assert sum(s.protection_nbytes for s in group.servers) == 0
        assert len(group.records) == 0

    def test_latest_version_sees_versions_only_parity_remembers(self):
        group, client = protected()
        client.put(DESC, DATA)
        lost = group.records.for_key(DESC.name, DESC.version)[0].shards[0].server
        inject_faults(group, [FaultPlan(server=lost, op=0, kind="crash")])
        assert client.latest_version(DESC.name) == DESC.version

    def test_covers_true_under_survivable_loss_false_beyond(self):
        group, client = protected(protection=ProtectionConfig(mode="rs", parity=1))
        client.put(DESC, DATA)
        inject_faults(group, [FaultPlan(server=0, op=0, kind="crash")])
        client.get(DESC)  # drive health to notice the crash
        assert client.covers(DESC)
        group.health.mark_down(1)
        assert not client.covers(DESC)


class TestRebuild:
    def test_rebuild_restores_direct_serving(self):
        group, client = protected()
        client.put(DESC, DATA)
        inject_faults(group, [FaultPlan(server=2, op=0, kind="crash")])
        np.testing.assert_array_equal(client.get(DESC), DATA)  # degraded
        rebuilt = group.rebuild(2)
        assert rebuilt > 0
        assert group.health.state(2) == "up"
        # The replacement serves directly: drop protection and read raw.
        group.drop_protection()
        np.testing.assert_array_equal(client.get(DESC), DATA)

    def test_rebuild_restores_parity_for_future_losses(self):
        group, client = protected()
        client.put(DESC, DATA)
        inject_faults(group, [FaultPlan(server=1, op=0, kind="crash")])
        client.get(DESC)
        group.rebuild(1)
        # Now lose a *different* server: the rebuilt parity must carry it.
        group.health.mark_down(3)
        np.testing.assert_array_equal(client.get(DESC), DATA)

    def test_rebuild_is_counted_per_record(self):
        group, client = protected()
        client.put(DESC, DATA)
        client.put(DESC.with_version(2), DATA * 2)
        group.health.mark_down(0)
        rebuilt = group.rebuild(0)
        direct = StagingClient(group)
        group.drop_protection()
        np.testing.assert_array_equal(direct.get(DESC.with_version(2)), DATA * 2)
        assert rebuilt > 0
