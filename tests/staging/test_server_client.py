"""Tests for the staging server and the sharded client API."""

import numpy as np
import pytest

from repro.descriptors import ObjectDescriptor
from repro.errors import ObjectNotFound
from repro.geometry import BBox, Domain
from repro.staging import StagingClient, StagingGroup, StagingServer

from tests.conftest import make_payload


class TestServer:
    def test_put_get(self):
        srv = StagingServer(0)
        d = ObjectDescriptor("x", 0, BBox((0, 0), (4, 4)))
        data = np.arange(16, dtype=np.float64).reshape(4, 4)
        srv.put(d, data)
        assert np.array_equal(srv.get(d), data)
        assert srv.nbytes == d.nbytes

    def test_redundant_put_does_not_double_count(self):
        srv = StagingServer(0)
        d = ObjectDescriptor("x", 0, BBox((0,), (8,)))
        data = np.ones(8)
        srv.put(d, data)
        srv.put(d, data)
        assert srv.nbytes == d.nbytes
        assert len(srv.index) == 1

    def test_keep_only_latest(self):
        srv = StagingServer(0)
        for v in range(4):
            d = ObjectDescriptor("x", v, BBox((0,), (8,)))
            srv.put(d, np.full(8, float(v)))
        freed = srv.keep_only_latest("x")
        assert freed == 3 * 8 * 8
        assert srv.query_versions("x") == [3]

    def test_keep_only_latest_empty(self):
        assert StagingServer(0).keep_only_latest("nope") == 0

    def test_evict_older_than_version(self):
        srv = StagingServer(0)
        for v in range(5):
            srv.put(ObjectDescriptor("x", v, BBox((0,), (4,))), np.zeros(4))
        srv.evict_older_than_version("x", 3)
        assert srv.query_versions("x") == [3, 4]

    def test_summary(self):
        srv = StagingServer(2)
        srv.put(ObjectDescriptor("rho", 0, BBox((0,), (4,))), np.zeros(4))
        s = srv.summary()
        assert s["server_id"] == 2
        assert s["names"] == ["rho"]
        assert s["fragments"] == 1


class TestGroup:
    def test_create(self, domain):
        grp = StagingGroup.create(domain, num_servers=3)
        assert len(grp.servers) == 3
        assert grp.total_bytes == 0

    def test_bytes_per_server_tracks_puts(self, domain):
        grp = StagingGroup.create(domain, num_servers=4)
        cli = StagingClient(grp)
        d = ObjectDescriptor("x", 0, domain.bbox)
        cli.put(d, make_payload(d))
        assert grp.total_bytes == d.nbytes
        assert sum(grp.bytes_per_server()) == d.nbytes
        assert all(b > 0 for b in grp.bytes_per_server())


class TestClient:
    def test_roundtrip_full_domain(self, domain, client):
        d = ObjectDescriptor("x", 0, domain.bbox)
        data = make_payload(d)
        shards = client.put(d, data)
        assert shards >= len(client.group.servers)
        assert np.array_equal(client.get(d), data)

    def test_roundtrip_subregion(self, domain, client):
        d = ObjectDescriptor("x", 0, domain.bbox)
        data = make_payload(d)
        client.put(d, data)
        sub = d.with_bbox(BBox((2, 3, 1), (10, 12, 6)))
        assert np.array_equal(client.get(sub), data[2:10, 3:12, 1:6])

    def test_put_subregion_then_get_it(self, domain, client):
        region = BBox((4, 4, 2), (12, 12, 6))
        d = ObjectDescriptor("x", 0, region)
        data = make_payload(d)
        client.put(d, data)
        assert np.array_equal(client.get(d), data)

    def test_get_missing_raises(self, domain, client):
        with pytest.raises(ObjectNotFound):
            client.get(ObjectDescriptor("nope", 0, domain.bbox))

    def test_get_region_outside_domain(self, domain, client):
        outside = ObjectDescriptor(
            "x", 0, BBox((100, 100, 100), (101, 101, 101))
        )
        with pytest.raises(ObjectNotFound):
            client.get(outside)

    def test_covers(self, domain, client):
        d = ObjectDescriptor("x", 0, domain.bbox)
        assert not client.covers(d)
        client.put(d, make_payload(d))
        assert client.covers(d)

    def test_latest_version(self, domain, client):
        assert client.latest_version("x") is None
        for v in (0, 2, 1):
            d = ObjectDescriptor("x", v, domain.bbox)
            client.put(d, make_payload(d))
        assert client.latest_version("x") == 2

    def test_multiple_variables_coexist(self, domain, client):
        for name in ("rho", "temp", "pressure"):
            d = ObjectDescriptor(name, 0, domain.bbox)
            client.put(d, make_payload(d))
        for name in ("rho", "temp", "pressure"):
            d = ObjectDescriptor(name, 0, domain.bbox)
            assert np.array_equal(client.get(d), make_payload(d))

    def test_distinct_rank_blocks_assemble(self, domain, client):
        # Producer ranks each write their own block; a consumer reads whole.
        from repro.geometry import grid_decompose

        blocks = grid_decompose(domain.bbox, (2, 2, 1))
        full = ObjectDescriptor("x", 0, domain.bbox)
        data = make_payload(full)
        for blk in blocks:
            client.put(full.with_bbox(blk), data[blk.slices()])
        assert np.array_equal(client.get(full), data)
