"""Tests for the versioned object store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.descriptors import ObjectDescriptor
from repro.errors import ObjectNotFound, StagingError, VersionConflict
from repro.geometry import BBox
from repro.staging.store import ObjectStore, StoredObject


def desc(name="x", version=0, lo=(0, 0), hi=(4, 4), dtype="float64"):
    return ObjectDescriptor(name, version, BBox(lo, hi), dtype)


def data_for(d, fill=1.0):
    return np.full(d.bbox.shape, fill, dtype=d.dtype)


class TestStoredObject:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(StagingError):
            StoredObject(desc(), np.zeros((2, 2)))

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(StagingError):
            StoredObject(desc(), np.zeros((4, 4), dtype=np.float32))

    def test_nbytes(self):
        obj = StoredObject(desc(), np.zeros((4, 4)))
        assert obj.nbytes == 16 * 8


class TestPut:
    def test_put_and_get_roundtrip(self):
        store = ObjectStore()
        d = desc()
        payload = np.arange(16, dtype=np.float64).reshape(4, 4)
        store.put(d, payload)
        assert np.array_equal(store.get(d), payload)

    def test_put_copies_payload(self):
        store = ObjectStore()
        d = desc()
        payload = data_for(d)
        store.put(d, payload)
        payload[:] = 99.0
        assert not np.any(store.get(d) == 99.0)

    def test_idempotent_identical_re_put(self):
        store = ObjectStore()
        d = desc()
        store.put(d, data_for(d, 2.0))
        store.put(d, data_for(d, 2.0))
        assert store.object_count == 1
        assert store.nbytes == d.nbytes

    def test_conflicting_re_put_rejected(self):
        store = ObjectStore()
        d = desc()
        store.put(d, data_for(d, 1.0))
        with pytest.raises(VersionConflict):
            store.put(d, data_for(d, 2.0))

    def test_fragments_from_different_regions(self):
        store = ObjectStore()
        left = desc(lo=(0, 0), hi=(4, 2))
        right = desc(lo=(0, 2), hi=(4, 4))
        store.put(left, data_for(left, 1.0))
        store.put(right, data_for(right, 2.0))
        whole = store.get(desc())
        assert np.all(whole[:, :2] == 1.0)
        assert np.all(whole[:, 2:] == 2.0)

    def test_overlapping_consistent_fragments_ok(self):
        store = ObjectStore()
        a = desc(lo=(0, 0), hi=(4, 3))
        b = desc(lo=(0, 1), hi=(4, 4))
        base = np.arange(16, dtype=np.float64).reshape(4, 4)
        store.put(a, base[:, 0:3])
        store.put(b, base[:, 1:4])
        assert np.array_equal(store.get(desc()), base)

    def test_casts_payload_dtype(self):
        store = ObjectStore()
        d = desc(dtype="float32")
        store.put(d, np.ones((4, 4), dtype=np.float64))
        assert store.get(d).dtype == np.float32


class TestGet:
    def test_missing_name(self):
        with pytest.raises(ObjectNotFound):
            ObjectStore().get(desc())

    def test_missing_version(self):
        store = ObjectStore()
        store.put(desc(version=0), data_for(desc()))
        with pytest.raises(ObjectNotFound):
            store.get(desc(version=1))

    def test_partial_coverage_rejected(self):
        store = ObjectStore()
        half = desc(lo=(0, 0), hi=(2, 4))
        store.put(half, data_for(half))
        with pytest.raises(ObjectNotFound):
            store.get(desc())

    def test_subregion_get(self):
        store = ObjectStore()
        d = desc()
        base = np.arange(16, dtype=np.float64).reshape(4, 4)
        store.put(d, base)
        sub = desc(lo=(1, 1), hi=(3, 4))
        assert np.array_equal(store.get(sub), base[1:3, 1:4])

    def test_covers(self):
        store = ObjectStore()
        half = desc(lo=(0, 0), hi=(2, 4))
        store.put(half, data_for(half))
        assert store.covers(half)
        assert not store.covers(desc())


class TestVersionsAndEviction:
    def test_versions_sorted(self):
        store = ObjectStore()
        for v in (3, 1, 2):
            store.put(desc(version=v), data_for(desc()))
        assert store.versions("x") == [1, 2, 3]
        assert store.latest_version("x") == 3

    def test_latest_version_missing(self):
        assert ObjectStore().latest_version("nope") is None

    def test_evict_frees_bytes(self):
        store = ObjectStore()
        d = desc()
        store.put(d, data_for(d))
        freed = store.evict("x", 0)
        assert freed == d.nbytes
        assert store.nbytes == 0
        assert store.versions("x") == []

    def test_evict_missing_returns_zero(self):
        assert ObjectStore().evict("x", 0) == 0

    def test_evict_older_than(self):
        store = ObjectStore()
        for v in range(5):
            store.put(desc(version=v), data_for(desc()))
        store.evict_older_than("x", 3)
        assert store.versions("x") == [3, 4]

    def test_clear(self):
        store = ObjectStore()
        store.put(desc(), data_for(desc()))
        store.clear()
        assert store.nbytes == 0
        assert store.keys() == []


class TestSnapshot:
    def test_snapshot_restore_roundtrip(self):
        store = ObjectStore()
        d0 = desc(version=0)
        store.put(d0, data_for(d0, 1.0))
        snap = store.snapshot()
        d1 = desc(version=1)
        store.put(d1, data_for(d1, 2.0))
        store.restore(snap)
        assert store.versions("x") == [0]
        assert store.nbytes == d0.nbytes
        assert np.all(store.get(d0) == 1.0)

    def test_snapshot_isolated_from_later_mutation(self):
        store = ObjectStore()
        store.put(desc(version=0), data_for(desc()))
        snap = store.snapshot()
        store.evict("x", 0)
        store.restore(snap)
        assert store.versions("x") == [0]


class TestByteAccounting:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=12))
    def test_nbytes_matches_contents(self, versions):
        store = ObjectStore()
        for v in set(versions):
            d = desc(version=v)
            store.put(d, data_for(d, float(v)))
        expected = sum(
            frag.nbytes for key in store.keys() for frag in store.fragments(*key)
        )
        assert store.nbytes == expected
