"""Equivalence tests for incremental copy-on-write checkpoints.

The contract of ``repro.staging.cow`` is exact equivalence: composing a
``base + deltas`` chain must yield byte-for-byte the snapshot a full copy
would have produced at the same instant, and restoring an incremental
snapshot must bring back byte-identical stores, index entries, blobs,
protection records, health, and read frontiers. Hypothesis drives random
put / get (frontier advance) / evict / snapshot / restore (rollback)
interleavings through the synchronized service with ``max_chain=2`` so
chain compaction boundaries are crossed constantly; directed tests cover
legacy-snapshot load, the full-capture fallback under churn, and the
aggregate-carrying restore path (no ``_recount`` rescans).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WorkflowStaging
from repro.descriptors import ObjectDescriptor
from repro.geometry import BBox, Domain
from repro.runtime.staging_service import SynchronizedStaging
from repro.staging import ProtectionConfig, RetryPolicy, StagingGroup
from repro.staging.cow import (
    compose_chain,
    full_snapshot_bytes,
    is_cow_snapshot,
    snapshot_cost_bytes,
)
from repro.staging.index import SpatialIndex

from tests.conftest import make_payload, requires_inproc

DOMAIN_SHAPE = (16,)

BOXES = (
    BBox((0,), (16,)),
    BBox((0,), (8,)),
    BBox((8,), (16,)),
)


def make_service(
    max_chain: int = 2, protection: ProtectionConfig | None = None
) -> SynchronizedStaging:
    group = StagingGroup.create(
        Domain(DOMAIN_SHAPE),
        num_servers=3,
        protection=protection,
        retry=RetryPolicy(base_backoff=0.001, max_backoff=0.004),
    )
    svc = SynchronizedStaging(
        WorkflowStaging(group, enable_logging=True), poll_timeout=0.02, max_wait=2.0
    )
    svc.register("sim")
    svc.register("ana")
    svc.staging.checkpointer.max_chain = max_chain
    return svc


# ------------------------------------------------------------- fingerprints
#
# Byte-level fingerprints of staging state. Fragment/entry dataclasses
# compare payloads by identity or not at all, so arrays are reduced to raw
# bytes explicitly — "identical" below always means byte-identical.


def _server_fp(store_objects, index_entries, blobs):
    store = tuple(
        (key, tuple((o.desc, o.data.tobytes()) for o in objs))
        for key, objs in sorted(store_objects.items())
    )
    index = tuple((key, tuple(es)) for key, es in sorted(index_entries.items()))
    blob = tuple(
        (key, tuple(sorted((bk, b.tobytes()) for bk, b in bucket.items())))
        for key, bucket in sorted(blobs.items())
    )
    return (store, index, blob)


def live_fp(service: SynchronizedStaging):
    """Fingerprint of the live service state (data + coupling + resilience)."""
    group = service.group
    servers = tuple(
        _server_fp(s.store._objects, s.index._entries, s._blobs)
        for s in group.servers
    )
    records = tuple(
        (key, tuple(sorted(recs.items())))
        for key, recs in sorted(group.records._records.items())
    )
    health = group.health.snapshot()
    return (
        servers,
        tuple(sorted(service._frontier.items())),
        records,
        (tuple(health["states"]), tuple(health["failures"])),
    )


def snap_fp(full: dict):
    """Fingerprint of a seed-format full snapshot, aggregates included."""
    servers = []
    for s in full["servers"]:
        fp = _server_fp(s["store"]["objects"], s["index"]["entries"], s["blobs"])
        agg = s["index"].get("aggregates")
        servers.append(
            (
                fp,
                s["store"]["bytes"],
                s["store"].get("count"),
                s["store"].get("versions"),
                None if agg is None else tuple(sorted(agg["volumes"].items())),
                None if agg is None else (agg["total_bytes"], agg["count"]),
            )
        )
    records = tuple(
        (key, tuple(sorted(recs.items())))
        for key, recs in sorted(full["protection"]["records"].items())
    )
    health = full["health"]
    return (
        tuple(servers),
        tuple(sorted(full["frontier"].items())),
        records,
        (tuple(health["states"]), tuple(health["failures"])),
    )


def reference_full(service: SynchronizedStaging) -> dict:
    """A seed-format full copy taken outside the checkpointer (pure read)."""
    group = service.group
    return {
        "servers": [s.snapshot() for s in group.servers],
        "frontier": dict(service._frontier),
        "protection": group.records.snapshot(),
        "health": group.health.snapshot(),
    }


def evict_version(service: SynchronizedStaging, name: str, version: int) -> None:
    """Service-side eviction of one (name, version) across the group."""
    with service._meta:
        service._quiesce_data_plane()
        try:
            for srv in service.group.servers:
                srv.evict(name, version)
            service.group.records.evict(name, version)
        finally:
            service._release_data_plane()


# ---------------------------------------------------------- property test

names = st.sampled_from(["u", "v"])

ops = st.one_of(
    st.tuples(st.just("put"), names, st.sampled_from(range(len(BOXES)))),
    st.tuples(st.just("get"), names),
    st.tuples(st.just("evict"), names),
    st.tuples(st.just("snapshot")),
    st.tuples(st.just("restore")),
)


@requires_inproc
@settings(max_examples=40, deadline=None)
@given(st.lists(ops, max_size=30))
def test_incremental_matches_full_copy(op_list):
    """compose(chain) == full copy, and restore(chain) == state at capture.

    The model tracks which (name, version) descriptors are live so gets
    never wait on evicted/rolled-back data; saved snapshots carry the model
    alongside the incremental snapshot and the byte fingerprint taken at
    capture time.
    """
    service = make_service(max_chain=2)
    live: dict[str, dict[int, ObjectDescriptor]] = {"u": {}, "v": {}}
    next_version = {"u": 0, "v": 0}
    saved = []  # (incremental snapshot, live fingerprint, model copy)
    for op in op_list:
        kind = op[0]
        if kind == "put":
            _, name, box_i = op
            version = next_version[name]
            next_version[name] = version + 1
            desc = ObjectDescriptor(name, version, BOXES[box_i])
            service.put("sim", desc, make_payload(desc), version)
            live[name][version] = desc
        elif kind == "get":
            _, name = op
            if live[name]:
                version = max(live[name])
                service.get_blocking("ana", live[name][version], version)
        elif kind == "evict":
            _, name = op
            if live[name]:
                version = min(live[name])
                evict_version(service, name, version)
                del live[name][version]
        elif kind == "snapshot":
            ref = reference_full(service)
            snap = service.snapshot()
            assert is_cow_snapshot(snap)
            composed = compose_chain(snap["chain"])
            assert snap_fp(composed) == snap_fp(ref)
            saved.append((snap, live_fp(service), {n: dict(v) for n, v in live.items()}))
        elif kind == "restore" and saved:
            snap, fp, model = saved[-1]
            service.restore(snap)
            assert live_fp(service) == fp
            live = {n: dict(v) for n, v in model.items()}
    # Whatever happened, every retained snapshot still restores exactly —
    # compaction of the live chain must never corrupt older chain views.
    for snap, fp, _model in saved:
        service.restore(snap)
        assert live_fp(service) == fp


@requires_inproc
@settings(max_examples=10, deadline=None)
@given(st.lists(ops, max_size=20))
def test_incremental_matches_full_copy_with_protection(op_list):
    """Same equivalence with RS protection: parity blobs and put records
    ride the delta chain too."""
    service = make_service(
        max_chain=2, protection=ProtectionConfig(mode="rs", parity=1)
    )
    live: dict[str, dict[int, ObjectDescriptor]] = {"u": {}, "v": {}}
    next_version = {"u": 0, "v": 0}
    saved = []
    for op in op_list:
        kind = op[0]
        if kind == "put":
            _, name, box_i = op
            version = next_version[name]
            next_version[name] = version + 1
            desc = ObjectDescriptor(name, version, BOXES[box_i])
            service.put("sim", desc, make_payload(desc), version)
            live[name][version] = desc
        elif kind == "get":
            _, name = op
            if live[name]:
                version = max(live[name])
                service.get_blocking("ana", live[name][version], version)
        elif kind == "evict":
            _, name = op
            if live[name]:
                version = min(live[name])
                evict_version(service, name, version)
                del live[name][version]
        elif kind == "snapshot":
            ref = reference_full(service)
            snap = service.snapshot()
            composed = compose_chain(snap["chain"])
            assert snap_fp(composed) == snap_fp(ref)
            saved.append((snap, live_fp(service)))
        elif kind == "restore" and saved:
            snap, fp = saved[-1]
            service.restore(snap)
            assert live_fp(service) == fp
            live = {"u": {}, "v": {}}  # conservative: only puts after restore
            next_version = {
                n: next_version[n] for n in next_version
            }  # versions never reused


# ------------------------------------------------------------ directed tests


def put_versions(service, name, versions, box=BOXES[0]):
    descs = []
    for v in versions:
        d = ObjectDescriptor(name, v, box)
        service.put("sim", d, make_payload(d), v)
        descs.append(d)
    return descs


class TestChainLifecycle:
    def test_first_snapshot_is_base_then_deltas(self):
        service = make_service()
        put_versions(service, "x", [0])
        s0 = service.snapshot()
        assert is_cow_snapshot(s0)
        assert s0["chain"]["deltas"] == ()
        put_versions(service, "x", [1])
        s1 = service.snapshot()
        assert len(s1["chain"]["deltas"]) == 1
        assert s1["chain"]["base"] is s0["chain"]["base"]

    @requires_inproc
    def test_compaction_bounds_chain_and_preserves_old_views(self):
        service = make_service(max_chain=2)
        fps = []
        snaps = []
        for v in range(6):
            put_versions(service, "x", [v])
            snaps.append(service.snapshot())
            fps.append(live_fp(service))
        ckpt = service.staging.checkpointer
        assert ckpt.chain_length <= 2
        # Every snapshot — including ones whose chain was later compacted
        # away under the live checkpointer — still restores exactly.
        for snap, fp in zip(snaps, fps):
            service.restore(snap)
            assert live_fp(service) == fp

    def test_delta_cost_is_o_delta_not_o_staging(self):
        service = make_service(max_chain=8)
        put_versions(service, "x", list(range(8)))
        base = service.snapshot()
        baseline = full_snapshot_bytes(base["chain"]["base"])
        d = ObjectDescriptor("x", 8, BOXES[1])
        service.put("sim", d, make_payload(d), 8)
        delta = service.snapshot()
        assert snapshot_cost_bytes(delta) == make_payload(d).nbytes
        assert snapshot_cost_bytes(delta) < baseline
        assert snapshot_cost_bytes(base) == baseline

    def test_empty_delta_when_nothing_changed(self):
        service = make_service()
        put_versions(service, "x", [0])
        service.snapshot()
        snap = service.snapshot()
        last = snap["chain"]["deltas"][-1]
        assert last["nbytes"] == 0
        assert last["mutations"] == 0

    def test_high_churn_falls_back_to_full_capture(self):
        service = make_service()
        put_versions(service, "x", [0])
        service.snapshot()  # base; journaling on
        ckpt = service.staging.checkpointer
        ckpt.full_fallback_ratio = 0.0
        # >64 journaled mutations with tiny live state: replaying would cost
        # more than re-copying, so the next capture must re-base.
        put_versions(service, "churn", list(range(40)), box=BOXES[1])
        assert ckpt.wants_full()
        snap = service.snapshot()
        assert is_cow_snapshot(snap)
        assert snap["chain"]["deltas"] == ()  # fresh base, chain restarted
        service.restore(snap)
        assert service.group.servers[0].store.versions("churn")


class TestSeedCompatibility:
    @requires_inproc
    def test_full_true_stays_seed_shaped_and_journaling_off(self):
        service = make_service()
        put_versions(service, "x", [0, 1])
        snap = service.snapshot(full=True)
        assert not is_cow_snapshot(snap)
        assert set(snap) == {"servers", "frontier", "protection", "health"}
        # The seed path never turns journaling on by itself.
        assert not service.staging.checkpointer.journaling
        assert service.group.servers[0].store._journal is None

    def test_legacy_restore_marks_chain_dirty(self):
        service = make_service()
        put_versions(service, "x", [0])
        legacy = service.snapshot(full=True)
        service.snapshot()  # start an incremental chain
        put_versions(service, "x", [1])
        fp_before = snap_fp(
            {**legacy, "servers": legacy["servers"]}
        )  # legacy fp unchanged by later ops
        service.restore(legacy)
        assert snap_fp(reference_full(service)) == fp_before
        ckpt = service.staging.checkpointer
        assert ckpt.dirty and ckpt.wants_full()
        # Next incremental snapshot re-bases on the restored state.
        snap = service.snapshot()
        assert is_cow_snapshot(snap) and snap["chain"]["deltas"] == ()
        assert not ckpt.dirty

    def test_chain_restore_rebases_future_deltas(self):
        service = make_service()
        put_versions(service, "x", [0])
        s0 = service.snapshot()
        put_versions(service, "x", [1, 2])
        service.snapshot()
        service.restore(s0)  # rollback to the base epoch
        put_versions(service, "x", [3])
        s1 = service.snapshot()
        # The post-rollback delta chains onto the restored snapshot, not the
        # rolled-back epochs: composing yields versions {0, 3} only.
        composed = compose_chain(s1["chain"])
        versions = set()
        for s in composed["servers"]:
            for name, vs in s["store"].get("versions", {}).items():
                versions |= vs
        assert versions == {0, 3}


@requires_inproc
class TestAggregateCarryingRestore:
    def test_restore_skips_recount_when_aggregates_present(self, monkeypatch):
        service = make_service()
        put_versions(service, "x", [0, 1])
        snap = service.snapshot(full=True)

        def boom(self):
            raise AssertionError("restore rescanned despite carried aggregates")

        monkeypatch.setattr(SpatialIndex, "_recount", boom)
        service.restore(snap)  # aggregate-carrying: no O(n) rescan
        check = service.group.servers
        assert sum(s.index.nbytes() for s in check) == sum(
            s.store.nbytes for s in check
        )

    def test_legacy_aggregate_free_snapshot_still_recounts(self):
        service = make_service()
        put_versions(service, "x", [0])
        snap = service.snapshot(full=True)
        for s in snap["servers"]:
            s["index"].pop("aggregates")
            s["store"].pop("count")
            s["store"].pop("versions")
        service.restore(snap)
        for srv in service.group.servers:
            assert srv.index.nbytes() == srv.store.nbytes
            assert srv.index._volumes == {
                key: sum(e.desc.bbox.volume for e in es)
                for key, es in srv.index._entries.items()
            }


class TestCoveredFastPaths:
    def test_volume_early_out_rejects_without_geometry(self):
        idx = SpatialIndex()
        d = ObjectDescriptor("x", 0, BBox((0,), (4,)))
        idx.insert(d, 32)
        # Summed fragment volume (4) < region volume (16): provably uncovered.
        assert not idx.covered("x", 0, BBox((0,), (16,)))
        # Single-fragment fast path: containment decides directly.
        assert idx.covered("x", 0, BBox((1,), (3,)))
        assert not idx.covered("x", 0, BBox((2,), (6,)))

    def test_multi_fragment_coverage_still_exact(self):
        idx = SpatialIndex()
        for lo, hi in ((0, 4), (4, 8)):
            d = ObjectDescriptor("x", 0, BBox((lo,), (hi,)))
            idx.insert(d, (hi - lo) * 8)
        assert idx.covered("x", 0, BBox((0,), (8,)))
        assert idx.covered("x", 0, BBox((2,), (6,)))
        assert not idx.covered("x", 0, BBox((2,), (9,)))
        # Overlapping fragments: summed volume exceeds the region but holes
        # remain — the early-out must not claim coverage.
        idx2 = SpatialIndex()
        for lo, hi in ((0, 4), (1, 5), (2, 6)):
            d = ObjectDescriptor("y", 0, BBox((lo,), (hi,)))
            idx2.insert(d, (hi - lo) * 8)
        assert not idx2.covered("y", 0, BBox((0,), (12,)))


class TestObsReport:
    def test_checkpoint_report_renders_and_empty_without_activity(self):
        from repro.analysis.obs_report import checkpoint_report

        assert checkpoint_report(snapshot={}) == ""
        service = make_service()
        put_versions(service, "x", [0])
        service.snapshot()
        put_versions(service, "x", [1])
        service.snapshot()
        out = checkpoint_report()
        assert "checkpointing" in out
        assert "captures (full / incremental)" in out
        assert "gate (quiesce window) s" in out
