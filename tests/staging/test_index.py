"""Tests for the per-server spatial metadata index."""

from repro.descriptors import ObjectDescriptor
from repro.geometry import BBox
from repro.staging.index import SpatialIndex


def desc(name="x", version=0, lo=(0, 0), hi=(4, 4)):
    return ObjectDescriptor(name, version, BBox(lo, hi))


class TestInsertQuery:
    def test_insert_and_query(self):
        idx = SpatialIndex()
        idx.insert(desc(), 128)
        assert len(idx.query("x", 0)) == 1
        assert idx.query("x", 1) == []

    def test_query_by_region(self):
        idx = SpatialIndex()
        idx.insert(desc(lo=(0, 0), hi=(2, 2)), 32)
        idx.insert(desc(lo=(2, 2), hi=(4, 4)), 32)
        hits = idx.query("x", 0, BBox((0, 0), (1, 1)))
        assert len(hits) == 1
        assert hits[0].desc.bbox == BBox((0, 0), (2, 2))

    def test_versions_and_names(self):
        idx = SpatialIndex()
        idx.insert(desc(version=2), 1)
        idx.insert(desc(version=0), 1)
        idx.insert(desc(name="y"), 1)
        assert idx.versions("x") == [0, 2]
        assert idx.names() == ["x", "y"]

    def test_len(self):
        idx = SpatialIndex()
        idx.insert(desc(), 1)
        idx.insert(desc(version=1), 1)
        assert len(idx) == 2


class TestCoverage:
    def test_covered_true(self):
        idx = SpatialIndex()
        idx.insert(desc(lo=(0, 0), hi=(2, 4)), 1)
        idx.insert(desc(lo=(2, 0), hi=(4, 4)), 1)
        assert idx.covered("x", 0, BBox((0, 0), (4, 4)))

    def test_covered_false_with_gap(self):
        idx = SpatialIndex()
        idx.insert(desc(lo=(0, 0), hi=(2, 4)), 1)
        assert not idx.covered("x", 0, BBox((0, 0), (4, 4)))

    def test_covered_missing_version(self):
        assert not SpatialIndex().covered("x", 0, BBox((0,), (1,)))


class TestRemoveAndBytes:
    def test_remove_version(self):
        idx = SpatialIndex()
        idx.insert(desc(), 10)
        idx.insert(desc(), 20)
        assert idx.remove_version("x", 0) == 2
        assert idx.query("x", 0) == []

    def test_remove_missing(self):
        assert SpatialIndex().remove_version("x", 5) == 0

    def test_nbytes(self):
        idx = SpatialIndex()
        idx.insert(desc(), 10)
        idx.insert(desc(version=1), 30, logged=True)
        assert idx.nbytes() == 40
        assert idx.nbytes(logged_only=True) == 30
