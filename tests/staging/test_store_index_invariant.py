"""Property test: a server's store and spatial index never drift apart.

The staging server promises that ``index.versions(name) ==
store.versions(name)`` and ``index.nbytes() == store.nbytes`` hold after
every operation (see the StagingServer docstring). Two past bugs broke it:

* ``put`` indexed on the store's *byte delta*, so zero-byte fragments
  (itemsize-0 dtypes such as ``"V0"``) entered the store but never the
  index, and ``index.nbytes()`` drifted from ``store.nbytes``;
* coordinated rollback restored the store but not the index, leaving stale
  entries for rolled-back versions.

Hypothesis drives arbitrary sequences of put / evict / evict-older-than /
keep-only-latest (the GC retention primitive) / snapshot / restore and
checks the invariant at every step.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.descriptors import ObjectDescriptor
from repro.geometry import BBox
from repro.staging import StagingServer

# Per-name dtype: "z" exercises zero-byte payloads (itemsize-0 void dtype).
DTYPES = {"u": "float64", "z": "V0"}

BOXES = (
    BBox((0,), (4,)),
    BBox((2,), (6,)),  # overlaps both neighbours
    BBox((4,), (8,)),
)


def payload(desc: ObjectDescriptor) -> np.ndarray:
    """Deterministic per-(name, version) fill so overlapping re-puts agree."""
    if np.dtype(desc.dtype).itemsize == 0:
        return np.zeros(desc.bbox.shape, dtype=desc.dtype)
    return np.full(desc.bbox.shape, float(desc.version), dtype=desc.dtype)


names = st.sampled_from(sorted(DTYPES))
versions = st.integers(0, 3)
boxes = st.sampled_from(BOXES)

ops = st.one_of(
    st.tuples(st.just("put"), names, versions, boxes),
    st.tuples(st.just("evict"), names, versions),
    st.tuples(st.just("evict_older"), names, versions),
    st.tuples(st.just("keep_latest"), names),
    st.tuples(st.just("snapshot")),
    st.tuples(st.just("restore")),
)


def check_lockstep(srv) -> None:
    if not isinstance(srv, StagingServer):
        # A remote proxy (wire transport): the live index and raw store
        # dicts are in another process. Materialize the server's state
        # locally and check the invariants on the reconstruction — this
        # still catches store/index drift (the snapshot carries both),
        # while in-process aggregate drift stays covered by the inproc
        # lane, which always runs these tests.
        local = StagingServer(srv.server_id)
        local.restore(srv.snapshot())
        srv = local
    store, index = srv.store, srv.index
    assert index.names() == sorted({n for n, _v in store.keys()})
    for name in index.names():
        assert index.versions(name) == store.versions(name)
    assert index.nbytes() == store.nbytes
    assert len(index) == store.object_count
    check_running_aggregates(srv)


def check_running_aggregates(srv: StagingServer) -> None:
    """The O(1) running totals must equal full recomputes from raw state.

    Both the index and the store maintain incremental aggregates (byte
    totals, entry counts, per-name version sets) instead of scanning; any
    missed update path would silently skew flow control and GC decisions.
    """
    index, store = srv.index, srv.store
    entries = [e for es in index._entries.values() for e in es]
    assert index._total_bytes == sum(e.nbytes for e in entries)
    assert index._logged_bytes == sum(e.nbytes for e in entries if e.logged)
    assert index._count == len(entries)
    index_versions = {}
    for name, version in index._entries:
        index_versions.setdefault(name, set()).add(version)
    assert index._versions == index_versions
    volumes = {}
    for key, es in index._entries.items():
        volumes[key] = sum(e.desc.bbox.volume for e in es)
    assert index._volumes == volumes
    objects = store._objects
    assert store._count == sum(len(frags) for frags in objects.values())
    assert store.nbytes == sum(
        f.data.nbytes for frags in objects.values() for f in frags
    )
    store_versions = {}
    for name, version in objects:
        store_versions.setdefault(name, set()).add(version)
    assert store._versions == store_versions


@settings(max_examples=200, deadline=None)
@given(st.lists(ops, max_size=40))
def test_store_and_index_stay_in_lockstep(op_list):
    srv = StagingServer(0)
    saved = StagingServer.empty_snapshot()
    for op in op_list:
        kind = op[0]
        if kind == "put":
            _, name, version, box = op
            desc = ObjectDescriptor(name, version, box, dtype=DTYPES[name])
            srv.put(desc, payload(desc))
        elif kind == "evict":
            srv.evict(op[1], op[2])
        elif kind == "evict_older":
            srv.evict_older_than_version(op[1], op[2])
        elif kind == "keep_latest":
            srv.keep_only_latest(op[1])
        elif kind == "snapshot":
            saved = srv.snapshot()
        elif kind == "restore":
            srv.restore(saved)
        check_lockstep(srv)


class TestZeroByteRegression:
    """Fragments with zero bytes must be indexed (byte-delta detection lost them)."""

    def test_zero_byte_put_is_indexed(self):
        srv = StagingServer(0)
        desc = ObjectDescriptor("marker", 0, BBox((0,), (4,)), dtype="V0")
        srv.put(desc, np.zeros((4,), dtype="V0"))
        assert srv.store.versions("marker") == [0]
        assert srv.index.versions("marker") == [0]
        assert srv.index.nbytes() == srv.store.nbytes == 0
        assert len(srv.index) == 1

    def test_redundant_reput_still_not_double_indexed(self):
        srv = StagingServer(0)
        desc = ObjectDescriptor("x", 0, BBox((0,), (8,)))
        data = np.ones(8)
        srv.put(desc, data)
        srv.put(desc, data)  # store drops the fully-redundant fragment
        assert len(srv.index) == 1
        assert srv.index.nbytes() == srv.store.nbytes


class TestSnapshotRestore:
    def test_restore_brings_back_index(self):
        srv = StagingServer(0)
        d0 = ObjectDescriptor("x", 0, BBox((0,), (4,)))
        srv.put(d0, np.zeros(4))
        snap = srv.snapshot()
        d1 = ObjectDescriptor("x", 1, BBox((0,), (4,)))
        srv.put(d1, np.ones(4))
        srv.restore(snap)
        assert srv.index.versions("x") == [0]
        check_lockstep(srv)

    def test_legacy_store_only_snapshot_rebuilds_index(self):
        srv = StagingServer(0)
        srv.put(ObjectDescriptor("x", 0, BBox((0,), (4,))), np.zeros(4))
        store_only = srv.store.snapshot()
        srv.put(ObjectDescriptor("x", 1, BBox((0,), (4,))), np.ones(4))
        srv.restore(store_only)  # no "index" key: index must be rebuilt
        assert srv.index.versions("x") == [0]
        check_lockstep(srv)

    def test_rebuild_index_matches_store(self):
        srv = StagingServer(0)
        for v in range(3):
            srv.put(ObjectDescriptor("x", v, BBox((0,), (4,))), np.full(4, float(v)))
        srv.index.clear()
        srv.rebuild_index()
        check_lockstep(srv)
        # Queries through the rebuilt index see every fragment.
        assert srv.index.query("x", 2)[0].nbytes == 32
