"""Tests for DHT placement of domain regions onto servers."""

import pytest

from repro.errors import ConfigError
from repro.geometry import BBox, Domain
from repro.staging.hashing import PlacementMap


class TestConstruction:
    def test_basic(self):
        pm = PlacementMap(Domain((16, 16)), num_servers=4)
        assert pm.num_servers == 4
        assert pm.num_blocks >= 4

    def test_rejects_bad_servers(self):
        with pytest.raises(ConfigError):
            PlacementMap(Domain((8,)), num_servers=0)

    def test_rejects_bad_blocks(self):
        with pytest.raises(ConfigError):
            PlacementMap(Domain((8,)), num_servers=1, blocks_per_server=0)

    def test_rejects_unknown_curve(self):
        with pytest.raises(ConfigError):
            PlacementMap(Domain((8,)), num_servers=1, curve="zigzag")

    def test_morton_curve_supported(self):
        pm = PlacementMap(Domain((16, 16)), num_servers=2, curve="morton")
        assert pm.num_blocks >= 2

    def test_tiny_domain(self):
        pm = PlacementMap(Domain((2, 2)), num_servers=2)
        assert pm.num_blocks <= 4


class TestCoverage:
    def test_shards_cover_domain_exactly(self):
        dom = Domain((16, 16, 8))
        pm = PlacementMap(dom, num_servers=4)
        shards = pm.shards(dom.bbox)
        assert sum(b.volume for _s, b in shards) == dom.volume
        for i in range(len(shards)):
            for j in range(i + 1, len(shards)):
                assert not shards[i][1].intersects(shards[j][1])

    def test_shards_of_subregion(self):
        dom = Domain((16, 16))
        pm = PlacementMap(dom, num_servers=4)
        region = BBox((3, 5), (11, 13))
        shards = pm.shards(region)
        assert sum(b.volume for _s, b in shards) == region.volume
        for _s, b in shards:
            assert region.contains(b)

    def test_every_point_owned_once(self):
        dom = Domain((8, 8))
        pm = PlacementMap(dom, num_servers=3)
        for x in range(8):
            for y in range(8):
                assert 0 <= pm.server_of_point((x, y)) < 3

    def test_point_outside_domain_rejected(self):
        from repro.errors import GeometryError

        pm = PlacementMap(Domain((8, 8)), num_servers=2)
        with pytest.raises(GeometryError):
            pm.server_of_point((8, 0))

    def test_servers_of_region(self):
        dom = Domain((16, 16))
        pm = PlacementMap(dom, num_servers=4)
        servers = pm.servers_of(dom.bbox)
        assert servers == sorted(set(servers))
        assert set(servers) == set(range(4))


class TestBalance:
    def test_load_histogram_balanced(self):
        pm = PlacementMap(Domain((32, 32, 32)), num_servers=8)
        hist = pm.load_histogram()
        assert sum(hist) == pm.num_blocks
        assert max(hist) - min(hist) <= 1

    def test_every_server_used(self):
        pm = PlacementMap(Domain((32, 32)), num_servers=5)
        assert all(h > 0 for h in pm.load_histogram())

    def test_locality_hilbert_beats_morton_on_slabs(self):
        # Hilbert should touch no more servers than there are; sanity check
        # that a thin slab touches a strict subset of servers.
        dom = Domain((64, 64))
        pm = PlacementMap(dom, num_servers=16)
        slab = BBox((0, 0), (8, 64))
        assert len(pm.servers_of(slab)) < 16
