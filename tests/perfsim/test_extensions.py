"""Tests for the proactive and multi-level checkpointing extensions."""

import pytest

from repro.errors import ConfigError
from repro.perfsim import (
    PRODUCER,
    CONSUMER,
    SimFailure,
    simulate,
    table2_config,
)
from repro.perfsim.engine import Engine
from repro.perfsim.extensions import MultiLevelScheme, ProactiveScheme


@pytest.fixture(scope="module")
def cfg():
    return table2_config().with_(
        num_steps=16, staging_cores=8, domain_shape=(128, 128, 64)
    )


class TestProactive:
    def test_saves_lost_work(self, cfg):
        f = [SimFailure(PRODUCER, 10)]
        un = simulate(cfg, "uncoordinated", failures=f).total_time
        pro = simulate(cfg, "proactive", failures=f).total_time
        assert pro < un

    def test_failure_free_costs_nothing_extra(self, cfg):
        un = simulate(cfg, "uncoordinated").total_time
        pro = simulate(cfg, "proactive").total_time
        assert pro == pytest.approx(un)

    def test_predicted_rollback_is_short(self, cfg):
        # With a perfect predictor the victim re-executes ~0 steps.
        f = [SimFailure(PRODUCER, 10)]
        r = simulate(cfg, "proactive", failures=f)
        assert r.components[PRODUCER].steps_run == cfg.num_steps

    def test_recall_validation(self):
        eng = Engine()
        with pytest.raises(ConfigError):
            ProactiveScheme(eng, None, None, None, None, None, recall=1.5)

    def test_consumer_failure_predicted(self, cfg):
        f = [SimFailure(CONSUMER, 9)]
        r = simulate(cfg, "proactive", failures=f)
        assert r.components[CONSUMER].recoveries == 1


class TestMultiLevel:
    def test_cheaper_checkpoints_than_pfs_only(self, cfg):
        un = simulate(cfg, "uncoordinated").total_time
        ml = simulate(cfg, "multilevel").total_time
        assert ml < un

    def test_process_failure_restores_from_node_local(self, cfg):
        f = [SimFailure(PRODUCER, 10)]
        r = simulate(cfg, "multilevel", failures=f)
        assert r.components[PRODUCER].recoveries == 1

    def test_node_failure_falls_back_to_pfs_level(self, cfg):
        proc = simulate(
            cfg, "multilevel", failures=[SimFailure(PRODUCER, 10)]
        ).total_time
        node = simulate(
            cfg, "multilevel", failures=[SimFailure(PRODUCER, 10, kind="node")]
        ).total_time
        # Node failure loses more work (rolls back to the last PFS level).
        assert node >= proc

    def test_consistency_machinery_still_used(self, cfg):
        f = [SimFailure(PRODUCER, 10)]
        r = simulate(cfg, "multilevel", failures=f)
        assert r.suppressed_requests > 0  # logging replay still suppresses

    def test_param_validation(self):
        eng = Engine()
        with pytest.raises(ConfigError):
            MultiLevelScheme(eng, None, None, None, None, None, pfs_interval=0)
        with pytest.raises(ConfigError):
            MultiLevelScheme(
                eng, None, None, None, None, None, node_local_bandwidth=0
            )

    def test_bad_failure_kind_rejected(self):
        with pytest.raises(ConfigError):
            SimFailure(PRODUCER, 3, kind="cosmic-ray")
