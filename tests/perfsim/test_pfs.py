"""Tests for the parallel file system model."""

import pytest

from repro.errors import ConfigError
from repro.perfsim.config import MachineParams
from repro.perfsim.engine import Engine
from repro.perfsim.pfs import ParallelFileSystem


def make_pfs(agg=10e9, per_node=1e9):
    eng = Engine()
    machine = MachineParams(pfs_aggregate_bandwidth=agg, pfs_node_bandwidth=per_node)
    return eng, ParallelFileSystem(eng, machine)


class TestTransferTime:
    def test_node_bound(self):
        eng, pfs = make_pfs()

        def job():
            yield from pfs.write(2e9, nodes=1)  # capped at 1 GB/s

        eng.process(job())
        assert eng.run() == pytest.approx(2.0)

    def test_aggregate_bound(self):
        eng, pfs = make_pfs()

        def job():
            yield from pfs.write(20e9, nodes=100)  # capped at 10 GB/s

        eng.process(job())
        assert eng.run() == pytest.approx(2.0)

    def test_storm_serializes(self):
        eng, pfs = make_pfs()
        done = []

        def job(tag):
            yield from pfs.write(10e9, nodes=100)
            done.append((tag, eng.now))

        eng.process(job("a"))
        eng.process(job("b"))
        eng.run()
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_read_write_share_channel(self):
        eng, pfs = make_pfs()
        done = []

        def writer():
            yield from pfs.write(10e9, nodes=100)
            done.append(("w", eng.now))

        def reader():
            yield from pfs.read(10e9, nodes=100)
            done.append(("r", eng.now))

        eng.process(writer())
        eng.process(reader())
        eng.run()
        assert done == [("w", 1.0), ("r", 2.0)]

    def test_counters(self):
        eng, pfs = make_pfs()

        def job():
            yield from pfs.write(5e9, nodes=100)
            yield from pfs.read(3e9, nodes=100)

        eng.process(job())
        eng.run()
        assert pfs.bytes_written.total == 5e9
        assert pfs.bytes_read.total == 3e9
        assert pfs.write_time.count == 1

    def test_validation(self):
        eng, pfs = make_pfs()
        with pytest.raises(ConfigError):
            list(pfs.write(-1, nodes=1))
        with pytest.raises(ConfigError):
            list(pfs.write(10, nodes=0))

    def test_utilization(self):
        eng, pfs = make_pfs()

        def job():
            yield from pfs.write(10e9, nodes=100)
            yield eng.timeout(1.0)

        eng.process(job())
        eng.run()
        assert pfs.utilization() == pytest.approx(0.5)
