"""Tests for simulation result containers and cross-metric invariants."""

import pytest

from repro.perfsim import CONSUMER, PRODUCER, SimFailure, simulate, table2_config
from repro.perfsim.apps import PhaseTimes
from repro.perfsim.metrics import ComponentMetrics, SimResult
from repro.util.timeline import Timeline


@pytest.fixture(scope="module")
def result():
    cfg = table2_config().with_(
        num_steps=10, staging_cores=4, domain_shape=(64, 64, 32)
    )
    return simulate(cfg, "uncoordinated", failures=[SimFailure(CONSUMER, 6)])


class TestSimResult:
    def test_mean_write_response(self, result):
        assert result.mean_write_response == pytest.approx(
            result.cumulative_write_response / result.write_count
        )

    def test_mean_write_response_empty(self):
        r = SimResult(
            scheme="ds",
            config_name="x",
            total_time=1.0,
            components={},
            cumulative_write_response=0.0,
            write_count=0,
            cumulative_read_response=0.0,
            memory=Timeline("m"),
            failures_injected=0,
        )
        assert r.mean_write_response == 0.0
        assert r.peak_memory == 0.0

    def test_memory_stats_consistent(self, result):
        assert 0 < result.mean_memory <= result.peak_memory

    def test_summary_keys(self, result):
        s = result.summary()
        assert set(s) == {
            "scheme",
            "config",
            "total_time_s",
            "cum_write_response_s",
            "peak_memory_bytes",
            "mean_memory_bytes",
            "failures",
        }
        assert s["failures"] == 1

    def test_component_metrics_complete(self, result):
        assert set(result.components) == {PRODUCER, CONSUMER}
        for m in result.components.values():
            assert isinstance(m, ComponentMetrics)
            assert m.finish_time <= result.total_time
            assert m.steps_run >= 10

    def test_write_count_matches_steps(self, result):
        # One variable, 10 steps: exactly 10 full-cost writes (the victim's
        # replayed puts are suppressed, not re-written).
        assert result.write_count == 10

    def test_events_processed_positive(self, result):
        assert result.events_processed > 0

    def test_pfs_utilization_bounded(self, result):
        assert 0.0 <= result.pfs_utilization <= 1.0


class TestCrossSchemeInvariants:
    @pytest.fixture(scope="class")
    def cfg(self):
        return table2_config().with_(
            num_steps=10, staging_cores=4, domain_shape=(64, 64, 32)
        )

    def test_total_time_is_max_finish(self, cfg):
        for scheme in ("ds", "uncoordinated", "coordinated"):
            r = simulate(cfg, scheme)
            assert r.total_time == pytest.approx(
                max(m.finish_time for m in r.components.values())
            )

    def test_memory_timeline_monotone_time(self, cfg):
        r = simulate(cfg, "uncoordinated")
        times = r.memory.times
        assert times == sorted(times)

    def test_deterministic_repeat(self, cfg):
        a = simulate(cfg, "uncoordinated", failures=[SimFailure(PRODUCER, 5)])
        b = simulate(cfg, "uncoordinated", failures=[SimFailure(PRODUCER, 5)])
        assert a.total_time == b.total_time
        assert a.cumulative_write_response == b.cumulative_write_response
