"""Unit-level tests for simulated components and scheme hooks."""

import pytest

from repro.errors import ConfigError
from repro.perfsim import (
    CONSUMER,
    PRODUCER,
    SimFailure,
    simulate,
    table2_config,
)
from repro.perfsim.apps import PhaseTimes
from repro.perfsim.config import CORI
from repro.perfsim.engine import Engine
from repro.perfsim.ft import DsScheme, make_scheme
from repro.perfsim.pfs import ParallelFileSystem
from repro.perfsim.resources import VersionBoard
from repro.perfsim.staging import StagingModel


@pytest.fixture(scope="module")
def cfg():
    return table2_config().with_(
        num_steps=8, staging_cores=4, domain_shape=(64, 64, 32)
    )


class TestPhaseTimes:
    def test_total(self):
        p = PhaseTimes(compute=1, staging_io=2, coupling_wait=3, checkpoint=4, recovery=5)
        assert p.total() == 15


class TestSchemeFactory:
    def test_all_base_schemes(self, cfg):
        eng = Engine()
        pfs = ParallelFileSystem(eng, CORI)
        sm = StagingModel(eng, cfg, logging_enabled=False)
        b1, b2 = VersionBoard(eng), VersionBoard(eng)
        for name in ("ds", "coordinated", "uncoordinated", "hybrid", "individual"):
            scheme = make_scheme(name, eng, CORI, pfs, sm, b1, b2)
            assert scheme.name == name

    def test_unknown_scheme(self, cfg):
        eng = Engine()
        with pytest.raises(ConfigError):
            make_scheme("nope", eng, CORI, None, None, None, None)

    def test_ds_never_checkpoints_and_never_recovers(self, cfg):
        eng = Engine()
        pfs = ParallelFileSystem(eng, CORI)
        sm = StagingModel(eng, cfg, logging_enabled=False)
        scheme = DsScheme(eng, CORI, pfs, sm, VersionBoard(eng), VersionBoard(eng))
        assert not scheme.checkpoints_component(object())
        with pytest.raises(ConfigError):
            list(scheme.recover(None, 0))


class TestPhaseAccounting:
    def test_phases_sum_close_to_finish_time(self, cfg):
        r = simulate(cfg, "uncoordinated")
        for metrics in r.components.values():
            # All wall time is attributed to some phase (within rounding of
            # the inter-phase bookkeeping instants).
            assert metrics.phases.total() == pytest.approx(
                metrics.finish_time, rel=0.02
            )

    def test_producer_compute_dominates(self, cfg):
        r = simulate(cfg, "uncoordinated")
        p = r.components[PRODUCER].phases
        assert p.compute > p.staging_io

    def test_consumer_waits_for_producer(self, cfg):
        r = simulate(cfg, "uncoordinated")
        c = r.components[CONSUMER].phases
        assert c.coupling_wait > c.compute

    def test_recovery_time_attributed(self, cfg):
        r = simulate(cfg, "uncoordinated", failures=[SimFailure(CONSUMER, 5)])
        assert r.components[CONSUMER].phases.recovery > 0
        assert r.components[PRODUCER].phases.recovery == 0

    def test_coordinated_recovery_attributed_to_both(self, cfg):
        r = simulate(cfg, "coordinated", failures=[SimFailure(CONSUMER, 5)])
        assert r.components[CONSUMER].phases.recovery > 0
        assert r.components[PRODUCER].phases.recovery > 0


class TestFlowControl:
    def test_producer_never_outruns_window(self, cfg):
        # With a huge consumer compute time the producer must throttle.
        slow = cfg.with_(analytic_compute_time=30.0, sim_compute_time=0.1)
        r = simulate(slow, "ds", max_ahead=2)
        p = r.components[PRODUCER].phases
        assert p.coupling_wait > 0.5 * r.total_time

    def test_larger_window_reduces_producer_wait(self, cfg):
        slow = cfg.with_(analytic_compute_time=10.0, sim_compute_time=0.1)
        tight = simulate(slow, "ds", max_ahead=1)
        loose = simulate(slow, "ds", max_ahead=6)
        assert (
            loose.components[PRODUCER].phases.coupling_wait
            < tight.components[PRODUCER].phases.coupling_wait
        )
