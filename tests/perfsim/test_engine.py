"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.perfsim.engine import Engine, Interrupt, all_of


class TestTimeouts:
    def test_time_advances(self):
        eng = Engine()
        log = []

        def proc():
            yield eng.timeout(2.5)
            log.append(eng.now)
            yield eng.timeout(1.5)
            log.append(eng.now)

        eng.process(proc())
        eng.run()
        assert log == [2.5, 4.0]

    def test_zero_timeout_allowed(self):
        eng = Engine()

        def proc():
            yield eng.timeout(0.0)
            return "done"

        p = eng.process(proc())
        eng.run()
        assert p.value == "done"

    def test_negative_timeout_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.timeout(-1.0)

    def test_ordering_fifo_at_same_time(self):
        eng = Engine()
        order = []

        def proc(tag):
            yield eng.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            eng.process(proc(tag))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_run_until(self):
        eng = Engine()

        def proc():
            yield eng.timeout(100)

        eng.process(proc())
        assert eng.run(until=10) == 10


class TestEvents:
    def test_manual_event(self):
        eng = Engine()
        gate = eng.event()
        log = []

        def waiter():
            value = yield gate
            log.append(value)

        def firer():
            yield eng.timeout(3)
            gate.succeed("go")

        eng.process(waiter())
        eng.process(firer())
        eng.run()
        assert log == ["go"]
        assert eng.now == 3

    def test_event_double_trigger_rejected(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_failed_event_raises_in_waiter(self):
        eng = Engine()
        gate = eng.event()
        caught = []

        def waiter():
            try:
                yield gate
            except RuntimeError as err:
                caught.append(str(err))

        eng.process(waiter())
        gate.fail(RuntimeError("boom"))
        eng.run()
        assert caught == ["boom"]

    def test_wait_on_already_triggered(self):
        eng = Engine()
        gate = eng.event()
        gate.succeed(7)
        got = []

        def waiter():
            got.append((yield gate))

        eng.process(waiter())
        eng.run()
        assert got == [7]


class TestProcesses:
    def test_process_return_value(self):
        eng = Engine()

        def child():
            yield eng.timeout(2)
            return 42

        def parent():
            value = yield eng.process(child())
            return value + 1

        p = eng.process(parent())
        eng.run()
        assert p.value == 43

    def test_unwatched_crash_surfaces(self):
        eng = Engine()

        def bad():
            yield eng.timeout(1)
            raise ValueError("broken")

        eng.process(bad())
        with pytest.raises(ValueError, match="broken"):
            eng.run()

    def test_watched_crash_propagates_to_parent(self):
        eng = Engine()

        def bad():
            yield eng.timeout(1)
            raise ValueError("inner")

        caught = []

        def parent():
            try:
                yield eng.process(bad())
            except ValueError as err:
                caught.append(str(err))

        eng.process(parent())
        eng.run()
        assert caught == ["inner"]

    def test_max_events_guard(self):
        eng = Engine()

        def forever():
            while True:
                yield eng.timeout(1)

        eng.process(forever())
        with pytest.raises(SimulationError, match="events"):
            eng.run(max_events=100)


class TestInterrupts:
    def test_interrupt_during_timeout(self):
        eng = Engine()
        out = []

        def sleeper():
            try:
                yield eng.timeout(100)
            except Interrupt as i:
                out.append((eng.now, i.cause))

        p = eng.process(sleeper())

        def killer():
            yield eng.timeout(5)
            p.interrupt("crash")

        eng.process(killer())
        eng.run()
        assert out == [(5.0, "crash")]

    def test_interrupt_finished_process_noop(self):
        eng = Engine()

        def quick():
            yield eng.timeout(1)

        p = eng.process(quick())
        eng.run()
        p.interrupt("late")  # must not raise

    def test_unhandled_interrupt_is_error(self):
        eng = Engine()

        def sleeper():
            yield eng.timeout(100)

        p = eng.process(sleeper())

        def killer():
            yield eng.timeout(1)
            p.interrupt()

        eng.process(killer())
        with pytest.raises(SimulationError, match="interrupt"):
            eng.run()


class TestAllOf:
    def test_waits_for_all(self):
        eng = Engine()

        def child(t):
            yield eng.timeout(t)
            return t

        def parent():
            values = yield all_of(eng, [eng.process(child(t)) for t in (3, 1, 2)])
            return values

        p = eng.process(parent())
        eng.run()
        assert p.value == [3, 1, 2]
        assert eng.now == 3

    def test_empty_list(self):
        eng = Engine()

        def parent():
            return (yield all_of(eng, []))

        p = eng.process(parent())
        eng.run()
        assert p.value == []

    def test_mixed_triggered(self):
        eng = Engine()
        done = eng.event()
        done.succeed("x")

        def child():
            yield eng.timeout(2)
            return "y"

        def parent():
            return (yield all_of(eng, [done, eng.process(child())]))

        p = eng.process(parent())
        eng.run()
        assert p.value == ["x", "y"]
