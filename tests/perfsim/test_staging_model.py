"""Tests for the staging service-time and capacity model."""

import pytest

from repro.descriptors import ObjectDescriptor
from repro.errors import ConfigError
from repro.perfsim.config import table2_config
from repro.perfsim.engine import Engine
from repro.perfsim.staging import AccountingServer, StagingModel


@pytest.fixture
def small_cfg():
    return table2_config().with_(
        domain_shape=(64, 64, 32), staging_cores=4, sim_cores=16, analytic_cores=8
    )


def model(cfg, logging_enabled=True):
    return Engine(), cfg


class TestAccountingServer:
    def test_add_evict(self):
        srv = AccountingServer(0)
        srv.add("x", 0, 100)
        srv.add("x", 0, 50)
        assert srv.nbytes == 150
        assert srv.evict("x", 0) == 150
        assert srv.evict("x", 0) == 0

    def test_versions(self):
        srv = AccountingServer(0)
        srv.add("x", 2, 1)
        srv.add("x", 0, 1)
        assert srv.versions("x") == [0, 2]


class TestServiceTimes:
    def test_put_takes_time(self, small_cfg):
        eng = Engine()
        sm = StagingModel(eng, small_cfg, logging_enabled=False)
        desc = ObjectDescriptor("field", 0, small_cfg.domain.bbox)

        def job():
            yield from sm.put("sim", desc, ranks=16)

        eng.process(job())
        total = eng.run()
        assert total > 0
        assert sm.write_response.count == 1
        assert sm.write_response.total == pytest.approx(total)

    def test_logging_put_slower_than_baseline(self, small_cfg):
        def run_one(logging_enabled):
            eng = Engine()
            sm = StagingModel(eng, small_cfg, logging_enabled=logging_enabled)
            desc = ObjectDescriptor("field", 0, small_cfg.domain.bbox)

            def job():
                yield from sm.put("sim", desc, ranks=16)

            eng.process(job())
            return eng.run()

        assert run_one(True) > run_one(False)

    def test_suppressed_put_is_cheap(self, small_cfg):
        eng = Engine()
        sm = StagingModel(eng, small_cfg, logging_enabled=True)
        desc = ObjectDescriptor("field", 0, small_cfg.domain.bbox)

        def job():
            yield from sm.put("sim", desc, ranks=16)
            t_full = eng.now
            yield from sm.put("sim", desc, suppressed=True, ranks=16)
            return t_full, eng.now - t_full

        p = eng.process(job())
        eng.run()
        t_full, t_suppressed = p.value
        assert t_suppressed < t_full / 50
        assert sm.suppressed_requests.count == 1

    def test_fraction_scales_time(self, small_cfg):
        def run_frac(f):
            eng = Engine()
            sm = StagingModel(eng, small_cfg, logging_enabled=False)
            desc = ObjectDescriptor("field", 0, small_cfg.domain.bbox)

            def job():
                yield from sm.put("sim", desc, fraction=f, ranks=16)

            eng.process(job())
            return eng.run()

        assert run_frac(0.2) < run_frac(1.0)

    def test_bad_fraction_rejected(self, small_cfg):
        eng = Engine()
        sm = StagingModel(eng, small_cfg, logging_enabled=False)
        desc = ObjectDescriptor("field", 0, small_cfg.domain.bbox)
        with pytest.raises(ConfigError):
            sm._shard_bytes(desc, 0.0)

    def test_bad_keep_versions_rejected(self, small_cfg):
        with pytest.raises(ConfigError):
            StagingModel(Engine(), small_cfg, logging_enabled=False, ds_keep_versions=0)


class TestRetention:
    def _run_steps(self, cfg, logging_enabled, steps=6, ckpt_every=None):
        eng = Engine()
        sm = StagingModel(eng, cfg, logging_enabled=logging_enabled)
        sm.register("sim")
        sm.register("ana")
        desc = lambda v: ObjectDescriptor("field", v, cfg.domain.bbox)

        def job():
            for v in range(steps):
                yield from sm.put("sim", desc(v), ranks=16)
                yield from sm.get("ana", desc(v), ranks=8)
                if ckpt_every and (v + 1) % ckpt_every == 0:
                    yield from sm.workflow_check("sim", v)
                    yield from sm.workflow_check("ana", v)

        eng.process(job())
        eng.run()
        return sm

    def test_ds_keeps_bounded_versions(self, small_cfg):
        sm = self._run_steps(small_cfg, logging_enabled=False)
        versions = set()
        for srv in sm.group.servers:
            versions.update(srv.versions("field"))
        assert versions == {5}  # consumed versions evicted

    def test_logging_retains_more_than_ds(self, small_cfg):
        logged = self._run_steps(small_cfg, logging_enabled=True)
        ds = self._run_steps(small_cfg, logging_enabled=False)
        assert logged.total_bytes > ds.total_bytes

    def test_gc_trims_at_checkpoints(self, small_cfg):
        with_gc = self._run_steps(small_cfg, logging_enabled=True, ckpt_every=2)
        without = self._run_steps(small_cfg, logging_enabled=True)
        assert with_gc.total_bytes < without.total_bytes
        assert with_gc.gc_bytes_freed.total > 0

    def test_memory_timeline_sampled(self, small_cfg):
        sm = self._run_steps(small_cfg, logging_enabled=True)
        assert len(sm.memory) >= 6
        assert sm.memory.peak >= sm.base_bytes

    def test_rollback_retention_drops_newer(self, small_cfg):
        sm = self._run_steps(small_cfg, logging_enabled=False)
        # Put extra unconsumed versions so several are live.
        eng2 = Engine()
        sm2 = StagingModel(eng2, small_cfg, logging_enabled=False)
        desc = lambda v: ObjectDescriptor("field", v, small_cfg.domain.bbox)

        def job():
            for v in range(4):
                yield from sm2.put("sim", desc(v), ranks=16)

        eng2.process(job())
        eng2.run()
        sm2.rollback_retention(1)
        versions = set()
        for srv in sm2.group.servers:
            versions.update(srv.versions("field"))
        assert versions == {0, 1}
