"""Tests for the simulated workflow runner and the five schemes' semantics."""

import pytest

from repro.errors import ConfigError
from repro.perfsim import (
    CONSUMER,
    PRODUCER,
    SimFailure,
    sample_failures,
    simulate,
    table2_config,
)


@pytest.fixture(scope="module")
def cfg():
    # Shrunk Table II: fewer steps and servers so the suite stays fast.
    return table2_config().with_(
        num_steps=12, staging_cores=8, domain_shape=(128, 128, 64)
    )


class TestValidation:
    def test_unknown_scheme(self, cfg):
        with pytest.raises(ConfigError):
            simulate(cfg, "nope")

    def test_ds_with_failures_rejected(self, cfg):
        with pytest.raises(ConfigError):
            simulate(cfg, "ds", failures=[SimFailure(PRODUCER, 3)])

    def test_bad_failure_component(self):
        with pytest.raises(ConfigError):
            SimFailure("ghost", 3)

    def test_bad_failure_step(self):
        with pytest.raises(ConfigError):
            SimFailure(PRODUCER, -1)


class TestFailureFree:
    def test_ds_completes(self, cfg):
        r = simulate(cfg, "ds")
        assert r.total_time > 0
        assert r.components[PRODUCER].steps_run == 12
        assert r.components[CONSUMER].steps_run == 12
        assert r.failures_injected == 0

    def test_schemes_ordering_failure_free(self, cfg):
        ds = simulate(cfg, "ds").total_time
        un = simulate(cfg, "uncoordinated").total_time
        co = simulate(cfg, "coordinated").total_time
        # Checkpointing costs time; logging costs a little more; coordinated
        # barriers cost the most.
        assert ds < un < co

    def test_checkpoint_counts(self, cfg):
        r = simulate(cfg, "uncoordinated")
        # periods 4 (sim) and 5 (ana) over 12 steps, skipping the final step.
        assert r.components[PRODUCER].checkpoints == 2
        assert r.components[CONSUMER].checkpoints == 2

    def test_hybrid_consumer_never_checkpoints(self, cfg):
        r = simulate(cfg, "hybrid")
        assert r.components[CONSUMER].checkpoints == 0
        assert r.components[PRODUCER].checkpoints > 0


class TestFailures:
    def test_consumer_failure_recovery_counts(self, cfg):
        for scheme in ("uncoordinated", "individual", "coordinated"):
            r = simulate(cfg, scheme, failures=[SimFailure(CONSUMER, 7)])
            assert r.components[CONSUMER].recoveries == 1, scheme
            assert r.failures_injected == 1

    def test_failure_costs_time(self, cfg):
        clean = simulate(cfg, "uncoordinated").total_time
        failed = simulate(
            cfg, "uncoordinated", failures=[SimFailure(PRODUCER, 7)]
        ).total_time
        assert failed > clean

    def test_coordinated_rolls_back_both(self, cfg):
        r = simulate(cfg, "coordinated", failures=[SimFailure(CONSUMER, 7)])
        # Both components re-ran steps (steps_run > num_steps).
        assert r.components[PRODUCER].steps_run > 12
        assert r.components[CONSUMER].steps_run > 12

    def test_uncoordinated_rolls_back_only_victim(self, cfg):
        r = simulate(cfg, "uncoordinated", failures=[SimFailure(CONSUMER, 7)])
        assert r.components[PRODUCER].steps_run == 12
        assert r.components[CONSUMER].steps_run > 12

    def test_uncoordinated_producer_failure_suppresses(self, cfg):
        r = simulate(cfg, "uncoordinated", failures=[SimFailure(PRODUCER, 7)])
        assert r.suppressed_requests > 0

    def test_individual_producer_rewrites_at_full_cost(self, cfg):
        r = simulate(cfg, "individual", failures=[SimFailure(PRODUCER, 7)])
        assert r.suppressed_requests == 0

    def test_hybrid_failover_is_cheapest_consumer_recovery(self, cfg):
        hy = simulate(cfg, "hybrid", failures=[SimFailure(CONSUMER, 7)])
        un = simulate(cfg, "uncoordinated", failures=[SimFailure(CONSUMER, 7)])
        assert hy.components[CONSUMER].phases.recovery < un.components[CONSUMER].phases.recovery

    def test_multiple_failures(self, cfg):
        r = simulate(
            cfg,
            "uncoordinated",
            failures=[SimFailure(PRODUCER, 4), SimFailure(CONSUMER, 9)],
        )
        assert r.failures_injected == 2
        assert r.components[PRODUCER].recoveries == 1
        assert r.components[CONSUMER].recoveries == 1

    def test_failure_at_step_zero_like_restart(self, cfg):
        r = simulate(cfg, "uncoordinated", failures=[SimFailure(CONSUMER, 1)])
        assert r.components[CONSUMER].recoveries == 1


class TestPaperOrdering:
    def test_un_beats_co_under_failure(self, cfg):
        f = [SimFailure(PRODUCER, 7)]
        co = simulate(cfg, "coordinated", failures=f).total_time
        un = simulate(cfg, "uncoordinated", failures=f).total_time
        in_ = simulate(cfg, "individual", failures=f).total_time
        hy = simulate(cfg, "hybrid", failures=f).total_time
        assert un < co
        assert hy < co
        # Individual is the no-logging lower bound in the paper's framing;
        # in practice Un's replay savings and In's logging-free writes trade
        # within a percent, so assert near-equality rather than ordering.
        assert in_ < co
        assert abs(in_ - un) / un < 0.02

    def test_memory_overhead_positive(self, cfg):
        ds = simulate(cfg, "ds")
        un = simulate(cfg, "uncoordinated")
        assert un.mean_memory > ds.mean_memory

    def test_write_overhead_positive(self, cfg):
        ds = simulate(cfg, "ds")
        un = simulate(cfg, "uncoordinated")
        assert un.cumulative_write_response > ds.cumulative_write_response


class TestSampling:
    def test_sample_failures_deterministic(self, cfg):
        a = sample_failures(cfg, 3, seed=5)
        b = sample_failures(cfg, 3, seed=5)
        assert a == b

    def test_sample_failures_sorted_and_bounded(self, cfg):
        fs = sample_failures(cfg, 5, seed=1)
        assert [f.step for f in fs] == sorted(f.step for f in fs)
        assert all(1 <= f.step < cfg.num_steps for f in fs)

    def test_sample_victims_weighted_by_cores(self, cfg):
        fs = [sample_failures(cfg, 1, seed=s)[0] for s in range(200)]
        sim_share = sum(1 for f in fs if f.component == PRODUCER) / len(fs)
        expect = cfg.sim_cores / (cfg.sim_cores + cfg.analytic_cores)
        assert abs(sim_share - expect) < 0.1

    def test_negative_count_rejected(self, cfg):
        with pytest.raises(ConfigError):
            sample_failures(cfg, -1)

    def test_summary_dict(self, cfg):
        r = simulate(cfg, "ds")
        s = r.summary()
        assert s["scheme"] == "ds"
        assert s["total_time_s"] > 0
