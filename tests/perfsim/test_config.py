"""Tests for experiment configurations (Tables II and III)."""

import pytest

from repro.errors import ConfigError
from repro.perfsim.config import (
    CORI,
    TABLE2,
    TABLE3_MTBF,
    TABLE3_SCALES,
    WorkflowConfig,
    table2_config,
    table3_config,
)
from repro.util.units import GIB, MIB


class TestTable2:
    def test_core_counts_match_paper(self):
        assert TABLE2.sim_cores == 256
        assert TABLE2.staging_cores == 32
        assert TABLE2.analytic_cores == 64
        assert TABLE2.total_cores == 352

    def test_data_volume_matches_paper(self):
        # 20 GB over 40 time steps.
        assert abs(TABLE2.bytes_per_step * 40 - 20 * GIB) < MIB

    def test_checkpoint_periods(self):
        assert TABLE2.sim_checkpoint_period == 4
        assert TABLE2.analytic_checkpoint_period == 5
        assert TABLE2.coordinated_checkpoint_period == 4

    def test_case1_knob(self):
        cfg = table2_config(subset_fraction=0.4)
        assert cfg.subset_fraction == 0.4
        assert cfg.sim_checkpoint_period == 4

    def test_case2_knob(self):
        cfg = table2_config(checkpoint_period=6)
        assert cfg.sim_checkpoint_period == 6
        assert cfg.analytic_checkpoint_period == 7
        assert cfg.coordinated_checkpoint_period == 6


class TestTable3:
    def test_all_scales_constructible(self):
        for scale in TABLE3_SCALES:
            cfg = table3_config(scale)
            assert cfg.total_cores == scale

    def test_core_split_matches_paper(self):
        cfg = table3_config(11264)
        assert cfg.sim_cores == 8192
        assert cfg.staging_cores == 1024
        assert cfg.analytic_cores == 2048

    def test_data_volume_weak_scales(self):
        for scale, gib in zip(TABLE3_SCALES, (40, 80, 160, 320, 640)):
            cfg = table3_config(scale)
            assert abs(cfg.bytes_per_step * 40 - gib * GIB) < MIB

    def test_checkpoint_periods(self):
        cfg = table3_config(704)
        assert cfg.sim_checkpoint_period == 8
        assert cfg.analytic_checkpoint_period == 10

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigError):
            table3_config(999)

    def test_mtbf_mapping(self):
        assert TABLE3_MTBF == {1: 600.0, 2: 300.0, 3: 200.0}


class TestWorkflowConfig:
    def test_derived_nodes(self):
        assert TABLE2.sim_nodes == 8
        assert TABLE2.staging_nodes == 1
        assert TABLE2.analytic_nodes == 2

    def test_state_bytes(self):
        assert TABLE2.sim_state_bytes == int(TABLE2.bytes_per_step * 3.0)
        assert TABLE2.analytic_state_bytes == int(TABLE2.bytes_per_step * 0.5)

    def test_with_modifier(self):
        cfg = TABLE2.with_(num_steps=10)
        assert cfg.num_steps == 10
        assert TABLE2.num_steps == 40  # original untouched

    def test_validation(self):
        with pytest.raises(ConfigError):
            TABLE2.with_(sim_cores=0)
        with pytest.raises(ConfigError):
            TABLE2.with_(num_steps=0)
        with pytest.raises(ConfigError):
            TABLE2.with_(subset_fraction=2.0)


class TestMachine:
    def test_barrier_time_monotonic(self):
        assert CORI.barrier_time(1) == 0.0
        assert 0 < CORI.barrier_time(2) < CORI.barrier_time(1024)

    def test_cori_defaults_sane(self):
        assert CORI.cores_per_node == 32
        assert CORI.nic_bandwidth > 1e9
        assert CORI.pfs_aggregate_bandwidth > 1e9
