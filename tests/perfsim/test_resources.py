"""Tests for DES resources: FIFO servers, token pools, barriers, boards."""

import pytest

from repro.errors import SimulationError
from repro.perfsim.engine import Engine
from repro.perfsim.resources import FifoResource, SimBarrier, TokenPool, VersionBoard


class TestFifoResource:
    def test_serializes_single_capacity(self):
        eng = Engine()
        res = FifoResource(eng, capacity=1)
        log = []

        def job(tag, t):
            yield res.acquire()
            yield eng.timeout(t)
            res.release()
            log.append((tag, eng.now))

        eng.process(job("a", 2))
        eng.process(job("b", 3))
        eng.run()
        assert log == [("a", 2.0), ("b", 5.0)]

    def test_parallel_with_capacity(self):
        eng = Engine()
        res = FifoResource(eng, capacity=2)
        log = []

        def job(tag):
            yield res.acquire()
            yield eng.timeout(2)
            res.release()
            log.append((tag, eng.now))

        for tag in "abc":
            eng.process(job(tag))
        eng.run()
        assert log == [("a", 2.0), ("b", 2.0), ("c", 4.0)]

    def test_fifo_order(self):
        eng = Engine()
        res = FifoResource(eng, capacity=1)
        order = []

        def job(tag):
            yield res.acquire()
            yield eng.timeout(1)
            res.release()
            order.append(tag)

        for tag in "abcd":
            eng.process(job(tag))
        eng.run()
        assert order == list("abcd")

    def test_release_idle_rejected(self):
        eng = Engine()
        res = FifoResource(eng, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            FifoResource(Engine(), capacity=0)

    def test_utilization(self):
        eng = Engine()
        res = FifoResource(eng, capacity=1)

        def job():
            yield res.acquire()
            yield eng.timeout(5)
            res.release()
            yield eng.timeout(5)

        eng.process(job())
        eng.run()
        assert res.utilization() == pytest.approx(0.5)

    def test_service_helper(self):
        eng = Engine()
        res = FifoResource(eng, capacity=1)

        def job():
            yield from res.service(3.0)

        eng.process(job())
        assert eng.run() == 3.0


class TestTokenPool:
    def test_acquire_release(self):
        eng = Engine()
        pool = TokenPool(eng, 2)
        log = []

        def worker(tag):
            yield pool.acquire(2)
            yield eng.timeout(1)
            pool.release(2)
            log.append((tag, eng.now))

        eng.process(worker("a"))
        eng.process(worker("b"))
        eng.run()
        assert log == [("a", 1.0), ("b", 2.0)]

    def test_validation(self):
        with pytest.raises(SimulationError):
            TokenPool(Engine(), -1)


class TestSimBarrier:
    def test_releases_when_full(self):
        eng = Engine()
        bar = SimBarrier(eng, 3)
        times = []

        def party(delay):
            yield eng.timeout(delay)
            yield bar.arrive()
            times.append(eng.now)

        for d in (1, 5, 3):
            eng.process(party(d))
        eng.run()
        assert times == [5.0, 5.0, 5.0]
        assert bar.cycles == 1

    def test_reusable(self):
        eng = Engine()
        bar = SimBarrier(eng, 2)
        hits = []

        def party():
            for _ in range(3):
                yield eng.timeout(1)
                yield bar.arrive()
                hits.append(eng.now)

        eng.process(party())
        eng.process(party())
        eng.run()
        assert bar.cycles == 3

    def test_reset_discards_arrivals(self):
        eng = Engine()
        bar = SimBarrier(eng, 2)

        def early():
            yield bar.arrive()

        eng.process(early())
        eng.run()
        bar.reset()

        done = []

        def pair(tag):
            yield bar.arrive()
            done.append(tag)

        eng.process(pair("a"))
        eng.process(pair("b"))
        eng.run()
        assert sorted(done) == ["a", "b"]

    def test_set_parties_releases_waiters(self):
        eng = Engine()
        bar = SimBarrier(eng, 3)
        done = []

        def party():
            yield bar.arrive()
            done.append(eng.now)

        eng.process(party())
        eng.process(party())
        eng.run()
        assert done == []
        bar.set_parties(2)
        eng.run()
        assert len(done) == 2

    def test_validation(self):
        with pytest.raises(SimulationError):
            SimBarrier(Engine(), 0)


class TestVersionBoard:
    def test_wait_then_publish(self):
        eng = Engine()
        board = VersionBoard(eng)
        log = []

        def consumer():
            yield board.wait_for("x", 0)
            log.append(eng.now)

        def producer():
            yield eng.timeout(4)
            board.publish("x", 0)

        eng.process(consumer())
        eng.process(producer())
        eng.run()
        assert log == [4.0]

    def test_wait_already_published(self):
        eng = Engine()
        board = VersionBoard(eng)
        board.publish("x", 1)
        assert board.available("x", 1)

        def consumer():
            yield board.wait_for("x", 1)
            return eng.now

        p = eng.process(consumer())
        eng.run()
        assert p.value == 0.0

    def test_publish_idempotent(self):
        eng = Engine()
        board = VersionBoard(eng)
        board.publish("x", 0)
        board.publish("x", 0)
        assert board.available("x", 0)

    def test_unpublish_from(self):
        eng = Engine()
        board = VersionBoard(eng)
        for v in range(5):
            board.publish("x", v)
        board.publish("y", 4)
        board.unpublish_from("x", 3)
        assert board.available("x", 2)
        assert not board.available("x", 3)
        assert not board.available("x", 4)
        assert board.available("y", 4)  # other names untouched
