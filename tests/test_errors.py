"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            if isinstance(exc, type) and issubclass(exc, Exception):
                assert issubclass(exc, errors.ReproError), name

    def test_staging_sub_hierarchy(self):
        assert issubclass(errors.ObjectNotFound, errors.StagingError)
        assert issubclass(errors.VersionConflict, errors.StagingError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.ConsistencyError("x")


class TestProcessFailure:
    def test_message_full(self):
        err = errors.ProcessFailure(rank=3, component="sim", at_step=7)
        assert "rank 3" in str(err)
        assert "'sim'" in str(err)
        assert "step 7" in str(err)

    def test_message_minimal(self):
        err = errors.ProcessFailure(rank=0)
        assert "rank 0" in str(err)
        assert "component" not in str(err)

    def test_attributes(self):
        err = errors.ProcessFailure(rank=1, component="c", at_step=2)
        assert (err.rank, err.component, err.at_step) == (1, "c", 2)
